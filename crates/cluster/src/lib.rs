//! # cluster-rt — an MPI-like in-process message-passing runtime
//!
//! The paper's implementation uses Open MPI with the master/slave model
//! and a single global communicator (§V). This crate reproduces those
//! semantics inside one OS process so the identical role code (root,
//! median, dispatcher, client) runs with true parallelism on local cores:
//!
//! * a [`World`] of `n` ranks, each with an unbounded FIFO mailbox;
//! * blocking any-source receive ([`Endpoint::recv`]) and *selective*
//!   receive with buffering ([`Endpoint::recv_matching`]), the moral
//!   equivalent of `MPI_Recv` with a source/tag filter — needed because a
//!   median may receive late client scores while it waits for a
//!   dispatcher reply;
//! * optional message tracing ([`World::new_traced`]) used by the tests
//!   that assert the communication patterns of the paper's Figures 2–5.
//!
//! The runtime is generic over the message type; the parallel-NMCS
//! protocol lives in the `parallel-nmcs` crate.

pub mod collectives;

pub use collectives::{barrier, broadcast, gather, Collective};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// A process identifier, `0 .. world_size`.
pub type Rank = usize;

/// A received message with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    pub from: Rank,
    pub msg: M,
}

/// Messages that can label themselves for tracing; mirrors MPI tags.
pub trait Tagged {
    /// A short static label ("EvalRequest", "Score", …).
    fn tag(&self) -> &'static str;
}

/// One recorded message transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub from: Rank,
    pub to: Rank,
    pub tag: &'static str,
}

/// A shared, append-only message log.
pub type Trace = Arc<Mutex<Vec<TraceEntry>>>;

/// Error returned by [`Endpoint::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the deadline.
    Timeout,
    /// Every sender is gone; no message can ever arrive.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => f.write_str("receive timed out"),
            RecvError::Disconnected => f.write_str("all senders disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

struct Shared<M> {
    senders: Vec<Sender<Envelope<M>>>,
    trace: Option<Trace>,
}

/// A communicator over `n` ranks (the `MPI_COMM_WORLD` analogue).
///
/// Construct it, then [`World::take_endpoint`] exactly once per rank and
/// move each endpoint into its thread.
pub struct World<M> {
    shared: Arc<Shared<M>>,
    receivers: Vec<Option<Receiver<Envelope<M>>>>,
}

impl<M: Send + Tagged> World<M> {
    /// A world of `n` ranks.
    pub fn new(n: usize) -> Self {
        Self::build(n, None)
    }

    /// A world of `n` ranks that records every transmission into the
    /// returned trace.
    pub fn new_traced(n: usize) -> (Self, Trace) {
        let trace: Trace = Arc::new(Mutex::new(Vec::new()));
        (Self::build(n, Some(trace.clone())), trace)
    }

    fn build(n: usize, trace: Option<Trace>) -> Self {
        assert!(n > 0, "a world needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Self {
            shared: Arc::new(Shared { senders, trace }),
            receivers,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.senders.len()
    }

    /// Takes ownership of `rank`'s endpoint. Panics if taken twice.
    pub fn take_endpoint(&mut self, rank: Rank) -> Endpoint<M> {
        let receiver = self.receivers[rank]
            .take()
            .unwrap_or_else(|| panic!("endpoint {rank} already taken"));
        Endpoint {
            rank,
            shared: self.shared.clone(),
            receiver,
            stash: VecDeque::new(),
        }
    }
}

/// One rank's connection to the world. Owned by exactly one thread.
pub struct Endpoint<M> {
    rank: Rank,
    shared: Arc<Shared<M>>,
    receiver: Receiver<Envelope<M>>,
    /// Messages set aside by selective receives, delivered FIFO later.
    stash: VecDeque<Envelope<M>>,
}

impl<M: Send + Tagged> Endpoint<M> {
    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.shared.senders.len()
    }

    /// Sends `msg` to `to` (never blocks; mailboxes are unbounded).
    pub fn send(&self, to: Rank, msg: M) {
        if let Some(trace) = &self.shared.trace {
            trace.lock().push(TraceEntry {
                from: self.rank,
                to,
                tag: msg.tag(),
            });
        }
        // A send to a dropped endpoint is a no-op, like MPI after a peer
        // finalises during shutdown.
        let _ = self.shared.senders[to].send(Envelope {
            from: self.rank,
            msg,
        });
    }

    /// Blocking any-source receive, FIFO among stashed-then-fresh
    /// messages.
    pub fn recv(&mut self) -> Envelope<M> {
        if let Some(env) = self.stash.pop_front() {
            return env;
        }
        self.receiver.recv().expect("world dropped while receiving")
    }

    /// Any-source receive with a deadline.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        if let Some(env) = self.stash.pop_front() {
            return Ok(env);
        }
        self.receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Blocking receive of the first message satisfying `pred`; messages
    /// that do not match are stashed and later returned by ordinary
    /// receives, preserving their arrival order (the `MPI_Recv`
    /// source/tag-matching analogue).
    pub fn recv_matching(&mut self, mut pred: impl FnMut(&Envelope<M>) -> bool) -> Envelope<M> {
        if let Some(i) = self.stash.iter().position(&mut pred) {
            return self.stash.remove(i).expect("index valid");
        }
        loop {
            let env = self.receiver.recv().expect("world dropped while receiving");
            if pred(&env) {
                return env;
            }
            self.stash.push_back(env);
        }
    }

    /// Non-blocking probe: is a message available right now?
    pub fn has_pending(&self) -> bool {
        !self.stash.is_empty() || !self.receiver.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Tagged for Msg {
        fn tag(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "Ping",
                Msg::Pong(_) => "Pong",
            }
        }
    }

    #[test]
    fn ping_pong_between_two_ranks() {
        let mut world = World::<Msg>::new(2);
        let mut a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        let t = thread::spawn(move || {
            let env = b.recv();
            assert_eq!(env.from, 0);
            assert_eq!(env.msg, Msg::Ping(7));
            b.send(0, Msg::Pong(7));
        });
        a.send(1, Msg::Ping(7));
        let env = a.recv();
        assert_eq!(env.from, 1);
        assert_eq!(env.msg, Msg::Pong(7));
        t.join().unwrap();
    }

    #[test]
    fn mailbox_is_fifo_per_sender() {
        let mut world = World::<Msg>::new(2);
        let a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        for i in 0..100 {
            a.send(1, Msg::Ping(i));
        }
        for i in 0..100 {
            assert_eq!(b.recv().msg, Msg::Ping(i));
        }
    }

    #[test]
    fn recv_matching_stashes_and_preserves_order() {
        let mut world = World::<Msg>::new(2);
        let a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        a.send(1, Msg::Ping(1));
        a.send(1, Msg::Ping(2));
        a.send(1, Msg::Pong(3));
        a.send(1, Msg::Ping(4));
        // Selectively take the Pong first.
        let pong = b.recv_matching(|e| matches!(e.msg, Msg::Pong(_)));
        assert_eq!(pong.msg, Msg::Pong(3));
        // The stashed Pings then arrive in their original order.
        assert_eq!(b.recv().msg, Msg::Ping(1));
        assert_eq!(b.recv().msg, Msg::Ping(2));
        assert_eq!(b.recv().msg, Msg::Ping(4));
    }

    #[test]
    fn recv_matching_finds_match_in_stash_first() {
        let mut world = World::<Msg>::new(2);
        let a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        a.send(1, Msg::Pong(1));
        a.send(1, Msg::Ping(2));
        let ping = b.recv_matching(|e| matches!(e.msg, Msg::Ping(_)));
        assert_eq!(ping.msg, Msg::Ping(2));
        // The selective receive for Pong must find it in the stash.
        let pong = b.recv_matching(|e| matches!(e.msg, Msg::Pong(_)));
        assert_eq!(pong.msg, Msg::Pong(1));
    }

    #[test]
    fn recv_timeout_times_out_without_traffic() {
        let mut world = World::<Msg>::new(2);
        let _a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        let err = b.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn trace_records_every_send_in_order() {
        let (mut world, trace) = World::<Msg>::new_traced(3);
        let a = world.take_endpoint(0);
        let b = world.take_endpoint(1);
        let mut c = world.take_endpoint(2);
        a.send(2, Msg::Ping(1));
        b.send(2, Msg::Pong(2));
        c.recv();
        c.recv();
        let log = trace.lock();
        assert_eq!(
            *log,
            vec![
                TraceEntry {
                    from: 0,
                    to: 2,
                    tag: "Ping"
                },
                TraceEntry {
                    from: 1,
                    to: 2,
                    tag: "Pong"
                },
            ]
        );
    }

    #[test]
    fn many_to_one_under_contention() {
        let mut world = World::<Msg>::new(9);
        let mut sink = world.take_endpoint(0);
        let mut handles = Vec::new();
        for r in 1..9 {
            let e = world.take_endpoint(r);
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    e.send(0, Msg::Ping(i));
                }
            }));
        }
        let mut count = 0;
        let mut per_sender = [0u32; 9];
        while count < 400 {
            let env = sink.recv();
            // FIFO per sender even under interleaving.
            if let Msg::Ping(i) = env.msg {
                assert_eq!(i, per_sender[env.from], "sender {} out of order", env.from);
                per_sender[env.from] += 1;
            }
            count += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(per_sender[1..].iter().all(|&c| c == 50));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn endpoint_cannot_be_taken_twice() {
        let mut world = World::<Msg>::new(1);
        let _one = world.take_endpoint(0);
        let _two = world.take_endpoint(0);
    }

    #[test]
    fn send_to_dropped_endpoint_is_noop() {
        let mut world = World::<Msg>::new(2);
        let a = world.take_endpoint(0);
        let b = world.take_endpoint(1);
        drop(b);
        a.send(1, Msg::Ping(0)); // must not panic
    }

    #[test]
    fn has_pending_reflects_mailbox_state() {
        let mut world = World::<Msg>::new(2);
        let a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        assert!(!b.has_pending());
        a.send(1, Msg::Ping(0));
        // Unbounded channel: the send has completed synchronously.
        assert!(b.has_pending());
        b.recv();
        assert!(!b.has_pending());
    }
}
