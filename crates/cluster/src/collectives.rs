//! MPI-style collective operations over [`Endpoint`]s.
//!
//! The paper's program uses the master/slave model over
//! `MPI_COMM_WORLD`; besides point-to-point sends it relies on the usual
//! collective idioms (startup broadcast, result gather, shutdown
//! barrier). These helpers implement them with the same star topology an
//! MPI implementation would use for small worlds: a designated root rank
//! coordinates.
//!
//! Every participant must call the *same* collective with the *same*
//! root; like MPI, mismatched collectives deadlock (the runtime cannot
//! diagnose that for you).

use crate::{Endpoint, Tagged};

/// Wrapper protocol for collectives, generic over the user payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Collective<M> {
    /// A user point-to-point message.
    User(M),
    /// Barrier: arrival notification / release token.
    BarrierArrive,
    BarrierRelease,
    /// Broadcast payload.
    Bcast(M),
    /// Gather contribution.
    Gather(M),
}

impl<M: Tagged> Tagged for Collective<M> {
    fn tag(&self) -> &'static str {
        match self {
            Collective::User(m) => m.tag(),
            Collective::BarrierArrive => "BarrierArrive",
            Collective::BarrierRelease => "BarrierRelease",
            Collective::Bcast(_) => "Bcast",
            Collective::Gather(_) => "Gather",
        }
    }
}

/// Blocks until every rank has entered the barrier rooted at `root`.
///
/// Non-root ranks send an arrival notice and wait for the release; the
/// root collects `world_size − 1` notices then releases everyone.
pub fn barrier<M: Send + Tagged>(ep: &mut Endpoint<Collective<M>>, root: usize) {
    let n = ep.world_size();
    if ep.rank() == root {
        let mut arrived = 0;
        while arrived < n - 1 {
            let env = ep.recv_matching(|e| matches!(e.msg, Collective::BarrierArrive));
            debug_assert!(matches!(env.msg, Collective::BarrierArrive));
            arrived += 1;
        }
        for r in 0..n {
            if r != root {
                ep.send(r, Collective::BarrierRelease);
            }
        }
    } else {
        ep.send(root, Collective::BarrierArrive);
        let _ = ep.recv_matching(|e| matches!(e.msg, Collective::BarrierRelease));
    }
}

/// Broadcasts `value` from `root` to every rank; returns each rank's copy.
pub fn broadcast<M: Send + Tagged + Clone>(
    ep: &mut Endpoint<Collective<M>>,
    root: usize,
    value: Option<M>,
) -> M {
    if ep.rank() == root {
        let v = value.expect("root must supply the broadcast value");
        for r in 0..ep.world_size() {
            if r != root {
                ep.send(r, Collective::Bcast(v.clone()));
            }
        }
        v
    } else {
        let env = ep.recv_matching(|e| matches!(e.msg, Collective::Bcast(_)));
        match env.msg {
            Collective::Bcast(v) => v,
            _ => unreachable!(),
        }
    }
}

/// Gathers one value per rank at `root`; returns `Some(values)` on the
/// root (indexed by rank) and `None` elsewhere.
pub fn gather<M: Send + Tagged>(
    ep: &mut Endpoint<Collective<M>>,
    root: usize,
    value: M,
) -> Option<Vec<M>> {
    let n = ep.world_size();
    if ep.rank() == root {
        let mut slots: Vec<Option<M>> = (0..n).map(|_| None).collect();
        slots[root] = Some(value);
        for _ in 0..n - 1 {
            let env = ep.recv_matching(|e| matches!(e.msg, Collective::Gather(_)));
            let from = env.from;
            match env.msg {
                Collective::Gather(v) => {
                    debug_assert!(slots[from].is_none(), "duplicate gather from {from}");
                    slots[from] = Some(v);
                }
                _ => unreachable!(),
            }
        }
        Some(
            slots
                .into_iter()
                .map(|s| s.expect("all ranks contribute"))
                .collect(),
        )
    } else {
        ep.send(root, Collective::Gather(value));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;
    use std::thread;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Num(u64);

    impl Tagged for Num {
        fn tag(&self) -> &'static str {
            "Num"
        }
    }

    fn spawn_world<F>(n: usize, f: F) -> Vec<thread::JoinHandle<()>>
    where
        F: Fn(Endpoint<Collective<Num>>) + Send + Sync + Clone + 'static,
    {
        let mut world = World::<Collective<Num>>::new(n);
        (0..n)
            .map(|r| {
                let ep = world.take_endpoint(r);
                let f = f.clone();
                thread::spawn(move || f(ep))
            })
            .collect()
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let handles = spawn_world(6, move |mut ep| {
            c2.fetch_add(1, Ordering::SeqCst);
            barrier(&mut ep, 0);
            // After the barrier everyone must have incremented.
            assert_eq!(c2.load(Ordering::SeqCst), 6);
        });
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let handles = spawn_world(5, |mut ep| {
            let v = if ep.rank() == 2 {
                broadcast(&mut ep, 2, Some(Num(77)))
            } else {
                broadcast(&mut ep, 2, None)
            };
            assert_eq!(v, Num(77));
        });
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let handles = spawn_world(4, |mut ep| {
            let rank = ep.rank() as u64;
            let gathered = gather(&mut ep, 0, Num(rank * 10));
            if ep.rank() == 0 {
                let values = gathered.expect("root receives");
                assert_eq!(values, vec![Num(0), Num(10), Num(20), Num(30)]);
            } else {
                assert!(gathered.is_none());
            }
        });
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn collectives_compose_in_sequence() {
        // broadcast → compute → gather → barrier, several rounds.
        let handles = spawn_world(4, |mut ep| {
            for round in 0..3u64 {
                let base = if ep.rank() == 0 {
                    broadcast(&mut ep, 0, Some(Num(round * 100)))
                } else {
                    broadcast(&mut ep, 0, None)
                };
                let mine = Num(base.0 + ep.rank() as u64);
                let gathered = gather(&mut ep, 0, mine);
                if let Some(values) = gathered {
                    for (r, v) in values.iter().enumerate() {
                        assert_eq!(v.0, round * 100 + r as u64);
                    }
                }
                barrier(&mut ep, 0);
            }
        });
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn user_messages_pass_through_collective_wrapper() {
        let mut world = World::<Collective<Num>>::new(2);
        let a = world.take_endpoint(0);
        let mut b = world.take_endpoint(1);
        a.send(1, Collective::User(Num(5)));
        let env = b.recv();
        assert_eq!(env.msg, Collective::User(Num(5)));
        assert_eq!(env.msg.tag(), "Num");
    }
}
