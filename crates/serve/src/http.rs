//! Minimal HTTP/1.1 on a blocking `TcpStream`: just enough of the
//! protocol for the job API — request line + headers + `Content-Length`
//! bodies in, fixed or chunked responses out. No TLS, no compression,
//! no HTTP/2; curl and any standard client speak this subset.
//!
//! Hard limits protect the server from hostile peers: headers are
//! capped at [`MAX_HEAD_BYTES`], bodies at the caller's `max_body`, and
//! both sides run under socket read/write timeouts set by the
//! connection handler.

use std::io::{Read, Write};
// nmcs-lint: allow(socket-discipline) reason="the HTTP edge: every socket read/write of the serve crate funnels through this module"
use std::net::TcpStream;

/// Upper bound on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Connection closed before a complete request arrived (clean EOF
    /// between keep-alive requests surfaces as `Eof` with no bytes).
    Eof,
    /// Socket error (including read timeouts).
    Io(std::io::Error),
    /// The peer sent something that is not HTTP/1.x, or exceeded a
    /// limit. The string is safe to echo in a 400 body.
    Malformed(&'static str),
    /// The declared body exceeds the configured cap; respond 413.
    BodyTooLarge,
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request. Header names are lowercased; the query string is
/// split into `key=value` pairs without percent-decoding (the API uses
/// only unreserved characters in queries).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Malformed("body is not UTF-8"))
    }
}

/// Reads one request. Blocks until a full head (and declared body)
/// arrives, the socket times out, or a limit trips.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(HttpError::Eof)
            } else {
                Err(HttpError::Malformed("connection closed mid-request"))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = split_target(target);

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => (
            path.to_string(),
            query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect(),
        ),
    }
}

/// A response with a fixed body.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Emitted as a `Retry-After` header (seconds) when present — the
    /// contract of every 429/503 this server sends.
    pub retry_after_secs: Option<u64>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after_secs: None,
        }
    }

    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            retry_after_secs: None,
        }
    }

    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after_secs = Some(secs);
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a fixed-length response.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after_secs {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Starts a chunked (streaming) 200 response. Follow with
/// [`write_chunk`] per payload and [`finish_chunks`] to terminate. The
/// connection always closes after a stream.
pub fn start_chunked(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one chunk. A write error means the client went away — the
/// caller stops streaming.
pub fn write_chunk(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(format!("{:x}\r\n", payload.len()).as_bytes())?;
    stream.write_all(payload)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn finish_chunks(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_target_into_path_and_query() {
        let (path, query) = split_target("/jobs/7?stream=1&format=json&flag");
        assert_eq!(path, "/jobs/7");
        assert_eq!(
            query,
            vec![
                ("stream".to_string(), "1".to_string()),
                ("format".to_string(), "json".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert_eq!(split_target("/metrics").0, "/metrics");
    }

    #[test]
    fn finds_head_boundary() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
