//! # nmcs-serve — the engine's networked front door
//!
//! A minimal HTTP/1.1 server (std `TcpListener`, thread per connection,
//! no async runtime) exposing [`nmcs_engine::Engine`] on a socket. The
//! protocol lives entirely at this edge: the engine core is untouched,
//! and a job submitted over the wire runs the exact serde
//! [`nmcs_core::SearchSpec`] the library API runs — bit-identical
//! results, budgets, cancellation, and all.
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | Submit a [`wire::SubmitRequest`]; `202` with the job id, `429` when shed, `503` when full or shutting down |
//! | `GET /jobs/{id}` | One progress snapshot (`?wait=1` blocks for the final output; `?stream=1` streams chunked progress lines until terminal) |
//! | `DELETE /jobs/{id}` | Cancel; finished replicas keep their results |
//! | `POST /sessions` | Open a warm-tree [`wire::OpenSessionRequest`]; `201` with the session snapshot, `429` over the tenant session quota |
//! | `GET /sessions/{id}` | One lock-free session snapshot (steps, committed moves, score, warm bytes) |
//! | `POST /sessions/{id}/jobs` | Submit one session step as a job; `202` with job + session ids, `409` while a step is in flight |
//! | `DELETE /sessions/{id}` | Close; a step already in flight completes normally |
//! | `GET /metrics` | Prometheus text from [`MetricsSnapshot::render_text`] plus the serve edge's per-route histograms and shed counters; `?format=json` returns the inspector snapshot verbatim |
//! | `GET /healthz` | `200 ok` while accepting |
//!
//! ## Admission control
//!
//! Before a job touches the engine's bounded queue it passes
//! [`admission::decide`]: per-tenant in-flight quotas, priority lanes
//! over the queue-depth gauge, and deadline-aware shedding driven by
//! the engine's queue-wait p95. Rejected jobs get `429` plus
//! `Retry-After` and are **never** enqueued.
//!
//! [`MetricsSnapshot::render_text`]: nmcs_core::metrics::MetricsSnapshot::render_text

pub mod admission;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod wire;

use admission::{
    decide, decide_open_session, AdmissionInputs, Decision, Priority, SessionAdmissionInputs,
};
use http::{HttpError, Request, Response};
use metrics::ServeMetrics;
use nmcs_core::metrics::monotonic_now;
use nmcs_engine::{
    Engine, EngineConfig, JobId, SessionError, SessionId, SessionLimits, SubmitError,
};
use registry::JobDirectory;
use serde::Value;
use std::io::Write as _;
// nmcs-lint: allow(socket-discipline) reason="the HTTP edge: this module owns the listener and its shutdown self-connect"
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wire::{to_json, OpenSessionRequest, SubmitRequest};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests, soaks).
    pub addr: String,
    /// The embedded engine's worker/queue shape.
    pub engine: EngineConfig,
    /// Max non-terminal jobs per tenant (admission quota).
    pub tenant_quota: usize,
    /// Request body cap, bytes.
    pub max_body_bytes: usize,
    /// Terminal jobs kept for late polls.
    pub retain_terminal: usize,
    /// Socket read timeout per request (also bounds a dead client's
    /// hold on a connection thread).
    pub read_timeout: Duration,
    /// Poll interval of the progress stream.
    pub stream_interval: Duration,
    /// Max warm-tree sessions a tenant may hold open at once
    /// (admission quota for `POST /sessions`).
    pub session_quota: usize,
    /// The embedded engine's session-table bounds (idle TTL, global
    /// count cap, summed warm-byte cap), applied at startup.
    pub session_limits: SessionLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            tenant_quota: 8,
            max_body_bytes: 1024 * 1024,
            retain_terminal: 256,
            read_timeout: Duration::from_secs(30),
            stream_interval: Duration::from_millis(10),
            session_quota: 4,
            session_limits: SessionLimits::default(),
        }
    }
}

/// Shared state every connection thread sees.
struct ServerCtx {
    engine: Engine,
    directory: JobDirectory,
    config: ServeConfig,
    accepting: AtomicBool,
    metrics: ServeMetrics,
}

/// A running server. Dropping without [`Server::shutdown`] also shuts
/// down (listener closed, engine drained).
pub struct Server {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds, starts the engine, and spawns the accept loop.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = Engine::start(config.engine.clone())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        engine.set_session_limits(config.session_limits.clone());
        let ctx = Arc::new(ServerCtx {
            engine,
            directory: JobDirectory::new(config.retain_terminal),
            config,
            accepting: AtomicBool::new(true),
            metrics: ServeMetrics::new(),
        });
        let conn_threads = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let accept_ctx = ctx.clone();
        let accept_conns = conn_threads.clone();
        // nmcs-lint: allow(spawn-discipline) reason="server edge: the accept loop is not search work and never touches a search RNG"
        let accept_thread = std::thread::Builder::new()
            .name("nmcs-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_ctx, accept_conns))?;
        Ok(Server {
            ctx,
            addr,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains admitted jobs, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.ctx.accepting.store(false, Ordering::Release);
        self.ctx.engine.close();
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    conn_threads: Arc<parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if !ctx.accepting.load(Ordering::Acquire) {
            return;
        }
        let conn_ctx = ctx.clone();
        // nmcs-lint: allow(spawn-discipline) reason="server edge: one thread per connection; search work still runs only on engine workers"
        let spawned = std::thread::Builder::new()
            .name("nmcs-serve-conn".to_string())
            .spawn(move || handle_connection(stream, conn_ctx));
        if let Ok(handle) = spawned {
            let mut threads = conn_threads.lock();
            // Reap finished connections so the vec stays bounded over a
            // long soak.
            threads.retain(|t| !t.is_finished());
            threads.push(handle);
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let request = match http::read_request(&mut stream, ctx.config.max_body_bytes) {
            Ok(req) => req,
            Err(HttpError::Eof) | Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge) => {
                let resp = json_error(413, "request body too large", None);
                let _ = http::write_response(&mut stream, &resp, false);
                return;
            }
            Err(HttpError::Malformed(msg)) => {
                let resp = json_error(400, msg, None);
                let _ = http::write_response(&mut stream, &resp, false);
                return;
            }
        };
        let keep_alive = request.keep_alive();
        let started = monotonic_now();
        let routed = route(&request, &ctx);
        // For streaming routes this measures routing + setup; the
        // stream's own lifetime is the client's choice, not a latency.
        ctx.metrics
            .record_route(route_label(&request), started.elapsed());
        match routed {
            Routed::Plain(resp) => {
                if http::write_response(&mut stream, &resp, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Routed::StreamProgress(id) => {
                stream_progress(&mut stream, &ctx, id);
                return; // streams always close the connection
            }
        }
    }
}

/// What a route resolved to: an immediate response, or a streaming
/// handoff that owns the connection.
enum Routed {
    Plain(Response),
    StreamProgress(JobId),
}

/// The route template a request resolves to — the label of the edge's
/// per-route latency histogram (a closed static set, so recording
/// never allocates after a route's first sight).
fn route_label(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => "POST /jobs",
        ("GET", ["jobs", _]) => "GET /jobs/{id}",
        ("DELETE", ["jobs", _]) => "DELETE /jobs/{id}",
        ("POST", ["sessions"]) => "POST /sessions",
        ("GET", ["sessions", _]) => "GET /sessions/{id}",
        ("POST", ["sessions", _, "jobs"]) => "POST /sessions/{id}/jobs",
        ("DELETE", ["sessions", _]) => "DELETE /sessions/{id}",
        ("GET", ["metrics"]) => "GET /metrics",
        ("GET", ["healthz"]) => "GET /healthz",
        _ => "other",
    }
}

fn route(req: &Request, ctx: &ServerCtx) -> Routed {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => Routed::Plain(submit(req, ctx)),
        ("GET", ["jobs", id]) => match id.parse::<JobId>() {
            Err(_) => Routed::Plain(json_error(404, "no such job", None)),
            Ok(id) => {
                if req.query_param("stream") == Some("1") {
                    match ctx.directory.handle(id) {
                        Some(_) => Routed::StreamProgress(id),
                        None => Routed::Plain(json_error(404, "no such job", None)),
                    }
                } else {
                    Routed::Plain(job_status(ctx, id, req.query_param("wait") == Some("1")))
                }
            }
        },
        ("DELETE", ["jobs", id]) => Routed::Plain(match id.parse::<JobId>() {
            Err(_) => json_error(404, "no such job", None),
            Ok(id) => cancel(ctx, id),
        }),
        ("POST", ["sessions"]) => Routed::Plain(open_session(req, ctx)),
        ("GET", ["sessions", id]) => Routed::Plain(match id.parse::<SessionId>() {
            Err(_) => json_error(404, "no such session", None),
            Ok(id) => session_status(ctx, id),
        }),
        ("POST", ["sessions", id, "jobs"]) => Routed::Plain(match id.parse::<SessionId>() {
            Err(_) => json_error(404, "no such session", None),
            Ok(id) => submit_session(ctx, id),
        }),
        ("DELETE", ["sessions", id]) => Routed::Plain(match id.parse::<SessionId>() {
            Err(_) => json_error(404, "no such session", None),
            Ok(id) => close_session(ctx, id),
        }),
        ("GET", ["metrics"]) => Routed::Plain(metrics(ctx, req.query_param("format"))),
        ("GET", ["healthz"]) => Routed::Plain(Response::text(200, "ok\n".to_string())),
        (_, ["jobs", ..]) | (_, ["sessions", ..]) | (_, ["metrics"]) | (_, ["healthz"]) => {
            Routed::Plain(json_error(405, "method not allowed", None))
        }
        _ => Routed::Plain(json_error(404, "no such route", None)),
    }
}

fn submit(req: &Request, ctx: &ServerCtx) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(_) => return json_error(400, "body is not UTF-8", None),
    };
    let submit_req: SubmitRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return json_error(400, &format!("bad submit request: {e}"), None),
    };
    if submit_req.tenant.is_empty() {
        return json_error(400, "tenant must be non-empty", None);
    }
    let priority = match Priority::parse(submit_req.priority.as_deref()) {
        Ok(p) => p,
        Err(e) => return json_error(400, &e, None),
    };
    let job = match wire::build_job(&submit_req) {
        Ok(j) => j,
        Err(e) => return json_error(404, &e, None),
    };

    // Admission: snapshot the gauges, decide, and only then touch the
    // engine. A rejected job is never enqueued.
    let stats = ctx.engine.stats();
    let deadline_ms = job
        .budget
        .deadline
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .or(submit_req.ttl_ms);
    let inputs = AdmissionInputs {
        tenant_inflight: ctx.directory.tenant_inflight(&submit_req.tenant),
        tenant_quota: ctx.config.tenant_quota,
        priority,
        queue_depth: stats.queue_depth,
        queue_capacity: stats.queue_capacity,
        replicas: job.replicas,
        workers: stats.workers,
        queue_wait_p95_ns: ctx.engine.queue_wait_snapshot().p95_ns,
        deadline_ms,
    };
    if let Decision::Reject {
        status,
        reason,
        retry_after_ms,
        kind,
    } = decide(&inputs)
    {
        ctx.metrics.shed(kind);
        return json_error(status, &reason, Some(retry_after_ms));
    }

    let replicas = job.replicas;
    match ctx.engine.try_submit(job) {
        Ok(handle) => {
            let id = handle.id();
            ctx.directory.insert(&submit_req.tenant, handle);
            Response::json(
                202,
                to_json(&wire::accepted_value(id, &submit_req, replicas)),
            )
        }
        Err((SubmitError::QueueFull { .. }, _)) => {
            ctx.metrics.shed("queue-full");
            let retry = admission::predicted_wait_ms(
                stats.queue_depth,
                stats.workers,
                inputs.queue_wait_p95_ns,
            )
            .max(250);
            json_error(503, "submission queue full", Some(retry))
        }
        Err((SubmitError::ShuttingDown, _)) => {
            ctx.metrics.shed("shutting-down");
            json_error(503, "shutting down", None)
        }
    }
}

fn open_session(req: &Request, ctx: &ServerCtx) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(_) => return json_error(400, "body is not UTF-8", None),
    };
    let open_req: OpenSessionRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return json_error(400, &format!("bad session request: {e}"), None),
    };
    if open_req.tenant.is_empty() {
        return json_error(400, "tenant must be non-empty", None);
    }
    let game = match wire::stock_game(&open_req.game, open_req.spec.seed) {
        Ok(g) => g,
        Err(e) => return json_error(404, &e, None),
    };
    let inputs = SessionAdmissionInputs {
        tenant_sessions: ctx.engine.tenant_sessions(&open_req.tenant),
        session_quota: ctx.config.session_quota,
    };
    if let Decision::Reject {
        status,
        reason,
        retry_after_ms,
        kind,
    } = decide_open_session(&inputs)
    {
        ctx.metrics.shed(kind);
        return json_error(status, &reason, Some(retry_after_ms));
    }
    match ctx
        .engine
        .open_session_dyn(&open_req.tenant, game, open_req.spec, None)
    {
        Ok(id) => match ctx.engine.session_info(id) {
            Some(info) => Response::json(201, to_json(&wire::session_value(&info))),
            // Swept between open and poll — only possible with a zero
            // TTL; report it as the capacity condition it is.
            None => json_error(429, "session table at capacity", Some(1000)),
        },
        Err(e @ SessionError::AtCapacity { .. }) => {
            ctx.metrics.shed("session-capacity");
            json_error(429, &e.to_string(), Some(1000))
        }
        Err(e) => json_error(503, &e.to_string(), None),
    }
}

fn session_status(ctx: &ServerCtx, id: SessionId) -> Response {
    match ctx.engine.session_info(id) {
        Some(info) => Response::json(200, to_json(&wire::session_value(&info))),
        None => json_error(404, "no such session", None),
    }
}

/// Submits one step of a session as an engine job. No job admission
/// runs here: steps are strictly serial per session (a concurrent
/// submit is a 409), so the open-session quota already bounds a
/// tenant's step concurrency.
fn submit_session(ctx: &ServerCtx, id: SessionId) -> Response {
    let Some(info) = ctx.engine.session_info(id) else {
        return json_error(404, "no such session", None);
    };
    match ctx.engine.submit_session(id) {
        Ok(handle) => {
            let job = handle.id();
            ctx.directory.insert(&info.tenant, handle);
            Response::json(
                202,
                to_json(&wire::session_job_accepted_value(job, id, &info.tenant)),
            )
        }
        Err(SessionError::NoSuchSession(_)) => json_error(404, "no such session", None),
        Err(e @ SessionError::StepInFlight(_)) => json_error(409, &e.to_string(), None),
        Err(e @ SessionError::AtCapacity { .. }) => json_error(429, &e.to_string(), Some(1000)),
        Err(SessionError::Submit(SubmitError::QueueFull { .. })) => {
            ctx.metrics.shed("queue-full");
            json_error(503, "submission queue full", Some(250))
        }
        Err(SessionError::Submit(SubmitError::ShuttingDown)) => {
            ctx.metrics.shed("shutting-down");
            json_error(503, "shutting down", None)
        }
    }
}

fn close_session(ctx: &ServerCtx, id: SessionId) -> Response {
    if ctx.engine.close_session(id) {
        Response::json(
            200,
            to_json(&Value::Object(vec![
                ("session".to_string(), Value::U64(id)),
                ("closed".to_string(), Value::Bool(true)),
            ])),
        )
    } else {
        json_error(404, "no such session", None)
    }
}

fn job_status(ctx: &ServerCtx, id: JobId, wait: bool) -> Response {
    let Some(handle) = ctx.directory.handle(id) else {
        return json_error(404, "no such job", None);
    };
    if wait {
        let output = handle.wait();
        return Response::json(200, to_json(&wire::output_value(&output)));
    }
    let progress = handle.poll_progress();
    let mut value = wire::progress_value(&progress);
    if let Some(output) = handle.try_output() {
        if let Value::Object(fields) = &mut value {
            fields.push(("output".to_string(), wire::output_value(&output)));
        }
    }
    Response::json(200, to_json(&value))
}

fn cancel(ctx: &ServerCtx, id: JobId) -> Response {
    match ctx.directory.handle(id) {
        None => json_error(404, "no such job", None),
        Some(handle) => {
            handle.cancel();
            let progress = handle.poll_progress();
            Response::json(
                200,
                to_json(&Value::Object(vec![
                    ("job".to_string(), Value::U64(id)),
                    ("cancelled".to_string(), Value::Bool(true)),
                    (
                        "state".to_string(),
                        Value::Str(wire::state_str(progress.state).to_string()),
                    ),
                ])),
            )
        }
    }
}

fn metrics(ctx: &ServerCtx, format: Option<&str>) -> Response {
    let snapshot = ctx.engine.inspector();
    match format {
        Some("json") => match serde_json::to_string(&snapshot) {
            Ok(json) => Response::json(200, json),
            Err(e) => json_error(500, &format!("snapshot serialisation failed: {e}"), None),
        },
        _ => {
            // Engine/core sections first, then the serve edge's own
            // per-route histograms and shed counters (same line
            // grammar; the JSON format stays the inspector snapshot
            // verbatim, which is what round-trips byte-identically).
            let mut text = snapshot.render_text();
            ctx.metrics.render_into(&mut text);
            Response::text(200, text)
        }
    }
}

fn stream_progress(stream: &mut TcpStream, ctx: &ServerCtx, id: JobId) {
    let Some(handle) = ctx.directory.handle(id) else {
        return;
    };
    if http::start_chunked(stream, "application/x-ndjson").is_err() {
        return;
    }
    loop {
        let progress = handle.poll_progress();
        let mut line = to_json(&wire::progress_value(&progress));
        line.push('\n');
        if http::write_chunk(stream, line.as_bytes()).is_err() {
            return; // client went away
        }
        if progress.state.is_terminal() {
            break;
        }
        std::thread::sleep(ctx.config.stream_interval);
    }
    let output = handle.wait();
    let mut line = to_json(&wire::output_value(&output));
    line.push('\n');
    let _ = http::write_chunk(stream, line.as_bytes());
    let _ = http::finish_chunks(stream);
    let _ = stream.flush();
}

fn json_error(status: u16, message: &str, retry_after_ms: Option<u64>) -> Response {
    let resp = Response::json(status, to_json(&wire::error_value(message, retry_after_ms)));
    match retry_after_ms {
        Some(ms) => resp.with_retry_after(ms.div_ceil(1000).max(1)),
        None => resp,
    }
}
