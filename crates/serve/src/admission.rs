//! Admission control for the HTTP front door, layered on the engine's
//! bounded queue: per-tenant in-flight quotas, priority lanes over the
//! queue-depth gauge, and deadline-aware load shedding driven by the
//! engine's queue-wait p95.
//!
//! The decision function is pure — every input is a number the caller
//! snapshots — so each policy edge is unit-testable without sockets or
//! threads. A rejected job is **never** enqueued; the 429 carries a
//! `Retry-After` derived from the same wait model that shed it.

/// Priority lane of a submission. Lanes partition the queue-depth
/// gauge: low-priority work is shed first as the queue fills, high
/// priority can use the full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    Low,
    Normal,
    High,
}

impl Priority {
    /// Parses the wire value; `None`/empty means `Normal`.
    pub fn parse(s: Option<&str>) -> Result<Priority, String> {
        match s {
            None | Some("") | Some("normal") => Ok(Priority::Normal),
            Some("low") => Ok(Priority::Low),
            Some("high") => Ok(Priority::High),
            Some(other) => Err(format!(
                "unknown priority '{other}' (expected low, normal, or high)"
            )),
        }
    }

    /// Fraction of the queue this lane may fill before shedding.
    fn depth_allowance(self) -> f64 {
        match self {
            Priority::Low => 0.50,
            Priority::Normal => 0.85,
            Priority::High => 1.0,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Everything the decision looks at, snapshotted by the caller.
#[derive(Debug, Clone)]
pub struct AdmissionInputs {
    /// Non-terminal jobs this tenant already has in the system.
    pub tenant_inflight: usize,
    /// Per-tenant in-flight cap.
    pub tenant_quota: usize,
    pub priority: Priority,
    /// Current submission-queue depth, replica tasks.
    pub queue_depth: usize,
    /// Submission-queue capacity, replica tasks.
    pub queue_capacity: usize,
    /// Replica tasks this job would enqueue.
    pub replicas: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Queue-wait p95 from the engine registry, nanoseconds (0 until
    /// the first replica has been picked up).
    pub queue_wait_p95_ns: u64,
    /// The job's wall-clock allowance in milliseconds: its budget
    /// deadline, or the request's `ttl_ms`, whichever the caller
    /// resolved. `None` opts out of deadline shedding.
    pub deadline_ms: Option<u64>,
}

/// Outcome of [`decide`] / [`decide_open_session`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    Admit,
    Reject {
        /// HTTP status (always 429 here; queue-full and shutdown 503s
        /// come from the engine itself).
        status: u16,
        reason: String,
        /// Suggested backoff, milliseconds.
        retry_after_ms: u64,
        /// Stable machine-readable rejection class — the label of the
        /// edge's shed-by-reason counter (one of
        /// [`crate::metrics::SHED_REASONS`]).
        kind: &'static str,
    },
}

/// Expected queue wait for a job entering at `depth`, in milliseconds:
/// the p95 historical wait scaled by how loaded the queue is right now
/// relative to the worker pool. An empty queue predicts zero wait
/// regardless of history, so an idle engine never sheds.
pub fn predicted_wait_ms(queue_depth: usize, workers: usize, queue_wait_p95_ns: u64) -> u64 {
    if queue_depth == 0 {
        return 0;
    }
    let p95_ms = queue_wait_p95_ns / 1_000_000;
    let batches_ahead = queue_depth.div_ceil(workers.max(1)) as u64;
    p95_ms.saturating_mul(batches_ahead)
}

pub fn decide(inputs: &AdmissionInputs) -> Decision {
    // Quota first: a tenant at its cap is rejected regardless of how
    // empty the queue is, so one tenant cannot monopolise the engine.
    if inputs.tenant_inflight >= inputs.tenant_quota {
        let wait = predicted_wait_ms(inputs.queue_depth, inputs.workers, inputs.queue_wait_p95_ns);
        return Decision::Reject {
            status: 429,
            reason: format!(
                "tenant quota exceeded ({} of {} jobs in flight)",
                inputs.tenant_inflight, inputs.tenant_quota
            ),
            retry_after_ms: wait.max(250),
            kind: "tenant-quota",
        };
    }

    // Priority lane: each lane may only fill its share of the queue.
    // `High` keeps the whole queue; the engine's own all-or-nothing
    // check still applies after admission.
    let allowed_depth =
        (inputs.queue_capacity as f64 * inputs.priority.depth_allowance()).floor() as usize;
    if inputs.queue_depth + inputs.replicas > allowed_depth {
        let wait = predicted_wait_ms(inputs.queue_depth, inputs.workers, inputs.queue_wait_p95_ns);
        return Decision::Reject {
            status: 429,
            reason: format!(
                "{} lane full (depth {} + {} replicas > {} allowed of {})",
                inputs.priority.as_str(),
                inputs.queue_depth,
                inputs.replicas,
                allowed_depth,
                inputs.queue_capacity
            ),
            retry_after_ms: wait.max(250),
            kind: "lane",
        };
    }

    // Deadline shedding: refuse work whose own budget will already be
    // spent waiting in the queue — running it would only burn workers
    // to produce a deadline-tripped result nobody wants.
    if let Some(deadline_ms) = inputs.deadline_ms {
        let wait = predicted_wait_ms(inputs.queue_depth, inputs.workers, inputs.queue_wait_p95_ns);
        if wait > deadline_ms {
            return Decision::Reject {
                status: 429,
                reason: format!(
                    "deadline unmeetable (predicted queue wait {wait}ms > budget {deadline_ms}ms)"
                ),
                retry_after_ms: wait,
                kind: "deadline",
            };
        }
    }

    Decision::Admit
}

/// Everything the session-open decision looks at, snapshotted by the
/// caller. Step submissions on an already-open session skip job
/// admission — steps are strictly serial per session, so open sessions
/// *are* the concurrency bound — which makes this the single gate a
/// tenant's warm-tree footprint passes through.
#[derive(Debug, Clone)]
pub struct SessionAdmissionInputs {
    /// Sessions this tenant already has open.
    pub tenant_sessions: usize,
    /// Per-tenant open-session cap.
    pub session_quota: usize,
}

/// Decides a `POST /sessions`. Only the per-tenant quota is checked
/// here; the engine's own session table enforces the global count and
/// byte bounds (by LRU eviction, or `AtCapacity` when everything is
/// busy).
pub fn decide_open_session(inputs: &SessionAdmissionInputs) -> Decision {
    if inputs.tenant_sessions >= inputs.session_quota {
        return Decision::Reject {
            status: 429,
            reason: format!(
                "session quota exceeded ({} of {} sessions open)",
                inputs.tenant_sessions, inputs.session_quota
            ),
            // Sessions are long-lived; there is no queue model to
            // predict from, so suggest a fixed polite backoff.
            retry_after_ms: 1000,
            kind: "session-quota",
        };
    }
    Decision::Admit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AdmissionInputs {
        AdmissionInputs {
            tenant_inflight: 0,
            tenant_quota: 4,
            priority: Priority::Normal,
            queue_depth: 0,
            queue_capacity: 100,
            replicas: 1,
            workers: 2,
            queue_wait_p95_ns: 50_000_000, // 50ms
            deadline_ms: None,
        }
    }

    fn rejected(d: Decision) -> (String, u64) {
        match d {
            Decision::Reject {
                status,
                reason,
                retry_after_ms,
                ..
            } => {
                assert_eq!(status, 429);
                (reason, retry_after_ms)
            }
            Decision::Admit => panic!("expected rejection"),
        }
    }

    #[test]
    fn idle_engine_admits_everything() {
        assert_eq!(decide(&base()), Decision::Admit);
        // Even with a tiny deadline: empty queue predicts zero wait.
        let mut i = base();
        i.deadline_ms = Some(1);
        assert_eq!(decide(&i), Decision::Admit);
    }

    #[test]
    fn tenant_quota_rejects_at_cap_regardless_of_depth() {
        let mut i = base();
        i.tenant_inflight = 4;
        let (reason, retry) = rejected(decide(&i));
        assert!(reason.contains("quota"), "{reason}");
        assert!(retry >= 250, "retry-after has a floor");
        // One below the cap is fine.
        i.tenant_inflight = 3;
        assert_eq!(decide(&i), Decision::Admit);
    }

    #[test]
    fn lanes_partition_the_queue_depth() {
        let mut i = base();
        i.queue_depth = 60;
        i.priority = Priority::Low; // allowance 50
        let (reason, _) = rejected(decide(&i));
        assert!(reason.contains("low lane full"), "{reason}");
        i.priority = Priority::Normal; // allowance 85
        assert_eq!(decide(&i), Decision::Admit);
        i.queue_depth = 90;
        let (reason, _) = rejected(decide(&i));
        assert!(reason.contains("normal lane full"), "{reason}");
        i.priority = Priority::High; // allowance 100
        assert_eq!(decide(&i), Decision::Admit);
        i.queue_depth = 100;
        rejected(decide(&i));
    }

    #[test]
    fn replicas_count_against_the_lane() {
        let mut i = base();
        i.priority = Priority::High;
        i.queue_depth = 95;
        i.replicas = 6;
        rejected(decide(&i));
        i.replicas = 5;
        assert_eq!(decide(&i), Decision::Admit);
    }

    #[test]
    fn unmeetable_deadlines_are_shed_with_the_predicted_wait() {
        let mut i = base();
        i.queue_depth = 8; // ceil(8/2) = 4 batches × 50ms = 200ms
        i.deadline_ms = Some(100);
        let (reason, retry) = rejected(decide(&i));
        assert!(reason.contains("deadline unmeetable"), "{reason}");
        assert_eq!(retry, 200);
        // A roomier budget on the same queue is admitted.
        i.deadline_ms = Some(500);
        assert_eq!(decide(&i), Decision::Admit);
        // No deadline opts out of shedding entirely.
        i.deadline_ms = None;
        assert_eq!(decide(&i), Decision::Admit);
    }

    #[test]
    fn predicted_wait_is_zero_on_an_empty_queue() {
        assert_eq!(predicted_wait_ms(0, 2, u64::MAX), 0);
        assert_eq!(predicted_wait_ms(4, 2, 50_000_000), 100);
        // Zero workers cannot divide-by-zero.
        assert_eq!(predicted_wait_ms(4, 0, 50_000_000), 200);
    }

    #[test]
    fn session_quota_gates_opens_per_tenant() {
        let mut i = SessionAdmissionInputs {
            tenant_sessions: 0,
            session_quota: 2,
        };
        assert_eq!(decide_open_session(&i), Decision::Admit);
        i.tenant_sessions = 2;
        match decide_open_session(&i) {
            Decision::Reject {
                status,
                reason,
                kind,
                ..
            } => {
                assert_eq!(status, 429);
                assert_eq!(kind, "session-quota");
                assert!(reason.contains("session quota"), "{reason}");
            }
            Decision::Admit => panic!("expected rejection at quota"),
        }
    }

    #[test]
    fn priority_parses_from_the_wire() {
        assert_eq!(Priority::parse(None).unwrap(), Priority::Normal);
        assert_eq!(Priority::parse(Some("low")).unwrap(), Priority::Low);
        assert_eq!(Priority::parse(Some("high")).unwrap(), Priority::High);
        assert!(Priority::parse(Some("urgent")).is_err());
    }
}
