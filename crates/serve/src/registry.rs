//! The server's job directory: engine job id → (tenant, handle).
//!
//! The engine's [`JobHandle`] is the single source of truth for job
//! state; this directory only adds the two things HTTP needs — lookup
//! by id after the submitting connection is gone, and a per-tenant
//! in-flight count for admission quotas. Terminal entries are retained
//! (bounded) so a poll shortly after completion still finds its result.

use nmcs_engine::{JobHandle, JobId};
use parking_lot::Mutex;

struct Entry {
    id: JobId,
    tenant: String,
    handle: JobHandle,
}

pub struct JobDirectory {
    entries: Mutex<Vec<Entry>>,
    /// Terminal entries kept for late polls; older ones are evicted
    /// oldest-first once the count exceeds this.
    retain_terminal: usize,
}

impl JobDirectory {
    pub fn new(retain_terminal: usize) -> Self {
        JobDirectory {
            entries: Mutex::new(Vec::new()),
            retain_terminal,
        }
    }

    /// Registers a freshly admitted job and prunes old terminal
    /// entries. The insert happens after the engine accepted the job,
    /// so every directory entry has a live handle.
    pub fn insert(&self, tenant: &str, handle: JobHandle) {
        let mut entries = self.entries.lock();
        entries.push(Entry {
            id: handle.id(),
            tenant: tenant.to_string(),
            handle,
        });
        let terminal = entries
            .iter()
            .filter(|e| e.handle.try_output().is_some())
            .count();
        if terminal > self.retain_terminal {
            let mut evict = terminal - self.retain_terminal;
            entries.retain(|e| {
                if evict > 0 && e.handle.try_output().is_some() {
                    evict -= 1;
                    false
                } else {
                    true
                }
            });
        }
    }

    /// A clone of the job's handle (cheap: one `Arc`), for polling,
    /// waiting, or cancelling outside the directory lock.
    pub fn handle(&self, id: JobId) -> Option<JobHandle> {
        self.entries
            .lock()
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.handle.clone())
    }

    /// Non-terminal jobs currently registered for `tenant` — the quota
    /// gauge. Counted live from the handles so a finished job frees its
    /// quota slot without any reaper thread.
    pub fn tenant_inflight(&self, tenant: &str) -> usize {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.tenant == tenant && e.handle.try_output().is_none())
            .count()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::SearchSpec;
    use nmcs_engine::{Engine, EngineConfig, JobSpec};
    use nmcs_games::SumGame;

    fn engine() -> Engine {
        Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 16,
        })
        .unwrap()
    }

    fn job(name: &str, seed: u64) -> JobSpec {
        JobSpec::from_spec(
            name,
            SumGame::random(3, 3, seed),
            SearchSpec::sample().seed(seed).build(),
        )
    }

    #[test]
    fn quota_gauge_counts_only_non_terminal_jobs_per_tenant() {
        let e = engine();
        let dir = JobDirectory::new(64);
        let handles: Vec<_> = (0..3).map(|i| e.submit(job("acme", i)).unwrap()).collect();
        for h in &handles {
            dir.insert("acme", h.clone());
        }
        dir.insert("other", e.submit(job("other", 9)).unwrap());
        assert_eq!(dir.len(), 4);
        // Drain everything; the gauge must fall to zero with no reaper.
        for h in handles {
            h.join();
        }
        let other_id = dir.entries.lock()[3].id;
        dir.handle(other_id).unwrap().wait();
        assert_eq!(dir.tenant_inflight("acme"), 0);
        assert_eq!(dir.tenant_inflight("other"), 0);
        assert_eq!(dir.tenant_inflight("unknown"), 0);
        e.shutdown();
    }

    #[test]
    fn terminal_entries_are_retained_then_evicted_oldest_first() {
        let e = engine();
        let dir = JobDirectory::new(2);
        let mut ids = Vec::new();
        for i in 0..5 {
            let h = e.submit(job("t", i)).unwrap();
            ids.push(h.id());
            h.clone().join(); // terminal before the next insert
            dir.insert("t", h);
        }
        // Retention: at most 2 terminal entries besides the fresh one.
        assert!(dir.len() <= 3, "len {}", dir.len());
        // The newest ids survive; the oldest were evicted.
        assert!(dir.handle(ids[4]).is_some());
        assert!(dir.handle(ids[0]).is_none());
        e.shutdown();
    }
}
