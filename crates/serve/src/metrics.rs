//! Serve-edge observability: per-route latency histograms and
//! shed-by-reason counters, appended below the engine section of the
//! `/metrics` text exposition.
//!
//! Route labels and shed reasons are both small closed sets of static
//! strings, so the histograms ride the core's lock-free
//! [`TagHistograms`] (tagged by an FNV-1a hash of the label — no
//! collisions are possible between labels this module controls) and the
//! counters are a fixed array of atomics. Recording is allocation-free
//! on every request after a route's first sight.

use nmcs_core::metrics::TagHistograms;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Every reason the edge sheds or refuses work, in render order. The
/// first four come from [`crate::admission`] decisions; the last two
/// are the engine's own backpressure surfacing as 503s.
pub const SHED_REASONS: [&str; 7] = [
    "tenant-quota",
    "lane",
    "deadline",
    "session-quota",
    "session-capacity",
    "queue-full",
    "shutting-down",
];

/// The serve layer's own gauges, one instance per server.
pub struct ServeMetrics {
    /// Request-handling latency keyed by route template (e.g.
    /// `POST /jobs`); for streaming routes this measures the routing
    /// and setup, not the stream's lifetime.
    routes: TagHistograms,
    /// Requests refused, by reason, indexed like [`SHED_REASONS`].
    shed: [AtomicU64; SHED_REASONS.len()],
}

impl ServeMetrics {
    pub fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        ServeMetrics {
            routes: TagHistograms::new(),
            shed: [ZERO; SHED_REASONS.len()],
        }
    }

    /// Records one handled request under its route template.
    pub fn record_route(&self, label: &'static str, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.routes.record(fnv1a(label), label, ns);
    }

    /// Counts one refused request. Unknown reasons are ignored rather
    /// than panicking — the set is closed by construction, so a miss
    /// here is a programming error a test catches, not a crash.
    pub fn shed(&self, reason: &str) {
        if let Some(i) = SHED_REASONS.iter().position(|r| *r == reason) {
            self.shed[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shed count for one reason (test hook).
    pub fn shed_count(&self, reason: &str) -> u64 {
        SHED_REASONS
            .iter()
            .position(|r| *r == reason)
            .map_or(0, |i| self.shed[i].load(Ordering::Relaxed))
    }

    /// Appends the serve section to a `/metrics` text exposition. Lines
    /// follow the same `name{labels} value` grammar as the core render
    /// (histograms mirror its `_count` / `_sum` / `quantile` shape).
    pub fn render_into(&self, s: &mut String) {
        use std::fmt::Write as _;
        for t in self.routes.snapshot() {
            let h = &t.hist;
            let _ = writeln!(
                s,
                "serve_route_seconds_count{{route=\"{}\"}} {}",
                t.label, h.count
            );
            let _ = writeln!(
                s,
                "serve_route_seconds_sum{{route=\"{}\"}} {}",
                t.label,
                h.sum_ns as f64 / 1e9
            );
            for (q, v) in [("0.5", h.p50_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)] {
                let _ = writeln!(
                    s,
                    "serve_route_seconds{{route=\"{}\",quantile=\"{q}\"}} {}",
                    t.label,
                    v as f64 / 1e9
                );
            }
        }
        for (reason, counter) in SHED_REASONS.iter().zip(&self.shed) {
            let _ = writeln!(
                s,
                "serve_shed_total{{reason=\"{reason}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over the label bytes — the route/reason tag space is tiny and
/// fully controlled here, so a 64-bit hash cannot collide in practice.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_and_sheds_render_one_parsable_line_each() {
        let m = ServeMetrics::new();
        m.record_route("POST /jobs", Duration::from_millis(3));
        m.record_route("POST /jobs", Duration::from_millis(5));
        m.record_route("GET /metrics", Duration::from_micros(80));
        m.shed("tenant-quota");
        m.shed("queue-full");
        m.shed("queue-full");
        m.shed("not-a-reason"); // ignored, not a panic
        let mut s = String::new();
        m.render_into(&mut s);
        assert!(s.contains("serve_route_seconds_count{route=\"POST /jobs\"} 2"));
        assert!(s.contains("serve_route_seconds_count{route=\"GET /metrics\"} 1"));
        assert!(s.contains("serve_shed_total{reason=\"tenant-quota\"} 1"));
        assert!(s.contains("serve_shed_total{reason=\"queue-full\"} 2"));
        assert!(s.contains("serve_shed_total{reason=\"deadline\"} 0"));
        // Every line obeys the `name{labels} value` grammar the soak's
        // parser checks.
        for line in s.lines() {
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
            assert!(
                series.chars().next().unwrap().is_ascii_alphabetic(),
                "bad series: {line}"
            );
        }
        assert_eq!(m.shed_count("queue-full"), 2);
    }
}
