//! The JSON wire format of the job API.
//!
//! Requests reuse the engine's own serde [`SearchSpec`] encoding — the
//! exact JSON a sweep row or `tables --spec` prints — so a spec pasted
//! from an experiment submits unchanged. Responses are hand-encoded
//! [`Value`] trees (the engine's output types carry no serde impls, and
//! the wire shape is a public contract this module owns).

use nmcs_core::{DynGame, SearchSpec};
use nmcs_engine::{JobOutput, JobSpec, JobState, Progress, ReplicaResult, SessionInfo};
use serde::{Deserialize, Serialize, Value};

/// The stock games a job may name. Each position is fully determined by
/// the name plus the spec's seed (mirroring the bench CLI's registry),
/// so `(game, spec)` is a complete, reproducible job description.
pub const GAMES: &[&str] = &[
    "samegame",
    "samegame-small",
    "morpion",
    "morpion-c3",
    "tsp",
    "sum",
    "needle",
];

/// Body of `POST /jobs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Tenant name; becomes the job name and the quota key.
    pub tenant: String,
    /// Stock game name (see [`GAMES`]).
    pub game: String,
    /// The unified search spec: algorithm + budget + seed.
    pub spec: SearchSpec,
    /// Root-parallel replicas; defaults to 1.
    #[serde(default)]
    pub replicas: Option<usize>,
    /// Admission lane: `low`, `normal` (default), or `high`.
    #[serde(default)]
    pub priority: Option<String>,
    /// Wall-clock allowance for deadline shedding when the spec's
    /// budget has no deadline of its own, milliseconds.
    #[serde(default)]
    pub ttl_ms: Option<u64>,
}

/// Body of `POST /sessions`: a stock game plus the spec every step of
/// the session will run under (budget = per-step budget; `tree_reuse`
/// on a UCT/tree-parallel algorithm makes the session warm).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenSessionRequest {
    /// Tenant name; the session-quota key.
    pub tenant: String,
    /// Stock game name (see [`GAMES`]).
    pub game: String,
    /// The unified per-step search spec.
    pub spec: SearchSpec,
}

/// Builds the named stock game's erased starting position. Errors name
/// the unknown game (a 404, not a 400 — the route exists, the resource
/// does not).
pub fn stock_game(name: &str, seed: u64) -> Result<DynGame, String> {
    use morpion::{cross_board, standard_5d, Variant};
    use nmcs_games::{NeedleLadder, SameGame, SumGame, TspGame, TspInstance};

    Ok(match name {
        "samegame" => DynGame::new(SameGame::random(10, 10, 4, seed)),
        "samegame-small" => DynGame::new(SameGame::random(6, 6, 3, seed)),
        "morpion" => DynGame::new(standard_5d()),
        "morpion-c3" => DynGame::new(cross_board(Variant::Disjoint, 3)),
        "tsp" => DynGame::new(TspGame::new(TspInstance::random(12, seed), None)),
        "sum" => DynGame::new(SumGame::random(6, 4, seed)),
        "needle" => DynGame::new(NeedleLadder::new(10)),
        other => {
            return Err(format!(
                "unknown game '{other}' (expected one of {GAMES:?})"
            ));
        }
    })
}

/// Builds the engine job for a submit request: the named stock game
/// seeded from the spec, replicas applied.
pub fn build_job(req: &SubmitRequest) -> Result<JobSpec, String> {
    let game = stock_game(&req.game, req.spec.seed)?;
    let spec = req.spec.clone();
    Ok(JobSpec {
        name: req.tenant.clone(),
        game,
        algorithm: spec.algorithm,
        seed: spec.seed,
        budget: spec.budget,
        replicas: req.replicas.unwrap_or(1).max(1),
        diversify_policies: false,
    })
}

pub fn state_str(state: JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Completed => "completed",
        JobState::Cancelled => "cancelled",
        JobState::Failed => "failed",
    }
}

fn interruption_str(i: nmcs_core::Interruption) -> &'static str {
    match i {
        nmcs_core::Interruption::Cancelled => "cancelled",
        nmcs_core::Interruption::Deadline => "deadline",
        nmcs_core::Interruption::PlayoutBudget => "playout-budget",
        nmcs_core::Interruption::NodeBudget => "node-budget",
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ms(d: std::time::Duration) -> Value {
    Value::F64(d.as_secs_f64() * 1e3)
}

/// `202 Accepted` body for a submitted job.
pub fn accepted_value(job: u64, req: &SubmitRequest, replicas: usize) -> Value {
    obj(vec![
        ("job", Value::U64(job)),
        ("tenant", Value::Str(req.tenant.clone())),
        ("game", Value::Str(req.game.clone())),
        ("replicas", Value::U64(replicas as u64)),
        ("state", Value::Str("queued".to_string())),
    ])
}

/// One progress snapshot (also the chunked stream's line payload).
pub fn progress_value(p: &Progress) -> Value {
    obj(vec![
        ("job", Value::U64(p.job)),
        ("state", Value::Str(state_str(p.state).to_string())),
        ("replicas_total", Value::U64(p.replicas_total as u64)),
        ("replicas_done", Value::U64(p.replicas_done as u64)),
        ("best_score", p.best_score.map_or(Value::Null, Value::I64)),
        (
            "best_replica",
            p.best_replica.map_or(Value::Null, |r| Value::U64(r as u64)),
        ),
        ("work_units", Value::U64(p.work_units)),
        ("queued_for_ms", ms(p.queued_for)),
        ("running_for_ms", ms(p.running_for)),
    ])
}

fn replica_value(r: &ReplicaResult) -> Value {
    obj(vec![
        ("replica", Value::U64(r.replica as u64)),
        ("seed_used", Value::U64(r.seed_used)),
        ("score", Value::I64(r.result.score)),
        (
            "sequence",
            Value::Array(
                r.result
                    .sequence
                    .iter()
                    .map(|&m| Value::U64(m as u64))
                    .collect(),
            ),
        ),
        ("playouts", Value::U64(r.result.stats.playouts)),
        ("work_units", Value::U64(r.result.stats.work_units)),
        (
            "interrupted",
            r.interrupted
                .map_or(Value::Null, |i| Value::Str(interruption_str(i).to_string())),
        ),
        ("elapsed_ms", ms(r.elapsed)),
    ])
}

/// Terminal job outcome: the merged best plus every replica (null for
/// replicas cancelled before finishing). The per-replica `sequence` is
/// index-coded against the root position, exactly what
/// `nmcs_core::decode_result` replays — bit-identity to the direct
/// library call is checked on these values.
pub fn output_value(o: &JobOutput) -> Value {
    obj(vec![
        ("job", Value::U64(o.job)),
        ("tenant", Value::Str(o.name.clone())),
        ("state", Value::Str(state_str(o.state).to_string())),
        ("best", o.best.as_ref().map_or(Value::Null, replica_value)),
        (
            "replicas",
            Value::Array(
                o.replicas
                    .iter()
                    .map(|r| r.as_ref().map_or(Value::Null, replica_value))
                    .collect(),
            ),
        ),
        ("elapsed_ms", ms(o.elapsed)),
    ])
}

/// One session snapshot: `201 Created` body of `POST /sessions` and
/// the `GET /sessions/{id}` body.
pub fn session_value(s: &SessionInfo) -> Value {
    obj(vec![
        ("session", Value::U64(s.id)),
        ("tenant", Value::Str(s.tenant.clone())),
        ("steps", Value::U64(s.steps as u64)),
        ("committed", Value::U64(s.committed as u64)),
        ("score", Value::I64(s.score)),
        ("done", Value::Bool(s.done)),
        ("warm", Value::Bool(s.warm)),
        ("bytes", Value::U64(s.bytes as u64)),
        ("busy", Value::Bool(s.busy)),
    ])
}

/// `202 Accepted` body for a session step: the job id to poll plus the
/// session it advances.
pub fn session_job_accepted_value(job: u64, session: u64, tenant: &str) -> Value {
    obj(vec![
        ("job", Value::U64(job)),
        ("session", Value::U64(session)),
        ("tenant", Value::Str(tenant.to_string())),
        ("state", Value::Str("queued".to_string())),
    ])
}

/// Uniform error body; `retry_after_ms` appears on 429/503 responses.
pub fn error_value(message: &str, retry_after_ms: Option<u64>) -> Value {
    let mut fields = vec![("error", Value::Str(message.to_string()))];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", Value::U64(ms)));
    }
    obj(fields)
}

pub fn to_json(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_round_trips_with_defaults() {
        let json = r#"{
            "tenant": "acme",
            "game": "sum",
            "spec": {"algorithm":{"kind":"nested","level":1},"budget":{},"seed":7}
        }"#;
        let req: SubmitRequest = serde_json::from_str(json).expect("parses");
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.replicas, None);
        assert_eq!(req.priority, None);
        let job = build_job(&req).expect("stock game");
        assert_eq!(job.replicas, 1);
        assert_eq!(job.seed, 7);
        assert_eq!(job.name, "acme");

        let back: SubmitRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back.spec.algorithm.tag(), req.spec.algorithm.tag());
    }

    #[test]
    fn every_stock_game_builds() {
        for game in GAMES {
            let req = SubmitRequest {
                tenant: "t".to_string(),
                game: game.to_string(),
                spec: SearchSpec::sample().seed(3).build(),
                replicas: Some(2),
                priority: None,
                ttl_ms: None,
            };
            let job = build_job(&req).unwrap_or_else(|e| panic!("{game}: {e}"));
            assert_eq!(job.replicas, 2);
        }
    }

    #[test]
    fn unknown_game_is_a_clear_error() {
        let req = SubmitRequest {
            tenant: "t".to_string(),
            game: "chess".to_string(),
            spec: SearchSpec::sample().build(),
            replicas: None,
            priority: None,
            ttl_ms: None,
        };
        assert!(build_job(&req).unwrap_err().contains("unknown game"));
    }
}
