//! The standard starting cross and its scaled variants.
//!
//! The official Morpion Solitaire start position is the outline of a Greek
//! cross drawn with segments of four points (36 points total, as in the
//! paper's Figure 1). For scaled-down experiments — which keep search
//! behaviour qualitatively identical while shrinking runtimes by orders of
//! magnitude — the same outline can be generated with shorter segments.

use crate::board::{Board, Variant, GRID};
use crate::geom::Point;

/// The standard cross segment length (four points per outline segment).
pub const STANDARD_ARM: i16 = 4;

/// Returns the points of the cross outline with segment length `n`
/// (`n ≥ 2`), in board coordinates with the pattern's bounding box centred
/// in the grid window.
///
/// `n = 4` is the official 36-point cross; `n = 3` is a 24-point reduced
/// cross used by the scaled experiment mode; `n = 2` is a 12-point ring
/// used in unit tests.
pub fn cross_points(n: i16) -> Vec<Point> {
    assert!(n >= 2, "cross arm must be at least 2, got {n}");
    let s = 3 * n - 2; // side of the bounding box
    assert!(
        s + 16 <= GRID,
        "cross of arm {n} leaves too little margin in the {GRID}x{GRID} window"
    );
    let off = (GRID - s) / 2;

    let mut pts = Vec::new();
    let a = n - 1; // first inner column
    let b = 2 * n - 2; // second inner column
    let last = s - 1;
    for y in 0..s {
        for x in 0..s {
            let on = if y == 0 || y == last {
                // Top and bottom edges of the vertical bar.
                (a..=b).contains(&x)
            } else if y < a || y > b {
                // Vertical bar sides.
                x == a || x == b
            } else if y == a || y == b {
                // Horizontal bar top/bottom edges, with the gap where the
                // vertical bar passes through.
                x <= a || x >= b
            } else {
                // Horizontal bar sides.
                x == 0 || x == last
            };
            if on {
                pts.push(Point::new(x + off, y + off));
            }
        }
    }
    pts
}

/// Builds a board with the cross of segment length `n` as its initial
/// position.
pub fn cross_board(variant: Variant, n: i16) -> Board {
    Board::from_points(variant, cross_points(n))
}

/// The official 36-point starting position in the paper's 5D variant.
pub fn standard_5d() -> Board {
    cross_board(Variant::Disjoint, STANDARD_ARM)
}

/// The official 36-point starting position in the 5T variant.
pub fn standard_5t() -> Board {
    cross_board(Variant::Touching, STANDARD_ARM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_cross_has_36_points() {
        assert_eq!(cross_points(4).len(), 36);
    }

    #[test]
    fn reduced_crosses_have_expected_sizes() {
        assert_eq!(cross_points(3).len(), 24);
        assert_eq!(cross_points(2).len(), 12);
    }

    #[test]
    fn cross_points_are_distinct() {
        for n in 2..=6 {
            let pts = cross_points(n);
            let set: HashSet<_> = pts.iter().collect();
            assert_eq!(set.len(), pts.len(), "arm {n}");
        }
    }

    #[test]
    fn cross_is_4_fold_symmetric() {
        for n in [2, 3, 4, 5] {
            let pts = cross_points(n);
            let set: HashSet<_> = pts.iter().copied().collect();
            let s = 3 * n - 2;
            let off = (GRID - s) / 2;
            for p in &pts {
                // Reflect across the vertical and horizontal centre lines.
                let rx = Point::new(2 * off + s - 1 - p.x, p.y);
                let ry = Point::new(p.x, 2 * off + s - 1 - p.y);
                // Transpose across the main diagonal (the bounding box is
                // centred identically on both axes).
                let rt = Point::new(p.y, p.x);
                assert!(set.contains(&rx), "arm {n}: {p} vs x-mirror");
                assert!(set.contains(&ry), "arm {n}: {p} vs y-mirror");
                assert!(set.contains(&rt), "arm {n}: {p} vs transpose");
            }
        }
    }

    #[test]
    fn standard_boards_expose_variant_and_points() {
        let d = standard_5d();
        let t = standard_5t();
        assert_eq!(d.variant(), Variant::Disjoint);
        assert_eq!(t.variant(), Variant::Touching);
        assert_eq!(d.initial_points().len(), 36);
        assert_eq!(t.initial_points().len(), 36);
    }

    #[test]
    fn reduced_cross_boards_have_moves() {
        for n in [2, 3, 4] {
            let b = cross_board(Variant::Disjoint, n);
            assert!(
                !b.candidates().is_empty(),
                "arm {n} cross should have at least one first move"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn arm_below_two_rejected() {
        let _ = cross_points(1);
    }
}
