//! The Morpion Solitaire board: rules, incremental move generation, play.
//!
//! A *move* adds one circle (point) to the grid such that a line of five
//! consecutive points — horizontal, vertical, or diagonal — can be drawn
//! through it, the other four already existing. The variants differ in how
//! much two same-direction lines may overlap:
//!
//! * **5T (touching)** — two parallel lines may share an endpoint but not a
//!   unit segment.
//! * **5D (disjoint)** — two parallel lines may not share *any* point
//!   ("a circle cannot be a part of two lines that have the same
//!   direction", paper §II). This is the variant of all the paper's
//!   experiments.
//!
//! The board is a bounded `GRID × GRID` window of the infinite grid, large
//! enough for every humanly- or machine-reachable game from the standard
//! cross (the proven 5D upper bound is 121 moves; record games span well
//! under 40 cells). Move generation is incremental: a cached candidate
//! list is revalidated after each move and extended with the ≤20 windows
//! through the new point, making random playouts allocation-free and fast.

use crate::geom::{Dir, Point, DIRS};
use nmcs_core::{mix64, Game, Score, Undo};
use serde::{Deserialize, Serialize};

/// Domain-separation salts of the board's Zobrist hash: occupancy keys
/// and constraint-bit keys (non-zero: `mix64(0) == 0`).
const OCC_HASH_SALT: u64 = 0x8c2f_50ba_6e91_d437;
const LINE_HASH_SALT: u64 = 0x3b96_e72c_154f_a8d1;

/// Zobrist key of an occupied cell, computed on the fly.
#[inline]
fn occ_key(idx: usize) -> u64 {
    mix64(idx as u64 ^ OCC_HASH_SALT)
}

/// Zobrist key of one constraint bit (`used_bit`/`seg_bit` of one
/// direction) at one cell. The raw bit value distinguishes both the
/// direction and the variant's bit family.
#[inline]
fn line_key(idx: usize, bit: u16) -> u64 {
    mix64((((idx as u64) << 16) | bit as u64) ^ LINE_HASH_SALT)
}

/// Side length of the board window.
pub const GRID: i16 = 64;
const NCELLS: usize = (GRID as usize) * (GRID as usize);

/// Cell bit layout.
const OCC: u16 = 1;
#[inline]
const fn used_bit(d: Dir) -> u16 {
    1 << (1 + d as u16) // 5D: point used by a line of direction d
}
#[inline]
const fn seg_bit(d: Dir) -> u16 {
    1 << (5 + d as u16) // 5T: unit segment from this point toward +d used
}

/// Rule variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// 5T: same-direction lines may share endpoints.
    Touching,
    /// 5D: same-direction lines are fully disjoint (the paper's variant).
    Disjoint,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Variant::Touching => "5T",
            Variant::Disjoint => "5D",
        })
    }
}

/// A legal move: the line runs from `start` for five steps along `dir`;
/// the new point is placed `pos` steps from `start` (`0 ≤ pos ≤ 4`), the
/// other four points already exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Move {
    pub start: Point,
    pub dir: Dir,
    pub pos: u8,
}

impl Move {
    /// The point this move adds to the board.
    #[inline]
    pub fn new_point(&self) -> Point {
        self.start.step(self.dir, self.pos as i16)
    }

    /// The five points of the move's line, in direction order.
    #[inline]
    pub fn line_points(&self) -> [Point; 5] {
        [
            self.start,
            self.start.step(self.dir, 1),
            self.start.step(self.dir, 2),
            self.start.step(self.dir, 3),
            self.start.step(self.dir, 4),
        ]
    }
}

impl std::fmt::Display for Move {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}@{}", self.new_point(), self.dir, self.start)
    }
}

/// One `apply` frame of the undo journal: how much of the candidate
/// cache this move disturbed (the move itself lives in `history`).
#[derive(Debug, Clone, Copy)]
struct MoveFrame {
    /// Start of this frame's evicted candidates in `undo_removed`.
    removed_start: u32,
    /// Number of candidates the move appended at the cache tail.
    added: u32,
}

/// A Morpion Solitaire position.
#[derive(Clone)]
pub struct Board {
    cells: Box<[u16]>,
    /// Zobrist hash of `cells` (occupancy + constraint bits), maintained
    /// incrementally: XORed in `play_move_inner`/`undo` and in
    /// `mark_line`/`unmark_line`, whose set/clear operations are exact
    /// inverses by the legality guarantee. The cells fully determine the
    /// position (score is the move count, derivable from occupancy), so
    /// this is a complete transposition key.
    hash: u64,
    variant: Variant,
    /// Cached legal moves of the current position (kept exact).
    candidates: Vec<Move>,
    /// Moves played so far, in order.
    history: Vec<Move>,
    /// The initial points (for rendering and records).
    initial: std::sync::Arc<Vec<Point>>,
    /// Top-left corner of the initial points' bounding box; record
    /// coordinates are relative to it.
    origin: Point,
    /// Undo spill buffer: candidates evicted by recorded moves, with
    /// their pre-eviction indices (ascending within a frame) so undo can
    /// re-insert them in the exact original cache order — move order
    /// feeds the search RNG, so "same set, different order" would change
    /// results.
    undo_removed: Vec<(u32, Move)>,
    /// One frame per outstanding recorded `apply`.
    undo_frames: Vec<MoveFrame>,
}

impl Board {
    /// Builds a board with the given `initial` points placed.
    ///
    /// Panics if a point is out of the grid window or duplicated.
    pub fn from_points(variant: Variant, initial: Vec<Point>) -> Self {
        assert!(!initial.is_empty(), "initial position must have points");
        let mut cells = vec![0u16; NCELLS].into_boxed_slice();
        let mut min = Point::new(i16::MAX, i16::MAX);
        let mut hash = 0u64;
        for p in &initial {
            assert!(
                in_bounds(*p),
                "initial point {p} outside the {GRID}x{GRID} window"
            );
            let idx = cell_index(*p);
            assert_eq!(cells[idx] & OCC, 0, "duplicate initial point {p}");
            cells[idx] |= OCC;
            hash ^= occ_key(idx);
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
        }
        let mut board = Self {
            cells,
            hash,
            variant,
            candidates: Vec::new(),
            history: Vec::new(),
            initial: std::sync::Arc::new(initial),
            origin: min,
            undo_removed: Vec::new(),
            undo_frames: Vec::new(),
        };
        board.candidates = board.recompute_candidates();
        board
    }

    /// The rule variant in force.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Number of moves played so far (the Morpion score).
    pub fn move_count(&self) -> usize {
        self.history.len()
    }

    /// The moves played so far, in order.
    pub fn history(&self) -> &[Move] {
        &self.history
    }

    /// The initial points.
    pub fn initial_points(&self) -> &[Point] {
        &self.initial
    }

    /// Top-left corner of the initial points' bounding box.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The current legal moves (cached, exact).
    pub fn candidates(&self) -> &[Move] {
        &self.candidates
    }

    /// Whether `p` holds a point (initial or played).
    #[inline]
    pub fn occupied(&self, p: Point) -> bool {
        in_bounds(p) && self.cells[cell_index(p)] & OCC != 0
    }

    /// Bounding box `(min, max)` of all occupied points.
    pub fn extent(&self) -> (Point, Point) {
        let mut min = Point::new(i16::MAX, i16::MAX);
        let mut max = Point::new(i16::MIN, i16::MIN);
        for y in 0..GRID {
            for x in 0..GRID {
                if self.cells[cell_index(Point::new(x, y))] & OCC != 0 {
                    min.x = min.x.min(x);
                    min.y = min.y.min(y);
                    max.x = max.x.max(x);
                    max.y = max.y.max(y);
                }
            }
        }
        (min, max)
    }

    /// Checks a move against the full rules of the current position.
    pub fn is_legal(&self, m: &Move) -> bool {
        m.pos < 5
            && self
                .check_window(m.start, m.dir)
                .is_some_and(|legal| legal.pos == m.pos)
    }

    /// Plays a legal move, updating the candidate cache incrementally.
    ///
    /// Panics (in all builds) if the move is illegal: silently corrupting a
    /// search is worse than failing fast, and the check is five cell reads.
    pub fn play_move(&mut self, m: &Move) {
        self.play_move_inner(m, false);
    }

    fn play_move_inner(&mut self, m: &Move, record: bool) {
        assert!(self.is_legal(m), "illegal move {m}");
        let q: Point = m.new_point();
        self.cells[cell_index(q)] |= OCC;
        self.hash ^= occ_key(cell_index(q));
        self.mark_line(m.start, m.dir);

        // Revalidate the cache: a candidate dies iff its new point just got
        // occupied, or it shares constraint marks with the played line
        // (same direction only — other directions' bits are untouched).
        // With `record`, evicted candidates are journalled with their
        // pre-eviction indices so undo can restore the exact cache order.
        let dir = m.dir;
        let removed_start = self.undo_removed.len() as u32;
        let mut write = 0usize;
        for read in 0..self.candidates.len() {
            let c = self.candidates[read];
            let keep = c.new_point() != q
                && (c.dir != dir || constraints_free(&self.cells, self.variant, c.start, c.dir));
            if keep {
                self.candidates[write] = c;
                write += 1;
            } else if record {
                self.undo_removed.push((read as u32, c));
            }
        }
        self.candidates.truncate(write);

        // Add the windows through the new point. No candidate surviving the
        // filter contains `q` (it would have had two empty cells before
        // this move), so these are never duplicates.
        let before_add = self.candidates.len();
        for e in DIRS {
            for k in 0..5i16 {
                let start = q.step(e, -k);
                if let Some(mv) = self.check_window(start, e) {
                    self.candidates.push(mv);
                }
            }
        }
        if record {
            self.undo_frames.push(MoveFrame {
                removed_start,
                added: (self.candidates.len() - before_add) as u32,
            });
        }

        self.history.push(*m);
    }

    /// Clears the constraint bits of a line being undone. Sound because
    /// the legality check at play time guaranteed the bits were clear
    /// before the line was marked.
    fn unmark_line(&mut self, start: Point, dir: Dir) {
        match self.variant {
            Variant::Disjoint => {
                for k in 0..5i16 {
                    let idx = cell_index(start.step(dir, k));
                    self.cells[idx] &= !used_bit(dir);
                    self.hash ^= line_key(idx, used_bit(dir));
                }
            }
            Variant::Touching => {
                for k in 0..4i16 {
                    let idx = cell_index(start.step(dir, k));
                    self.cells[idx] &= !seg_bit(dir);
                    self.hash ^= line_key(idx, seg_bit(dir));
                }
            }
        }
    }

    /// Structural + constraint check of the 5-window starting at `start`
    /// along `dir`. Returns the move (with the correct `pos`) iff exactly
    /// one cell is empty and the variant's overlap constraints allow a new
    /// line here.
    fn check_window(&self, start: Point, dir: Dir) -> Option<Move> {
        let end = start.step(dir, 4);
        if !in_bounds(start) || !in_bounds(end) {
            return None;
        }
        let mut empty_pos: Option<u8> = None;
        for k in 0..5i16 {
            let p = start.step(dir, k);
            if self.cells[cell_index(p)] & OCC == 0 {
                if empty_pos.is_some() {
                    return None; // two empties
                }
                empty_pos = Some(k as u8);
            }
        }
        let pos = empty_pos?; // all-occupied windows are not moves
        if !constraints_free(&self.cells, self.variant, start, dir) {
            return None;
        }
        Some(Move { start, dir, pos })
    }

    /// Marks the constraint bits of a just-played line.
    fn mark_line(&mut self, start: Point, dir: Dir) {
        // Legality guaranteed the bits were clear, so `|=` truly flips
        // 0 → 1 on every cell and the XOR below is its exact inverse.
        match self.variant {
            Variant::Disjoint => {
                for k in 0..5i16 {
                    let idx = cell_index(start.step(dir, k));
                    self.cells[idx] |= used_bit(dir);
                    self.hash ^= line_key(idx, used_bit(dir));
                }
            }
            Variant::Touching => {
                for k in 0..4i16 {
                    let idx = cell_index(start.step(dir, k));
                    self.cells[idx] |= seg_bit(dir);
                    self.hash ^= line_key(idx, seg_bit(dir));
                }
            }
        }
    }

    /// Recomputes the legal-move list from scratch (O(grid²)); the
    /// incremental cache is tested against this.
    pub fn recompute_candidates(&self) -> Vec<Move> {
        let mut out = Vec::new();
        for y in 0..GRID {
            for x in 0..GRID {
                let start = Point::new(x, y);
                for dir in DIRS {
                    if let Some(mv) = self.check_window(start, dir) {
                        out.push(mv);
                    }
                }
            }
        }
        out
    }
}

#[inline]
fn in_bounds(p: Point) -> bool {
    (0..GRID).contains(&p.x) && (0..GRID).contains(&p.y)
}

#[inline]
fn cell_index(p: Point) -> usize {
    debug_assert!(in_bounds(p));
    p.y as usize * GRID as usize + p.x as usize
}

fn constraints_free(cells: &[u16], variant: Variant, start: Point, dir: Dir) -> bool {
    match variant {
        Variant::Disjoint => {
            let bit = used_bit(dir);
            (0..5i16).all(|k| cells[cell_index(start.step(dir, k))] & bit == 0)
        }
        Variant::Touching => {
            let bit = seg_bit(dir);
            (0..4i16).all(|k| cells[cell_index(start.step(dir, k))] & bit == 0)
        }
    }
}

impl Game for Board {
    type Move = Move;

    fn legal_moves(&self, out: &mut Vec<Move>) {
        out.extend_from_slice(&self.candidates);
    }

    fn play(&mut self, mv: &Move) {
        self.play_move(mv);
    }

    /// The Morpion score: "the score is the number of moves played in the
    /// game" (paper §III).
    fn score(&self) -> Score {
        self.history.len() as Score
    }

    fn moves_played(&self) -> usize {
        self.history.len()
    }

    fn is_terminal(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The incrementally maintained Zobrist key over occupancy and
    /// constraint bits — cells fully determine the position (the score is
    /// the move count, derivable from occupancy minus the fixed cross),
    /// so transposed move orders reaching the same marks hash equal.
    // nmcs-lint: hot-entry
    fn state_hash(&self) -> u64 {
        self.hash
    }

    // Scratch-state fast path: the board journals the candidates each
    // recorded move evicted (plus a tail count of additions); everything
    // else a move did — one occupancy bit, one line's constraint bits,
    // the history entry — reverses from the move itself.

    fn supports_undo(&self) -> bool {
        true
    }

    // nmcs-lint: hot-entry
    fn apply(&mut self, mv: &Move) -> Undo<Self> {
        self.play_move_inner(mv, true);
        Undo::internal()
    }

    // nmcs-lint: hot-entry
    fn undo(&mut self, token: Undo<Self>) {
        debug_assert!(token.is_internal());
        let m = self.history.pop().expect("undo without apply");
        let frame = self.undo_frames.pop().expect("a recorded frame per apply");

        // Board bits.
        let q: Point = m.new_point();
        self.cells[cell_index(q)] &= !OCC;
        self.hash ^= occ_key(cell_index(q));
        self.unmark_line(m.start, m.dir);

        // Candidate cache: drop this move's tail additions, then re-insert
        // the evicted candidates at their original (ascending) indices —
        // restoring not just the set but the exact enumeration order the
        // search RNG depends on.
        self.candidates
            .truncate(self.candidates.len() - frame.added as usize);
        let removed_start = frame.removed_start as usize;
        for i in removed_start..self.undo_removed.len() {
            let (idx, c) = self.undo_removed[i];
            self.candidates.insert(idx as usize, c);
        }
        self.undo_removed.truncate(removed_start);
    }
}

impl nmcs_core::CodedGame for Board {
    /// Moves are identified by (line start, direction, new-point slot):
    /// stable across positions, exactly what NRPA's policy table needs
    /// (Rosin's NRPA record runs on Morpion use the same identification).
    fn move_code(&self, mv: &Move) -> u64 {
        let cell = mv.start.y as u64 * GRID as u64 + mv.start.x as u64;
        (cell << 5) | ((mv.dir.index() as u64) << 3) | mv.pos as u64
    }
}

impl std::fmt::Debug for Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Board({}, {} initial, {} moves, {} candidates)",
            self.variant,
            self.initial.len(),
            self.history.len(),
            self.candidates.len()
        )
    }
}

// The unit tests exercise the deprecated shims on purpose (legacy-
// surface regression net; the unified API has its own coverage).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross::cross_board;

    fn row_board(variant: Variant, n: usize) -> Board {
        // n consecutive points on a horizontal row, centred.
        let y = GRID / 2;
        let x0 = (GRID - n as i16) / 2;
        let pts = (0..n as i16).map(|i| Point::new(x0 + i, y)).collect();
        Board::from_points(variant, pts)
    }

    #[test]
    fn four_in_a_row_has_two_extensions() {
        for variant in [Variant::Disjoint, Variant::Touching] {
            let b = row_board(variant, 4);
            assert_eq!(b.candidates().len(), 2, "{variant}: extend left or right");
            for c in b.candidates() {
                assert_eq!(c.dir, Dir::E);
            }
        }
    }

    #[test]
    fn three_in_a_row_has_no_moves() {
        let b = row_board(Variant::Disjoint, 3);
        assert!(b.candidates().is_empty());
        assert!(b.is_terminal());
    }

    #[test]
    fn playing_an_extension_marks_line_and_updates_candidates() {
        let mut b = row_board(Variant::Disjoint, 4);
        let mv = b.candidates()[0];
        b.play_move(&mv);
        assert_eq!(b.move_count(), 1);
        assert!(b.occupied(mv.new_point()));
        // 5 points in a used row: in 5D no further horizontal move may
        // reuse any of them; a row of 5 has no legal move at all.
        assert!(b.candidates().is_empty());
    }

    #[test]
    fn touching_allows_endpoint_reuse_disjoint_does_not() {
        // X X X X _ X X X _ : playing [x0..x0+4] fills the first gap; the
        // follow-up line [x0+4..x0+8] then shares exactly the endpoint
        // x0+4 with it and adds a point in the second gap.
        let y = GRID / 2;
        let x0 = GRID / 2 - 4;
        let pts: Vec<Point> = [0i16, 1, 2, 3, 5, 6, 7]
            .iter()
            .map(|&i| Point::new(x0 + i, y))
            .collect();

        for variant in [Variant::Disjoint, Variant::Touching] {
            let mut b = Board::from_points(variant, pts.clone());
            let first = Move {
                start: Point::new(x0, y),
                dir: Dir::E,
                pos: 4,
            };
            assert!(b.is_legal(&first), "{variant}: gap fill must be legal");
            b.play_move(&first);

            // The follow-up shares the endpoint x0+4 with the played line.
            let follow = Move {
                start: Point::new(x0 + 4, y),
                dir: Dir::E,
                pos: 4,
            };
            let legal_now = b.is_legal(&follow);
            let cached = b.candidates().contains(&follow);
            assert_eq!(legal_now, cached, "{variant}: cache agrees with rules");
            match variant {
                // 5T: the two lines share only the endpoint — allowed.
                Variant::Touching => assert!(legal_now, "5T allows touching lines"),
                // 5D: sharing any point is banned.
                Variant::Disjoint => assert!(!legal_now, "5D forbids point sharing"),
            }
        }
    }

    #[test]
    fn incremental_candidates_match_full_recompute_along_random_games() {
        use nmcs_core::Rng;
        for variant in [Variant::Disjoint, Variant::Touching] {
            let mut b = cross_board(variant, 4);
            let mut rng = Rng::seeded(42);
            let mut steps = 0;
            while !b.candidates().is_empty() && steps < 200 {
                let mut cached: Vec<Move> = b.candidates().to_vec();
                let mut full = b.recompute_candidates();
                cached.sort_by_key(|m| (m.start.y, m.start.x, m.dir.index(), m.pos));
                full.sort_by_key(|m| (m.start.y, m.start.x, m.dir.index(), m.pos));
                assert_eq!(cached, full, "{variant} step {steps}");
                let mv = cached[rng.below(cached.len())];
                b.play_move(&mv);
                steps += 1;
            }
            assert!(steps > 10, "{variant}: game should last more than 10 moves");
        }
    }

    #[test]
    fn apply_undo_round_trips_along_random_games() {
        use nmcs_core::Rng;
        for variant in [Variant::Disjoint, Variant::Touching] {
            let mut b = cross_board(variant, 4);
            let mut rng = Rng::seeded(7);
            let mut steps = 0;
            while !b.candidates().is_empty() && steps < 40 {
                // Round-trip a few moves at this position.
                for probe in 0..b.candidates().len().min(3) {
                    let mv = b.candidates()[probe];
                    let cells_before = b.cells.clone();
                    let cands_before = b.candidates.clone();
                    let hist_before = b.history.clone();
                    let token = b.apply(&mv);
                    assert_eq!(b.move_count(), hist_before.len() + 1);
                    b.undo(token);
                    assert_eq!(&b.cells[..], &cells_before[..], "{variant} step {steps}");
                    assert_eq!(
                        b.candidates, cands_before,
                        "{variant} step {steps}: cache order must be restored"
                    );
                    assert_eq!(b.history, hist_before);
                }
                let mv = b.candidates()[rng.below(b.candidates().len())];
                b.play_move(&mv);
                steps += 1;
            }
            assert!(steps > 10, "{variant}: game should progress");
        }
    }

    /// From-scratch recompute of the incremental Zobrist key: fold every
    /// set occupancy and constraint bit through the same key functions.
    fn rehash(b: &Board) -> u64 {
        let mut h = 0u64;
        for idx in 0..NCELLS {
            let bits = b.cells[idx];
            if bits & OCC != 0 {
                h ^= occ_key(idx);
            }
            for d in crate::geom::DIRS {
                if bits & used_bit(d) != 0 {
                    h ^= line_key(idx, used_bit(d));
                }
                if bits & seg_bit(d) != 0 {
                    h ^= line_key(idx, seg_bit(d));
                }
            }
        }
        h
    }

    #[test]
    fn state_hash_is_maintained_incrementally_along_random_games() {
        use nmcs_core::Rng;
        for variant in [Variant::Disjoint, Variant::Touching] {
            let mut b = cross_board(variant, 4);
            assert_eq!(b.state_hash(), rehash(&b), "{variant}: initial cross");
            let mut rng = Rng::seeded(11);
            let mut steps = 0;
            while !b.candidates().is_empty() && steps < 40 {
                // Every legal move round-trips the hash through apply/undo.
                let before = b.state_hash();
                let mv = b.candidates()[0];
                let token = b.apply(&mv);
                assert_eq!(b.state_hash(), rehash(&b), "{variant} step {steps}");
                b.undo(token);
                assert_eq!(b.state_hash(), before, "{variant} step {steps}: undo");

                let mv = b.candidates()[rng.below(b.candidates().len())];
                b.play_move(&mv);
                assert_eq!(
                    b.state_hash(),
                    rehash(&b),
                    "{variant} step {steps}: play path"
                );
                steps += 1;
            }
            assert!(steps > 10, "{variant}: game should progress");
        }
    }

    #[test]
    fn full_game_apply_chain_unwinds_to_the_cross() {
        use nmcs_core::Rng;
        let reference = cross_board(Variant::Disjoint, 4);
        let mut b = reference.clone();
        let mut rng = Rng::seeded(13);
        let mut tokens = Vec::new();
        while !b.candidates().is_empty() {
            let mv = b.candidates()[rng.below(b.candidates().len())];
            tokens.push(b.apply(&mv));
        }
        assert!(b.move_count() > 15, "5D random games exceed 15 moves");
        while let Some(t) = tokens.pop() {
            b.undo(t);
        }
        assert_eq!(&b.cells[..], &reference.cells[..]);
        assert_eq!(b.candidates, reference.candidates);
        assert!(b.history.is_empty());
        assert!(b.undo_removed.is_empty());
        assert!(b.undo_frames.is_empty());
    }

    #[test]
    fn undo_path_search_matches_snapshot_path() {
        use nmcs_core::{nested, NestedConfig, Rng, SnapshotOnly};
        let b = cross_board(Variant::Disjoint, 3);
        for seed in 0..3 {
            let fast = nested(&b, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
            let slow = nested(
                &SnapshotOnly(b.clone()),
                1,
                &NestedConfig::paper(),
                &mut Rng::seeded(seed),
            );
            assert_eq!(fast.score, slow.score, "seed {seed}");
            assert_eq!(fast.sequence, slow.sequence, "seed {seed}");
            assert_eq!(fast.stats, slow.stats, "seed {seed}");
        }
    }

    #[test]
    fn standard_cross_has_28_first_moves() {
        // 12 horizontal + 12 vertical extensions of the eight 4-runs, plus
        // 4 diagonal inner-corner completions; verified against the full
        // recompute and stable across variants (no lines played yet).
        let b5d = cross_board(Variant::Disjoint, 4);
        let b5t = cross_board(Variant::Touching, 4);
        assert_eq!(b5d.candidates().len(), b5t.candidates().len());
        assert_eq!(b5d.candidates().len(), b5d.recompute_candidates().len());
        let n = b5d.candidates().len();
        assert_eq!(n, 28, "standard cross admits 28 first moves, got {n}");
    }

    #[test]
    fn score_equals_moves_played() {
        use nmcs_core::Rng;
        let mut b = cross_board(Variant::Disjoint, 4);
        let mut rng = Rng::seeded(3);
        for i in 0..10 {
            assert_eq!(b.score(), i as Score);
            let mv = b.candidates()[rng.below(b.candidates().len())];
            b.play_move(&mv);
        }
        assert_eq!(b.score(), 10);
        assert_eq!(b.moves_played(), 10);
    }

    #[test]
    #[should_panic(expected = "illegal move")]
    fn illegal_move_panics() {
        let mut b = row_board(Variant::Disjoint, 4);
        let bogus = Move {
            start: Point::new(0, 0),
            dir: Dir::E,
            pos: 0,
        };
        b.play_move(&bogus);
    }

    #[test]
    #[should_panic(expected = "duplicate initial point")]
    fn duplicate_initial_points_rejected() {
        let p = Point::new(30, 30);
        let _ = Board::from_points(Variant::Disjoint, vec![p, p]);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = row_board(Variant::Disjoint, 4);
        let b = a.clone();
        let mv = a.candidates()[0];
        a.play_move(&mv);
        assert_eq!(a.move_count(), 1);
        assert_eq!(b.move_count(), 0);
        assert_eq!(b.candidates().len(), 2);
    }

    #[test]
    fn extent_tracks_played_points() {
        let mut b = row_board(Variant::Disjoint, 4);
        let (min0, max0) = b.extent();
        assert_eq!(max0.x - min0.x, 3);
        // Extend to the right if possible, else left.
        let mv = *b
            .candidates()
            .iter()
            .find(|m| m.new_point().x > max0.x)
            .unwrap_or(&b.candidates()[0]);
        b.play_move(&mv);
        let (min1, max1) = b.extent();
        assert!(max1.x - min1.x >= 4);
    }

    #[test]
    fn move_accessors() {
        let m = Move {
            start: Point::new(10, 10),
            dir: Dir::SE,
            pos: 2,
        };
        assert_eq!(m.new_point(), Point::new(12, 12));
        let pts = m.line_points();
        assert_eq!(pts[0], Point::new(10, 10));
        assert_eq!(pts[4], Point::new(14, 14));
    }
}
