//! Persistent, verifiable game records.
//!
//! The paper's headline side-result is two 80-move 5D sequences — a world
//! record at the time. A record is only worth its verification: this
//! module stores sequences in a grid-independent form (coordinates
//! relative to the cross's bounding-box corner), replays them under the
//! full rules, and rejects anything illegal. Known score milestones are
//! kept as documented constants for the benchmark reports.

use crate::board::{Board, Move, Variant};
use crate::cross::{cross_board, STANDARD_ARM};
use crate::geom::{Dir, Point};
use serde::{Deserialize, Serialize};

/// Best *human* score at 5D known at paper time (paper §II).
pub const HUMAN_RECORD_5D: usize = 68;
/// Previous best computer score at 5D, by simulated annealing
/// (Hyyrö & Poranen 2007; paper §II).
pub const SA_RECORD_5D: usize = 79;
/// The paper's record: parallel NMCS at level 4 found two 80-move 5D
/// sequences (paper §V–VI).
pub const PAPER_RECORD_5D: usize = 80;
/// Proven upper bound on any 5D game from the standard cross
/// (Demaine et al. 2006, paper reference \[11\]).
pub const UPPER_BOUND_5D: usize = 121;

/// One move of a record, in cross-relative coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordMove {
    /// Line start relative to the cross bounding-box corner.
    pub x: i16,
    pub y: i16,
    /// Direction index (see [`Dir::index`]).
    pub dir: u8,
    /// Index of the new point within the line, `0..5`.
    pub pos: u8,
}

/// A stored game: variant, cross size, and the move list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GameRecord {
    pub variant: Variant,
    /// Cross segment length (4 = official).
    pub arm: i16,
    pub moves: Vec<RecordMove>,
    /// Free-form provenance note (search level, seed, date…).
    #[serde(default)]
    pub note: String,
}

/// Why a record failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Move `index` is illegal on the position reached so far.
    IllegalMove { index: usize },
    /// A direction index outside `0..4`.
    BadDirection { index: usize },
    /// A `pos` outside `0..5`.
    BadPosition { index: usize },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::IllegalMove { index } => write!(f, "move #{index} is illegal"),
            RecordError::BadDirection { index } => write!(f, "move #{index} has a bad direction"),
            RecordError::BadPosition { index } => write!(f, "move #{index} has a bad position"),
        }
    }
}

impl std::error::Error for RecordError {}

impl GameRecord {
    /// Captures the game played on `board` as a portable record.
    pub fn from_board(board: &Board, note: impl Into<String>) -> Self {
        let origin = board.origin();
        let arm = infer_arm(board.initial_points().len());
        Self {
            variant: board.variant(),
            arm,
            moves: board
                .history()
                .iter()
                .map(|m| RecordMove {
                    x: m.start.x - origin.x,
                    y: m.start.y - origin.y,
                    dir: m.dir.index() as u8,
                    pos: m.pos,
                })
                .collect(),
            note: note.into(),
        }
    }

    /// The claimed score (number of moves).
    pub fn score(&self) -> usize {
        self.moves.len()
    }

    /// Replays the record under the full rules, returning the final board.
    pub fn replay(&self) -> Result<Board, RecordError> {
        let mut board = cross_board(self.variant, self.arm);
        let origin = board.origin();
        for (index, rm) in self.moves.iter().enumerate() {
            if rm.dir > 3 {
                return Err(RecordError::BadDirection { index });
            }
            if rm.pos > 4 {
                return Err(RecordError::BadPosition { index });
            }
            let mv = Move {
                start: Point::new(rm.x + origin.x, rm.y + origin.y),
                dir: Dir::from_index(rm.dir as usize),
                pos: rm.pos,
            };
            if !board.is_legal(&mv) {
                return Err(RecordError::IllegalMove { index });
            }
            board.play_move(&mv);
        }
        Ok(board)
    }

    /// Verifies the record and returns its score.
    pub fn verify(&self) -> Result<usize, RecordError> {
        self.replay().map(|b| b.move_count())
    }
}

fn infer_arm(points: usize) -> i16 {
    // Inverse of the cross size formula: 12(n-1) points for arm n.
    match points {
        36 => STANDARD_ARM,
        24 => 3,
        12 => 2,
        n => {
            debug_assert!(n % 12 == 0, "non-cross initial position in record");
            (n as i16) / 12 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::{sample, Rng};

    fn random_game(seed: u64) -> Board {
        let start = cross_board(Variant::Disjoint, 4);
        let mut rng = Rng::seeded(seed);
        let result = sample(&start, &mut rng);
        let mut b = start;
        for mv in &result.sequence {
            b.play_move(mv);
        }
        b
    }

    #[test]
    fn record_round_trips_through_replay() {
        let board = random_game(1);
        let rec = GameRecord::from_board(&board, "random seed 1");
        assert_eq!(rec.score(), board.move_count());
        let replayed = rec.replay().expect("legal record");
        assert_eq!(replayed.move_count(), board.move_count());
        assert_eq!(replayed.history(), board.history());
    }

    #[test]
    fn verify_accepts_real_games_across_seeds() {
        for seed in 0..10 {
            let board = random_game(seed);
            let rec = GameRecord::from_board(&board, "");
            assert_eq!(rec.verify().unwrap(), board.move_count(), "seed {seed}");
        }
    }

    #[test]
    fn tampered_record_is_rejected() {
        let board = random_game(2);
        let mut rec = GameRecord::from_board(&board, "");
        assert!(rec.moves.len() > 4, "random 5D games exceed 4 moves");
        // Duplicate an early move: replaying it must be illegal.
        let dup = rec.moves[0];
        rec.moves.insert(1, dup);
        match rec.verify() {
            Err(RecordError::IllegalMove { index: 1 }) => {}
            other => panic!("expected IllegalMove at 1, got {other:?}"),
        }
    }

    #[test]
    fn bad_direction_and_position_detected() {
        let board = random_game(3);
        let mut rec = GameRecord::from_board(&board, "");
        rec.moves[0].dir = 7;
        assert_eq!(rec.verify(), Err(RecordError::BadDirection { index: 0 }));
        let mut rec2 = GameRecord::from_board(&board, "");
        rec2.moves[0].pos = 5;
        assert_eq!(rec2.verify(), Err(RecordError::BadPosition { index: 0 }));
    }

    #[test]
    fn serde_json_round_trip() {
        let board = random_game(4);
        let rec = GameRecord::from_board(&board, "serde test");
        let json = serde_json::to_string(&rec).unwrap();
        let back: GameRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
        assert_eq!(back.verify().unwrap(), rec.score());
    }

    #[test]
    fn records_are_grid_size_independent() {
        // A record captured on one board replays on a fresh board even
        // though absolute grid coordinates are never stored.
        let board = random_game(5);
        let rec = GameRecord::from_board(&board, "");
        let replayed = rec.replay().unwrap();
        let (min_a, max_a) = board.extent();
        let (min_b, max_b) = replayed.extent();
        assert_eq!(max_a.x - min_a.x, max_b.x - min_b.x);
        assert_eq!(max_a.y - min_a.y, max_b.y - min_b.y);
    }

    #[test]
    fn milestone_constants_are_ordered() {
        let milestones = [
            HUMAN_RECORD_5D,
            SA_RECORD_5D,
            PAPER_RECORD_5D,
            UPPER_BOUND_5D,
        ];
        assert!(milestones.windows(2).all(|w| w[0] < w[1]), "{milestones:?}");
    }
}
