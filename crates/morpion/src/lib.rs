//! # morpion — Morpion Solitaire
//!
//! A complete implementation of Morpion Solitaire, the NP-hard pencil
//! puzzle used as the benchmark domain of *"Parallel Nested Monte-Carlo
//! Search"* (Cazenave & Jouandeau, 2009): both the **5T (touching)** and
//! **5D (disjoint)** rule variants, the official 36-point starting cross
//! (plus scaled variants for fast experiments), incremental move
//! generation tuned for Monte-Carlo playouts, verifiable game records,
//! and ASCII rendering of final grids (the paper's Figure 1 analogue).
//!
//! The board implements [`nmcs_core::Game`], so every search in the
//! workspace — sequential NMCS, the parallel cluster algorithms, and the
//! baselines — runs on it unchanged.
//!
//! ```
//! use morpion::{standard_5d, render_default};
//! use nmcs_core::{nested, NestedConfig, Rng, Game};
//!
//! let board = standard_5d();
//! let mut rng = Rng::seeded(2009);
//! let result = nested(&board, 1, &NestedConfig::paper(), &mut rng);
//! assert!(result.score > 20, "level-1 NMCS clears 20 moves easily");
//!
//! let mut replay = board.clone();
//! for mv in &result.sequence { replay.play(mv); }
//! println!("{}", render_default(&replay));
//! ```

pub mod analysis;
pub mod board;
pub mod cross;
pub mod geom;
pub mod record;
pub mod render;

pub use analysis::{canonical_hash, position_hash, GameStats, Symmetry, SYMMETRIES};
pub use board::{Board, Move, Variant, GRID};
pub use cross::{cross_board, cross_points, standard_5d, standard_5t, STANDARD_ARM};
pub use geom::{Dir, Point, DIRS};
pub use record::{GameRecord, RecordError, RecordMove};
pub use render::{render, render_default, RenderOptions};
