//! Grid geometry: points and the four line directions.

use serde::{Deserialize, Serialize};

/// A lattice point in board coordinates.
///
/// The board is a bounded window of the (conceptually infinite) grid;
/// coordinates are small non-negative integers inside that window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    pub x: i16,
    pub y: i16,
}

impl Point {
    #[inline]
    pub const fn new(x: i16, y: i16) -> Self {
        Self { x, y }
    }

    /// The point `self + k * dir`.
    #[inline]
    pub fn step(self, dir: Dir, k: i16) -> Self {
        let (dx, dy) = dir.delta();
        Self {
            x: self.x + dx * k,
            y: self.y + dy * k,
        }
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// One of the four line directions of Morpion Solitaire.
///
/// Lines are undirected; each is represented by its canonical direction
/// with positive `x` component (or straight down for vertical lines):
/// east, south, south-east, and north-east.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dir {
    /// Horizontal, `(+1, 0)`.
    E = 0,
    /// Vertical, `(0, +1)`.
    S = 1,
    /// Falling diagonal, `(+1, +1)`.
    SE = 2,
    /// Rising diagonal, `(+1, -1)`.
    NE = 3,
}

/// All four directions, in index order.
pub const DIRS: [Dir; 4] = [Dir::E, Dir::S, Dir::SE, Dir::NE];

impl Dir {
    /// Unit step of the direction.
    #[inline]
    pub const fn delta(self) -> (i16, i16) {
        match self {
            Dir::E => (1, 0),
            Dir::S => (0, 1),
            Dir::SE => (1, 1),
            Dir::NE => (1, -1),
        }
    }

    /// Stable index in `0..4`, used for per-direction bookkeeping bits.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Dir::index`].
    #[inline]
    pub fn from_index(i: usize) -> Dir {
        DIRS[i]
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dir::E => "E",
            Dir::S => "S",
            Dir::SE => "SE",
            Dir::NE => "NE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_unit_steps_with_canonical_orientation() {
        for d in DIRS {
            let (dx, dy) = d.delta();
            assert!(dx.abs() <= 1 && dy.abs() <= 1);
            assert!((dx, dy) != (0, 0));
            // Canonical: positive x, or straight down.
            assert!(dx > 0 || (dx == 0 && dy > 0));
        }
    }

    #[test]
    fn index_round_trips() {
        for d in DIRS {
            assert_eq!(Dir::from_index(d.index()), d);
        }
    }

    #[test]
    fn step_walks_along_the_direction() {
        let p = Point::new(10, 10);
        assert_eq!(p.step(Dir::E, 4), Point::new(14, 10));
        assert_eq!(p.step(Dir::S, 2), Point::new(10, 12));
        assert_eq!(p.step(Dir::SE, 3), Point::new(13, 13));
        assert_eq!(p.step(Dir::NE, 3), Point::new(13, 7));
        assert_eq!(p.step(Dir::NE, -1), Point::new(9, 11));
    }

    #[test]
    fn directions_are_pairwise_distinct() {
        for (i, a) in DIRS.iter().enumerate() {
            for b in &DIRS[i + 1..] {
                assert_ne!(a.delta(), b.delta());
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(3, -2).to_string(), "(3,-2)");
        assert_eq!(Dir::NE.to_string(), "NE");
    }
}
