//! Position analysis: Zobrist hashing, D4 symmetry canonicalisation, and
//! game statistics.
//!
//! Record hunting produces thousands of candidate games; many are
//! reflections or rotations of one another (the cross has the full
//! symmetry of the square). [`canonical_hash`] collapses each symmetry
//! class to one identifier so duplicate discoveries are recognised — the
//! paper's own "two new sequences of 80 moves" claim implicitly needs
//! such an equivalence check. [`GameStats`] summarises a finished game
//! for the analysis tables.

use crate::board::{Board, Move};
use crate::geom::{Dir, Point};
use nmcs_core::rng::mix64;
use serde::{Deserialize, Serialize};

/// The eight symmetries of the square (D4), acting on cross-relative
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    Identity,
    Rot90,
    Rot180,
    Rot270,
    FlipX,
    FlipY,
    FlipMain,
    FlipAnti,
}

/// All eight symmetries.
pub const SYMMETRIES: [Symmetry; 8] = [
    Symmetry::Identity,
    Symmetry::Rot90,
    Symmetry::Rot180,
    Symmetry::Rot270,
    Symmetry::FlipX,
    Symmetry::FlipY,
    Symmetry::FlipMain,
    Symmetry::FlipAnti,
];

impl Symmetry {
    /// Applies the symmetry to a point in coordinates relative to the
    /// pattern centre (so the fixed point of every symmetry is `(0, 0)`).
    #[inline]
    pub fn apply(self, p: (i32, i32)) -> (i32, i32) {
        let (x, y) = p;
        match self {
            Symmetry::Identity => (x, y),
            Symmetry::Rot90 => (-y, x),
            Symmetry::Rot180 => (-x, -y),
            Symmetry::Rot270 => (y, -x),
            Symmetry::FlipX => (-x, y),
            Symmetry::FlipY => (x, -y),
            Symmetry::FlipMain => (y, x),
            Symmetry::FlipAnti => (-y, -x),
        }
    }
}

/// Position-independent Zobrist key of one occupied point in doubled
/// centre-relative coordinates.
#[inline]
fn point_key(p: (i32, i32)) -> u64 {
    mix64((p.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((p.1 as u64) << 32))
}

/// Zobrist-style hash of the set of occupied points (order-independent:
/// XOR of per-point keys), in the board's own orientation.
pub fn position_hash(board: &Board) -> u64 {
    let (c2x, c2y) = doubled_centre(board);
    let mut h = 0u64;
    for p in occupied_points(board) {
        h ^= point_key((2 * p.x as i32 - c2x, 2 * p.y as i32 - c2y));
    }
    h
}

/// The canonical hash: minimum of [`position_hash`] over all eight
/// symmetries. Two games are *equivalent* iff their canonical hashes
/// match (up to Zobrist collision, ~2⁻⁶⁴ per pair).
pub fn canonical_hash(board: &Board) -> u64 {
    let (c2x, c2y) = doubled_centre(board);
    let pts: Vec<(i32, i32)> = occupied_points(board)
        .map(|p| (2 * p.x as i32 - c2x, 2 * p.y as i32 - c2y))
        .collect();
    SYMMETRIES
        .iter()
        .map(|&s| {
            let mut h = 0u64;
            for &p in &pts {
                h ^= point_key(s.apply(p));
            }
            h
        })
        .min()
        .expect("eight symmetries")
}

/// Doubled coordinates of the *initial pattern's* centre (doubling keeps
/// half-integer centres exact). Symmetries are taken about the cross
/// centre, matching how Morpion grids are compared in practice.
fn doubled_centre(board: &Board) -> (i32, i32) {
    let initial = board.initial_points();
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (i16::MAX, i16::MAX, i16::MIN, i16::MIN);
    for p in initial {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    ((min_x + max_x) as i32, (min_y + max_y) as i32)
}

fn occupied_points(board: &Board) -> impl Iterator<Item = Point> + '_ {
    (0..crate::board::GRID).flat_map(move |y| {
        (0..crate::board::GRID).filter_map(move |x| {
            let p = Point::new(x, y);
            board.occupied(p).then_some(p)
        })
    })
}

/// Summary statistics of a finished (or partial) game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameStats {
    pub moves: usize,
    /// Lines played per direction (E, S, SE, NE).
    pub per_direction: [usize; 4],
    /// Bounding box (width, height) of the occupied area.
    pub extent: (i16, i16),
    /// Moves whose new point extended the bounding box.
    pub expanding_moves: usize,
}

impl GameStats {
    /// Computes statistics by replaying the board's history.
    pub fn of(board: &Board) -> Self {
        let mut per_direction = [0usize; 4];
        for mv in board.history() {
            per_direction[mv.dir.index()] += 1;
        }
        let (min, max) = board.extent();

        // Count bounding-box expansions by replaying extents.
        let mut replay =
            crate::board::Board::from_points(board.variant(), board.initial_points().to_vec());
        let (mut rmin, mut rmax) = replay.extent();
        let mut expanding_moves = 0;
        for mv in board.history() {
            let q = mv.new_point();
            if q.x < rmin.x || q.x > rmax.x || q.y < rmin.y || q.y > rmax.y {
                expanding_moves += 1;
                rmin.x = rmin.x.min(q.x);
                rmin.y = rmin.y.min(q.y);
                rmax.x = rmax.x.max(q.x);
                rmax.y = rmax.y.max(q.y);
            }
            replay.play_move(mv);
        }

        Self {
            moves: board.move_count(),
            per_direction,
            extent: (max.x - min.x + 1, max.y - min.y + 1),
            expanding_moves,
        }
    }
}

/// Applies a symmetry to a whole move (start point, direction, slot),
/// returning the move on the transformed board. Directions map through
/// the symmetry; a reversed direction re-anchors the line start at the
/// other end.
pub fn transform_move(mv: &Move, sym: Symmetry, c2: (i32, i32)) -> Move {
    // Transform the 5 line points and re-derive the canonical move.
    let pts: Vec<(i32, i32)> = mv
        .line_points()
        .iter()
        .map(|p| sym.apply((2 * p.x as i32 - c2.0, 2 * p.y as i32 - c2.1)))
        .collect();
    let newp = sym.apply((
        2 * mv.new_point().x as i32 - c2.0,
        2 * mv.new_point().y as i32 - c2.1,
    ));
    // Identify the transformed direction from the first two points and
    // canonicalise (positive x, or straight down).
    let (dx, dy) = ((pts[1].0 - pts[0].0) / 2, (pts[1].1 - pts[0].1) / 2);
    let (dir, reversed) = match (dx, dy) {
        (1, 0) => (Dir::E, false),
        (-1, 0) => (Dir::E, true),
        (0, 1) => (Dir::S, false),
        (0, -1) => (Dir::S, true),
        (1, 1) => (Dir::SE, false),
        (-1, -1) => (Dir::SE, true),
        (1, -1) => (Dir::NE, false),
        (-1, 1) => (Dir::NE, true),
        other => unreachable!("non-unit direction {other:?}"),
    };
    let start2 = if reversed { pts[4] } else { pts[0] };
    let back = |(x, y): (i32, i32)| Point::new(((x + c2.0) / 2) as i16, ((y + c2.1) / 2) as i16);
    let start = back(start2);
    let new_point = back(newp);
    // Slot of the new point along the (possibly re-anchored) line.
    let (ddx, ddy) = dir.delta();
    let pos = if ddx != 0 {
        (new_point.x - start.x) / ddx
    } else {
        (new_point.y - start.y) / ddy
    };
    Move {
        start,
        dir,
        pos: pos as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross::cross_board;
    use crate::Variant;
    use nmcs_core::Rng;

    fn random_board(seed: u64, moves: usize) -> Board {
        let mut b = cross_board(Variant::Disjoint, 4);
        let mut rng = Rng::seeded(seed);
        for _ in 0..moves {
            if b.candidates().is_empty() {
                break;
            }
            let mv = b.candidates()[rng.below(b.candidates().len())];
            b.play_move(&mv);
        }
        b
    }

    #[test]
    fn symmetries_form_a_group_of_order_8() {
        // Each symmetry is a bijection on a sample orbit; identity fixed.
        let sample = (3, -5);
        let images: std::collections::HashSet<(i32, i32)> =
            SYMMETRIES.iter().map(|s| s.apply(sample)).collect();
        assert_eq!(images.len(), 8, "a generic point has a full orbit");
        assert_eq!(Symmetry::Identity.apply(sample), sample);
        // Rot90 applied four times is the identity.
        let mut p = sample;
        for _ in 0..4 {
            p = Symmetry::Rot90.apply(p);
        }
        assert_eq!(p, sample);
    }

    #[test]
    fn initial_cross_is_fully_symmetric() {
        let b = cross_board(Variant::Disjoint, 4);
        let base = position_hash(&b);
        assert_eq!(canonical_hash(&b), canonical_hash(&b), "deterministic");
        // The cross itself is D4-symmetric: every symmetry hash equals the
        // base hash, so canonical == plain.
        assert_eq!(canonical_hash(&b), base);
    }

    #[test]
    fn position_hash_changes_with_every_move() {
        let mut b = cross_board(Variant::Disjoint, 4);
        let mut seen = std::collections::HashSet::new();
        seen.insert(position_hash(&b));
        let mut rng = Rng::seeded(4);
        for _ in 0..20 {
            let mv = b.candidates()[rng.below(b.candidates().len())];
            b.play_move(&mv);
            assert!(
                seen.insert(position_hash(&b)),
                "hash collision along a game"
            );
        }
    }

    #[test]
    fn mirrored_games_share_their_canonical_hash() {
        // Play a game, then play its x-mirror; canonical hashes match
        // although plain hashes differ.
        let b = random_board(7, 25);
        let c2 = doubled_centre(&b);

        let mut mirrored = cross_board(Variant::Disjoint, 4);
        for mv in b.history() {
            let tm = transform_move(mv, Symmetry::FlipX, c2);
            assert!(mirrored.is_legal(&tm), "mirror of a legal move is legal");
            mirrored.play_move(&tm);
        }
        assert_ne!(
            position_hash(&b),
            position_hash(&mirrored),
            "generic game is asymmetric"
        );
        assert_eq!(canonical_hash(&b), canonical_hash(&mirrored));
    }

    #[test]
    fn all_eight_transforms_preserve_legality() {
        let b = random_board(13, 20);
        let c2 = doubled_centre(&b);
        for &sym in &SYMMETRIES {
            let mut tb = cross_board(Variant::Disjoint, 4);
            for mv in b.history() {
                let tm = transform_move(mv, sym, c2);
                assert!(tb.is_legal(&tm), "{sym:?}: transformed move illegal");
                tb.play_move(&tm);
            }
            assert_eq!(tb.move_count(), b.move_count());
            assert_eq!(canonical_hash(&tb), canonical_hash(&b), "{sym:?}");
        }
    }

    #[test]
    fn stats_count_directions_and_extent() {
        let b = random_board(3, 30);
        let stats = GameStats::of(&b);
        assert_eq!(stats.moves, b.move_count());
        assert_eq!(stats.per_direction.iter().sum::<usize>(), b.move_count());
        assert!(
            stats.extent.0 >= 10 && stats.extent.1 >= 10,
            "cross is 10 wide"
        );
        assert!(stats.expanding_moves <= stats.moves);
    }

    #[test]
    fn distinct_games_get_distinct_canonical_hashes() {
        let a = random_board(1, 30);
        let b = random_board(2, 30);
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
    }
}
