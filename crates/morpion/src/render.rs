//! ASCII rendering of Morpion boards — the Figure 1 analogue.
//!
//! The paper's Figure 1 shows a found world-record grid with the initial
//! circles and the numbered added points. [`render`] reproduces that view
//! in a terminal: initial points as `o`, played points as their move
//! number (1-based, modulo 100 with a width-2 cell), empty grid positions
//! as dots.

use crate::board::Board;
use crate::geom::Point;
use std::collections::HashMap;
use std::fmt::Write;

/// Options for [`render`].
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Show move numbers on played points (otherwise `*`).
    pub numbered: bool,
    /// Extra empty rows/columns around the occupied bounding box.
    pub margin: i16,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            numbered: true,
            margin: 1,
        }
    }
}

/// Renders the board as ASCII art cropped to the occupied area.
pub fn render(board: &Board, opts: &RenderOptions) -> String {
    let (min, max) = board.extent();
    let margin = opts.margin.max(0);
    let x0 = (min.x - margin).max(0);
    let y0 = (min.y - margin).max(0);
    let x1 = (max.x + margin).min(crate::board::GRID - 1);
    let y1 = (max.y + margin).min(crate::board::GRID - 1);

    let move_numbers: HashMap<Point, usize> = board
        .history()
        .iter()
        .enumerate()
        .map(|(i, m)| (m.new_point(), i + 1))
        .collect();

    let mut out = String::new();
    for y in y0..=y1 {
        for x in x0..=x1 {
            let p = Point::new(x, y);
            if x > x0 {
                out.push(' ');
            }
            if let Some(&n) = move_numbers.get(&p) {
                if opts.numbered {
                    let _ = write!(out, "{:>2}", n % 100);
                } else {
                    out.push_str(" *");
                }
            } else if board.occupied(p) {
                out.push_str(" o");
            } else {
                out.push_str(" .");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders with default options.
pub fn render_default(board: &Board) -> String {
    render(board, &RenderOptions::default())
}

impl std::fmt::Display for Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render_default(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Variant;
    use crate::cross::cross_board;
    use nmcs_core::Game;

    #[test]
    fn initial_cross_renders_36_circles() {
        let b = cross_board(Variant::Disjoint, 4);
        let art = render_default(&b);
        assert_eq!(art.matches('o').count(), 36);
        assert!(!art.contains('*'));
    }

    #[test]
    fn played_points_get_their_move_number() {
        let mut b = cross_board(Variant::Disjoint, 4);
        let mv = b.candidates()[0];
        b.play(&mv);
        let art = render_default(&b);
        assert!(art.contains(" 1"), "first move should render as 1:\n{art}");
        assert_eq!(art.matches('o').count(), 36);
    }

    #[test]
    fn unnumbered_mode_uses_stars() {
        let mut b = cross_board(Variant::Disjoint, 4);
        let mv = b.candidates()[0];
        b.play(&mv);
        let art = render(
            &b,
            &RenderOptions {
                numbered: false,
                margin: 0,
            },
        );
        assert_eq!(art.matches('*').count(), 1);
    }

    #[test]
    fn rows_are_consistent_width() {
        let b = cross_board(Variant::Disjoint, 3);
        let art = render_default(&b);
        let widths: Vec<usize> = art.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn display_matches_render_default() {
        let b = cross_board(Variant::Touching, 2);
        assert_eq!(b.to_string(), render_default(&b));
    }
}
