//! One-off measurement for ablation A3: shared-memory pool scaling on a
//! realistically-sized workload (level-2 first move on the standard
//! cross — 28 moves × ~6 ms level-1 evaluations each).
//!
//! ```text
//! cargo run --release -p morpion --example pool_scaling
//! ```

use morpion::standard_5d;
use parallel_nmcs::{par_nested, PoolConfig, RunMode};

fn main() {
    let board = standard_5d();
    let mut baseline = None;
    for threads in [1usize, 2, 4] {
        let mut cfg = PoolConfig::new(2, threads);
        cfg.mode = RunMode::FirstMove;
        cfg.seed = 2009;
        // Median of 3 runs.
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let (out, wall) = par_nested(&board, &cfg);
                assert!(out.score > 40);
                wall.as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let t = times[1];
        let speedup = baseline.get_or_insert(t);
        println!(
            "{threads} thread(s): {:.1} ms  (speedup {:.2}x)",
            t * 1e3,
            *speedup / t
        );
    }
}
