//! Quick calibration: playout and NMCS costs on the standard 5D cross.
// Calibrates through the deprecated shims (zero-cost; comparable
// with historical numbers).
#![allow(deprecated)]
use morpion::standard_5d;
use nmcs_core::{nested, sample, NestedConfig, Rng};
use std::time::Instant;

fn main() {
    let board = standard_5d();
    let mut rng = Rng::seeded(1);

    let t = Instant::now();
    let n = 20_000;
    let mut total = 0i64;
    let mut best = 0i64;
    for _ in 0..n {
        let s = sample(&board, &mut rng).score;
        total += s;
        best = best.max(s);
    }
    let dt = t.elapsed();
    println!(
        "playouts: {n} in {:?} ({:.1} us each), mean score {:.2}, best {best}",
        dt,
        dt.as_micros() as f64 / n as f64,
        total as f64 / n as f64
    );

    for level in 1..=2 {
        let t = Instant::now();
        let r = nested(&board, level, &NestedConfig::paper(), &mut rng);
        let dt = t.elapsed();
        println!(
            "nested level {level}: score {} in {:?} ({} playouts, {} work units)",
            r.score, dt, r.stats.playouts, r.stats.work_units
        );
    }
}
