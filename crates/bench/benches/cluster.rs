//! Cluster-level benchmarks: discrete-event replay throughput for the
//! paper's table configurations, dispatcher state-machine costs, the
//! threaded backend, and the shared-memory pool ablation (A3).

// Benchmarks the legacy message-passing backend on purpose.
#![allow(deprecated)]
use criterion::{criterion_group, criterion_main, Criterion};
use des_sim::ClusterSpec;
use morpion::{cross_board, Variant};
use nmcs_games::SumGame;
use parallel_nmcs::{
    par_nested, run_threads, simulate_trace, trace::run_reference, DispatchPolicy, DispatcherCore,
    PoolConfig, RunMode, ThreadConfig, TraceModel,
};
use std::hint::black_box;

fn bench_sim_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_replay");
    group.sample_size(10);
    // A level-3-like first-move workload (the Table II/IV row generator).
    let trace = TraceModel::level3_like().synthesize(RunMode::FirstMove, 2009);
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let c64 = ClusterSpec::paper_64();
        group.bench_function(format!("64_clients_{policy}"), |b| {
            b.iter(|| black_box(simulate_trace(&trace, &c64, policy).makespan))
        });
    }
    let hetero = ClusterSpec::hetero_16x4_16x2();
    group.bench_function("hetero_96_clients_LM", |b| {
        b.iter(|| black_box(simulate_trace(&trace, &hetero, DispatchPolicy::LastMinute).makespan))
    });
    group.finish();
}

fn bench_dispatcher_core(c: &mut Criterion) {
    c.bench_function("dispatcher_lm_request_free_cycle", |b| {
        let clients: Vec<usize> = (0..64).collect();
        let mut core = DispatcherCore::new(DispatchPolicy::LastMinute, clients);
        let mut i = 0usize;
        b.iter(|| {
            // Saturate then drain a little, exercising both paths.
            let granted = core.on_request(1000 + (i % 40), i % 70);
            if granted.is_none() {
                black_box(core.on_client_free(i % 64));
            }
            i += 1;
        })
    });
}

fn bench_thread_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("threads");
    group.sample_size(10);
    // Small real workload: level-2 first move on a reduced cross.
    let board = cross_board(Variant::Disjoint, 2);
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        group.bench_function(format!("morpion_arm2_level2_first_move_{policy}"), |b| {
            b.iter(|| {
                let mut cfg = ThreadConfig::new(2, policy, 2);
                cfg.n_medians = 8;
                cfg.mode = RunMode::FirstMove;
                cfg.seed = 5;
                black_box(run_threads(&board, &cfg).0.score)
            })
        });
    }
    group.finish();
}

fn bench_pool_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_nested_a3");
    group.sample_size(10);
    let board = cross_board(Variant::Disjoint, 2);
    for threads in [1usize, 2] {
        group.bench_function(format!("morpion_arm2_level2_{threads}_threads"), |b| {
            b.iter(|| {
                let mut cfg = PoolConfig::new(2, threads);
                cfg.mode = RunMode::FirstMove;
                black_box(par_nested(&board, &cfg).0.score)
            })
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    let g = SumGame::random(6, 4, 1);
    group.bench_function("reference_level2_sum_game", |b| {
        b.iter(|| {
            black_box(
                run_reference(&g, 2, 7, RunMode::FullGame, None)
                    .1
                    .client_jobs,
            )
        })
    });
    group.bench_function("synthetic_level3_first_move", |b| {
        b.iter(|| {
            black_box(
                TraceModel::level3_like()
                    .synthesize(RunMode::FirstMove, 3)
                    .client_jobs,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_replay,
    bench_dispatcher_core,
    bench_thread_backend,
    bench_pool_ablation,
    bench_trace_generation
);
criterion_main!(benches);
