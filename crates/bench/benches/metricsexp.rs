//! Microbenchmarks of the observability layer (`nmcs_core::metrics`):
//! the hot-path primitives (counter bump, histogram record, tagged
//! record), snapshotting cost, and the end-to-end overhead of an
//! instrumented vs registry-disabled sequential UCT search — the
//! numbers behind the "reads via atomics only, allocation-free on the
//! hot path" contract.

use criterion::{criterion_group, criterion_main, Criterion};
use nmcs_core::metrics::{
    set_metrics_enabled, Counter, DeadLetter, DeadLetterQueue, Histogram, TagHistograms,
};
use nmcs_core::{SearchSpec, Searcher};
use nmcs_games::SameGame;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_primitives");
    let counter = Counter::new();
    group.bench_function("counter_incr", |b| b.iter(|| counter.incr()));
    let hist = Histogram::new();
    let mut ns = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(ns >> 20));
        })
    });
    let tags = TagHistograms::new();
    group.bench_function("tagged_record_claimed_slot", |b| {
        b.iter(|| tags.record(black_box(42), "bench", black_box(1_000)))
    });
    let dlq = DeadLetterQueue::new(64);
    group.bench_function("dlq_push_at_capacity", |b| {
        b.iter(|| {
            dlq.push(DeadLetter {
                job: 1,
                reason: "deadline".to_string(),
                ..Default::default()
            })
        })
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // Populate the global registries so the snapshot walks real data.
    let game = SameGame::random(5, 5, 3, 7);
    SearchSpec::uct().seed(7).run(&game);
    c.bench_function("metrics_snapshot", |b| {
        b.iter(|| black_box(nmcs_core::metrics::snapshot()))
    });
    let snap = nmcs_core::metrics::snapshot();
    c.bench_function("metrics_render_text", |b| {
        b.iter(|| black_box(snap.render_text()))
    });
}

fn bench_instrumented_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrumented_uct");
    group.sample_size(10);
    let game = SameGame::random(6, 6, 3, 11);
    let spec = SearchSpec::uct().seed(11).build();
    group.bench_function("metrics_on", |b| {
        set_metrics_enabled(true);
        b.iter(|| black_box(spec.search(&game, None).score))
    });
    group.bench_function("metrics_off", |b| {
        set_metrics_enabled(false);
        b.iter(|| black_box(spec.search(&game, None).score));
        set_metrics_enabled(true);
    });
    group.finish();
    set_metrics_enabled(true);
}

criterion_group!(
    benches,
    bench_primitives,
    bench_snapshot,
    bench_instrumented_search
);
criterion_main!(benches);
