//! Micro-benchmarks of the sequential substrate: Morpion move generation
//! and playouts, NMCS levels, and baseline comparisons. These quantify
//! the cost model feeding Table I and the calibration.
//!
//! The deprecated free functions are exercised deliberately: they are
//! zero-cost shims over the unified API, and benchmarking through them
//! keeps the numbers comparable with the seed's history.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use morpion::{cross_board, standard_5d, Variant};
use nmcs_core::baselines::flat_monte_carlo;
use nmcs_core::search::sample_into;
use nmcs_core::{
    nested, nrpa, sample, Game, NestedConfig, NrpaConfig, PlayoutScratch, Rng, Score, SearchCtx,
    SearchStats, SnapshotOnly,
};
use nmcs_games::{SameGame, Tap};
use std::hint::black_box;

fn bench_playout(c: &mut Criterion) {
    let board = standard_5d();
    let mut rng = Rng::seeded(1);
    c.bench_function("morpion_5d_playout", |b| {
        b.iter(|| black_box(sample(&board, &mut rng).score))
    });

    let board_t = morpion::standard_5t();
    let mut rng_t = Rng::seeded(1);
    c.bench_function("morpion_5t_playout", |b| {
        b.iter(|| black_box(sample(&board_t, &mut rng_t).score))
    });

    let sg = SameGame::random(15, 15, 5, 3);
    let mut rng_s = Rng::seeded(2);
    c.bench_function("samegame_playout", |b| {
        b.iter(|| black_box(sample(&sg, &mut rng_s).score))
    });
}

fn bench_movegen(c: &mut Criterion) {
    let board = standard_5d();
    c.bench_function("morpion_clone", |b| b.iter(|| black_box(board.clone())));

    c.bench_function("morpion_recompute_candidates", |b| {
        b.iter(|| black_box(board.recompute_candidates().len()))
    });

    // Incremental update: play one (fixed) move on a fresh clone.
    let mv = board.candidates()[0];
    c.bench_function("morpion_play_move_incremental", |b| {
        b.iter_batched(
            || board.clone(),
            |mut bd| {
                bd.play_move(&mv);
                black_box(bd.candidates().len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested");
    group.sample_size(10);

    // The small cross keeps level-1 full searches affordable per sample.
    let small = cross_board(Variant::Disjoint, 3);
    let cfg = NestedConfig::paper();
    let mut rng = Rng::seeded(7);
    group.bench_function("level1_small_cross", |b| {
        b.iter(|| black_box(nested(&small, 1, &cfg, &mut rng).score))
    });

    let standard = standard_5d();
    let mut rng2 = Rng::seeded(7);
    group.bench_function("level1_standard_cross", |b| {
        b.iter(|| black_box(nested(&standard, 1, &cfg, &mut rng2).score))
    });

    // Flat Monte-Carlo with the playout budget of a level-1 search
    // (quality comparison lives in the tables; here we time it).
    let mut rng3 = Rng::seeded(7);
    group.bench_function("flat_mc_700_playouts", |b| {
        b.iter(|| black_box(flat_monte_carlo(&standard, 700, &mut rng3).score))
    });
    group.finish();
}

/// SameGame with the seed's allocating move generation and no undo fast
/// path — reproduces the cost profile of the pre-scratch-protocol
/// implementation so the `playout_paths` group measures this PR's actual
/// before/after on the hot path.
#[derive(Clone)]
struct SeedPatternSameGame(SameGame);

impl Game for SeedPatternSameGame {
    type Move = Tap;
    fn legal_moves(&self, out: &mut Vec<Tap>) {
        out.extend(self.0.groups_reference().into_iter().map(|(t, _)| t));
    }
    fn play(&mut self, mv: &Tap) {
        self.0.play(mv);
    }
    fn score(&self) -> Score {
        self.0.score()
    }
    fn moves_played(&self) -> usize {
        self.0.moves_played()
    }
    // No fast path: searches clone per evaluation, like the seed did.
}

/// The clone-path evaluation pattern of the in-tree fallback: clone the
/// position, play the candidate, roll out. `seq` is reused across calls,
/// exactly as `nested_inner` reuses its scratch buffer — the comparison
/// against the undo path must not handicap this side with an allocation
/// the real fallback does not pay.
fn eval_clone_path<G: Game>(
    root: &G,
    mv: &G::Move,
    rng: &mut Rng,
    seq: &mut Vec<G::Move>,
) -> Score {
    let mut child = root.clone();
    child.play(mv);
    seq.clear();
    let mut stats = SearchStats::new();
    sample_into(&mut child, rng, None, seq, &mut stats)
}

/// The undo-path evaluation pattern of the scratch-state protocol:
/// apply, roll out in place with reused buffers, unwind.
fn eval_undo_path<G: Game>(
    pos: &mut G,
    mv: &G::Move,
    rng: &mut Rng,
    scratch: &mut PlayoutScratch<G>,
    seq: &mut Vec<G::Move>,
) -> Score {
    let token = pos.apply(mv);
    seq.clear();
    let mut ctx = SearchCtx::unbounded();
    let score = scratch.run_undo(pos, rng, None, seq, &mut ctx);
    pos.undo(token);
    score
}

/// The acceptance benchmark of the scratch-state refactor: playouts/sec
/// in the level-1 evaluation pattern, per path.
///
/// * `seed_pattern` (SameGame only) — clone-per-eval plus the seed's
///   allocating move generation: what every playout cost before this
///   refactor. The undo path beats it by the full playout-core margin
///   (≈6× measured on 15×15×5).
/// * `clone_path` — clone-per-eval over the *optimised* core
///   ([`SnapshotOnly`] pins the search to the fallback).
/// * `undo_path` — apply/undo over the optimised core. For Morpion the
///   clone and undo rows are deliberately close (its clone is a ~130 ns
///   flat memcpy by design — see the `morpion_clone` bench — so the
///   protocol's win there is allocation-freedom, not raw speed); for
///   SameGame the undo path's margin comes from the allocation-free
///   flood core both in-place paths share.
fn bench_playout_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("playout_paths");

    // --- SameGame, 15×15, 5 colours (the standard benchmark board) ---
    let sg = SameGame::random(15, 15, 5, 3);
    let mut moves = Vec::new();
    sg.legal_moves(&mut moves);
    let mv = moves[0];

    let seed_game = SeedPatternSameGame(sg.clone());
    let mut rng = Rng::seeded(9);
    let mut seq = Vec::new();
    group.bench_function("samegame_playout_seed_pattern", |b| {
        b.iter(|| black_box(eval_clone_path(&seed_game, &mv, &mut rng, &mut seq)))
    });

    let snap = SnapshotOnly(sg.clone());
    let mut rng = Rng::seeded(9);
    let mut seq = Vec::new();
    group.bench_function("samegame_playout_clone_path", |b| {
        b.iter(|| black_box(eval_clone_path(&snap, &mv, &mut rng, &mut seq)))
    });

    let mut pos = sg.clone();
    let mut scratch = PlayoutScratch::new();
    let mut seq = Vec::new();
    let mut rng = Rng::seeded(9);
    group.bench_function("samegame_playout_undo_path", |b| {
        b.iter(|| {
            black_box(eval_undo_path(
                &mut pos,
                &mv,
                &mut rng,
                &mut scratch,
                &mut seq,
            ))
        })
    });

    // --- Morpion 5D from the standard cross ---
    let board = standard_5d();
    let bmv = board.candidates()[0];

    let snap_board = SnapshotOnly(board.clone());
    let mut rng = Rng::seeded(9);
    let mut seq = Vec::new();
    group.bench_function("morpion_playout_clone_path", |b| {
        b.iter(|| black_box(eval_clone_path(&snap_board, &bmv, &mut rng, &mut seq)))
    });

    let mut pos = board;
    let mut scratch = PlayoutScratch::new();
    let mut seq = Vec::new();
    let mut rng = Rng::seeded(9);
    group.bench_function("morpion_playout_undo_path", |b| {
        b.iter(|| {
            black_box(eval_undo_path(
                &mut pos,
                &bmv,
                &mut rng,
                &mut scratch,
                &mut seq,
            ))
        })
    });
    group.finish();
}

/// Level-1 searches end to end: the seed pattern vs the scratch path.
fn bench_nested_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_paths");
    group.sample_size(10);
    let cfg = NestedConfig::paper();

    let sg = SameGame::random(10, 10, 4, 1);
    let seed_game = SeedPatternSameGame(sg.clone());
    let mut rng = Rng::seeded(7);
    group.bench_function("samegame_nested1_seed_pattern", |b| {
        b.iter(|| black_box(nested(&seed_game, 1, &cfg, &mut rng).score))
    });
    let mut rng = Rng::seeded(7);
    group.bench_function("samegame_nested1_undo_path", |b| {
        b.iter(|| black_box(nested(&sg, 1, &cfg, &mut rng).score))
    });

    let small = cross_board(Variant::Disjoint, 3);
    let mut rng = Rng::seeded(7);
    group.bench_function("morpion_nested1_clone_path", |b| {
        b.iter(|| black_box(nested(&SnapshotOnly(small.clone()), 1, &cfg, &mut rng).score))
    });
    let mut rng = Rng::seeded(7);
    group.bench_function("morpion_nested1_undo_path", |b| {
        b.iter(|| black_box(nested(&small, 1, &cfg, &mut rng).score))
    });
    group.finish();
}

fn bench_legal_moves_buffer(c: &mut Criterion) {
    // The workhorse-buffer pattern of the Game trait: enumerate legal
    // moves without allocating per step.
    let board = standard_5d();
    let mut buf = Vec::with_capacity(64);
    c.bench_function("morpion_legal_moves_into_buffer", |b| {
        b.iter(|| {
            buf.clear();
            board.legal_moves(&mut buf);
            black_box(buf.len())
        })
    });
}

fn bench_nrpa(c: &mut Criterion) {
    let mut group = c.benchmark_group("nrpa");
    group.sample_size(10);
    let small = cross_board(Variant::Disjoint, 3);
    let cfg = NrpaConfig {
        iterations: 20,
        alpha: 1.0,
    };
    let mut rng = Rng::seeded(3);
    group.bench_function("level2_n20_small_cross", |b| {
        b.iter(|| black_box(nrpa(&small, 2, &cfg, &mut rng).score))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_playout,
    bench_movegen,
    bench_nested,
    bench_playout_paths,
    bench_nested_paths,
    bench_legal_moves_buffer,
    bench_nrpa
);
criterion_main!(benches);
