//! Micro-benchmarks of the sequential substrate: Morpion move generation
//! and playouts, NMCS levels, and baseline comparisons. These quantify
//! the cost model feeding Table I and the calibration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use morpion::{cross_board, standard_5d, Variant};
use nmcs_core::baselines::flat_monte_carlo;
use nmcs_core::{nested, nrpa, sample, Game, NestedConfig, NrpaConfig, Rng};
use nmcs_games::SameGame;
use std::hint::black_box;

fn bench_playout(c: &mut Criterion) {
    let board = standard_5d();
    let mut rng = Rng::seeded(1);
    c.bench_function("morpion_5d_playout", |b| {
        b.iter(|| black_box(sample(&board, &mut rng).score))
    });

    let board_t = morpion::standard_5t();
    let mut rng_t = Rng::seeded(1);
    c.bench_function("morpion_5t_playout", |b| {
        b.iter(|| black_box(sample(&board_t, &mut rng_t).score))
    });

    let sg = SameGame::random(15, 15, 5, 3);
    let mut rng_s = Rng::seeded(2);
    c.bench_function("samegame_playout", |b| {
        b.iter(|| black_box(sample(&sg, &mut rng_s).score))
    });
}

fn bench_movegen(c: &mut Criterion) {
    let board = standard_5d();
    c.bench_function("morpion_clone", |b| b.iter(|| black_box(board.clone())));

    c.bench_function("morpion_recompute_candidates", |b| {
        b.iter(|| black_box(board.recompute_candidates().len()))
    });

    // Incremental update: play one (fixed) move on a fresh clone.
    let mv = board.candidates()[0];
    c.bench_function("morpion_play_move_incremental", |b| {
        b.iter_batched(
            || board.clone(),
            |mut bd| {
                bd.play_move(&mv);
                black_box(bd.candidates().len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested");
    group.sample_size(10);

    // The small cross keeps level-1 full searches affordable per sample.
    let small = cross_board(Variant::Disjoint, 3);
    let cfg = NestedConfig::paper();
    let mut rng = Rng::seeded(7);
    group.bench_function("level1_small_cross", |b| {
        b.iter(|| black_box(nested(&small, 1, &cfg, &mut rng).score))
    });

    let standard = standard_5d();
    let mut rng2 = Rng::seeded(7);
    group.bench_function("level1_standard_cross", |b| {
        b.iter(|| black_box(nested(&standard, 1, &cfg, &mut rng2).score))
    });

    // Flat Monte-Carlo with the playout budget of a level-1 search
    // (quality comparison lives in the tables; here we time it).
    let mut rng3 = Rng::seeded(7);
    group.bench_function("flat_mc_700_playouts", |b| {
        b.iter(|| black_box(flat_monte_carlo(&standard, 700, &mut rng3).score))
    });
    group.finish();
}

fn bench_legal_moves_buffer(c: &mut Criterion) {
    // The workhorse-buffer pattern of the Game trait: enumerate legal
    // moves without allocating per step.
    let board = standard_5d();
    let mut buf = Vec::with_capacity(64);
    c.bench_function("morpion_legal_moves_into_buffer", |b| {
        b.iter(|| {
            buf.clear();
            board.legal_moves(&mut buf);
            black_box(buf.len())
        })
    });
}

fn bench_nrpa(c: &mut Criterion) {
    let mut group = c.benchmark_group("nrpa");
    group.sample_size(10);
    let small = cross_board(Variant::Disjoint, 3);
    let cfg = NrpaConfig {
        iterations: 20,
        alpha: 1.0,
    };
    let mut rng = Rng::seeded(3);
    group.bench_function("level2_n20_small_cross", |b| {
        b.iter(|| black_box(nrpa(&small, 2, &cfg, &mut rng).score))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_playout,
    bench_movegen,
    bench_nested,
    bench_legal_moves_buffer,
    bench_nrpa
);
criterion_main!(benches);
