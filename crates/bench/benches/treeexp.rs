//! Criterion coverage of the tree-parallel configuration grid: one
//! benchmark per (lock strategy × stats mode) point plus the batched
//! variant, at a small fixed playout budget on the cheap-rollout
//! SameGame 6x6 board. CI compiles this via `cargo bench --no-run`, so
//! the `tables --tree` sweep machinery cannot bit-rot; running it
//! locally gives per-configuration timings with criterion's statistics
//! on top of the sweep's single-shot table.

use criterion::{criterion_group, criterion_main, Criterion};
use nmcs_core::{LockStrategy, SearchSpec, StatsMode, UctConfig};
use nmcs_games::SameGame;
use std::hint::black_box;

fn bench_tree_parallel(c: &mut Criterion) {
    let game = SameGame::random(6, 6, 3, 7);
    let config = UctConfig {
        iterations: 400,
        ..UctConfig::default()
    };
    let workers = 4;
    let grid: [(&str, LockStrategy, StatsMode, usize); 4] = [
        (
            "arena_vloss",
            LockStrategy::Global,
            StatsMode::VirtualLoss,
            0,
        ),
        (
            "sharded_vloss",
            LockStrategy::Sharded,
            StatsMode::VirtualLoss,
            0,
        ),
        ("sharded_wuuct", LockStrategy::Sharded, StatsMode::WuUct, 0),
        (
            "sharded_wuuct_batch8",
            LockStrategy::Sharded,
            StatsMode::WuUct,
            8,
        ),
    ];
    for (name, lock, stats, leaf_batch) in grid {
        c.bench_function(format!("tree_parallel_{name}_4w"), |b| {
            b.iter(|| {
                let report = SearchSpec::tree_parallel_with(config.clone(), workers)
                    .lock_strategy(lock)
                    .stats_mode(stats)
                    .leaf_batch(leaf_batch)
                    .seed(7)
                    .run(&game);
                black_box(report.score)
            })
        });
    }

    // The sequential anchor at the same playout budget.
    c.bench_function("tree_parallel_uct_anchor_1w", |b| {
        b.iter(|| {
            let report = SearchSpec::uct_with(config.clone()).seed(7).run(&game);
            black_box(report.score)
        })
    });
}

criterion_group!(benches, bench_tree_parallel);
criterion_main!(benches);
