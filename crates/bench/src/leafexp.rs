//! Leaf-parallel batched backend experiment (`tables --leaf`).
//!
//! Sweeps worker count × batch size for [`parallel_nmcs::leaf_nested`]
//! on a SameGame board and a reduced Morpion cross, reporting score,
//! wall-clock time, and leaf-evaluation throughput. Because the leaf
//! backend derives every evaluation's seed from its logical coordinates,
//! the score column is constant down each batch column — the table
//! doubles as a visible determinism check (a score that moved with the
//! thread count would be a seeding bug).

use crate::report::Table;
use morpion::{cross_board, Variant};
use nmcs_games::SameGame;
use parallel_nmcs::{leaf_nested, LeafConfig};
use serde::Serialize;

/// One measured (domain × workers × batch) cell.
#[derive(Debug, Clone, Serialize)]
pub struct LeafRow {
    pub domain: String,
    pub threads: usize,
    pub batch: usize,
    pub score: i64,
    pub elapsed_ms: f64,
    pub leaf_evals: u64,
    pub evals_per_sec: f64,
}

fn measure<G>(domain: &str, game: &G, threads: usize, batch: usize, seed: u64) -> LeafRow
where
    G: nmcs_core::Game + Send,
    G::Move: Send,
{
    let mut config = LeafConfig::new(1, batch, threads);
    config.seed = seed;
    let (out, elapsed) = leaf_nested(game, &config);
    let secs = elapsed.as_secs_f64().max(1e-9);
    LeafRow {
        domain: domain.to_string(),
        threads,
        batch,
        score: out.score,
        elapsed_ms: secs * 1e3,
        leaf_evals: out.client_jobs,
        evals_per_sec: out.client_jobs as f64 / secs,
    }
}

/// Sweeps the leaf backend over worker counts and batch sizes.
pub fn leaf_sweep(threads: &[usize], batches: &[usize], seed: u64) -> Vec<LeafRow> {
    let samegame = SameGame::random(10, 10, 4, seed);
    let cross = cross_board(Variant::Disjoint, 3);
    let mut rows = Vec::new();
    for &batch in batches {
        for &t in threads {
            rows.push(measure("samegame-10x10", &samegame, t, batch, seed));
        }
    }
    for &batch in batches {
        for &t in threads {
            rows.push(measure("morpion-5d-c3", &cross, t, batch, seed));
        }
    }
    rows
}

/// Renders a sweep as a table in the style of the paper harness.
pub fn leaf_table(rows: &[LeafRow]) -> Table {
    let mut table = Table::new(
        "Leaf-parallel batched NMCS: score and throughput vs workers vs batch",
        &[
            "domain",
            "batch",
            "workers",
            "score",
            "elapsed (ms)",
            "leaf evals",
            "evals/sec",
        ],
    );
    for r in rows {
        table.row(&[
            r.domain.clone(),
            r.batch.to_string(),
            r.threads.to_string(),
            r.score.to_string(),
            format!("{:.1}", r.elapsed_ms),
            r.leaf_evals.to_string(),
            format!("{:.0}", r.evals_per_sec),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_invariant_across_worker_counts() {
        let rows = leaf_sweep(&[1, 2], &[2], 7);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].domain, pair[1].domain);
            assert_eq!(pair[0].batch, pair[1].batch);
            assert_eq!(
                pair[0].score, pair[1].score,
                "{}: leaf scores must not depend on the worker count",
                pair[0].domain
            );
            assert_eq!(pair[0].leaf_evals, pair[1].leaf_evals);
        }
    }

    #[test]
    fn table_renders_every_row() {
        let rows = leaf_sweep(&[1], &[1, 2], 3);
        let table = leaf_table(&rows);
        assert_eq!(table.rows.len(), rows.len());
        assert!(table.render().contains("samegame-10x10"));
    }
}
