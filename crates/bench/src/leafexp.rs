//! Leaf-parallel batched backend experiment (`tables --leaf`).
//!
//! Sweeps worker count × batch size for the unified
//! `SearchSpec::leaf(level, batch, threads)` strategy on SameGame boards
//! (one small, one paper-sized) and a reduced Morpion cross, reporting
//! score, wall-clock time, and leaf-evaluation throughput — for **both**
//! execution backends: the persistent executor pool the spec now runs
//! on, and the frozen PR-3 spawn-per-step implementation
//! (`nmcs_core::exec::baseline`). The `speedup` column is the pool's
//! throughput over the spawn baseline's; on the small board, where a
//! step's work is comparable to the cost of spawning threads to do it,
//! this is the number the pool exists to move (the acceptance floor is
//! ≥ 1.3× at multi-worker cells).
//!
//! Because the leaf backend derives every evaluation's seed from its
//! logical coordinates, the score column is constant down each batch
//! column *and identical between the two backends* — the table doubles
//! as a visible determinism check (a score that moved with the thread
//! count, or between pool and spawn, would be a seeding bug).
//!
//! Every row records the exact [`SearchSpec`] JSON that produced it, so
//! any cell is reproducible from the command line with one pasted
//! string: `tables --spec '<json>' --game <domain>`.

use crate::pooldelta::PoolProbe;
use crate::report::Table;
use morpion::{cross_board, Variant};
use nmcs_core::exec::baseline::leaf_parallel_spawn;
use nmcs_core::{CodedGame, SearchSpec, Searcher};
use nmcs_games::SameGame;
use serde::Serialize;

/// One measured (domain × workers × batch) cell: pool-backed spec run
/// vs the frozen spawn-per-step baseline.
#[derive(Debug, Clone, Serialize)]
pub struct LeafRow {
    pub domain: String,
    pub threads: usize,
    pub batch: usize,
    pub score: i64,
    pub elapsed_ms: f64,
    pub leaf_evals: u64,
    pub evals_per_sec: f64,
    /// Throughput of the frozen spawn-per-step baseline on the same cell.
    pub spawn_evals_per_sec: f64,
    /// `evals_per_sec / spawn_evals_per_sec` — the pool's win.
    pub speedup: f64,
    /// Executor-pool deque steals per second during the pool-backed
    /// run (delta of the shared metrics registry around it).
    pub steals_per_sec: f64,
    /// Executor-pool worker parks per second during the pool-backed run.
    pub parks_per_sec: f64,
    /// Executor-pool wakeup-generation bumps per second during the
    /// pool-backed run.
    pub wakeups_per_sec: f64,
    /// The exact spec JSON reproducing this row from the CLI.
    pub spec: String,
}

fn measure<G>(domain: &str, game: &G, threads: usize, batch: usize, seed: u64) -> LeafRow
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    let spec = SearchSpec::leaf(1, batch, threads).seed(seed).build();
    let probe = PoolProbe::start();
    let report = spec.search(game, None);
    let delta = probe.finish();
    let secs = report.elapsed.as_secs_f64().max(1e-9);

    let t0 = std::time::Instant::now();
    let spawn = leaf_parallel_spawn(game, 1, batch, threads, None, false, seed);
    let spawn_secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        (spawn.score, spawn.client_jobs),
        (report.score, report.client_jobs),
        "{domain}: pool and spawn backends must agree bit-for-bit"
    );

    let evals_per_sec = report.client_jobs as f64 / secs;
    let spawn_evals_per_sec = spawn.client_jobs as f64 / spawn_secs;
    LeafRow {
        domain: domain.to_string(),
        threads,
        batch,
        score: report.score,
        elapsed_ms: secs * 1e3,
        leaf_evals: report.client_jobs,
        evals_per_sec,
        spawn_evals_per_sec,
        speedup: evals_per_sec / spawn_evals_per_sec.max(1e-9),
        steals_per_sec: delta.steals_per_sec(secs),
        parks_per_sec: delta.parks_per_sec(secs),
        wakeups_per_sec: delta.wakeups_per_sec(secs),
        spec: serde_json::to_string(&spec).expect("specs serialise"),
    }
}

fn sweep_domain<G>(
    rows: &mut Vec<LeafRow>,
    domain: &str,
    game: &G,
    threads: &[usize],
    batches: &[usize],
    seed: u64,
) where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    for &batch in batches {
        for &t in threads {
            rows.push(measure(domain, game, t, batch, seed));
        }
    }
}

/// Sweeps the leaf backend over worker counts and batch sizes by
/// enumerating specs (one [`SearchSpec`] per cell), measuring pool and
/// spawn execution for each.
pub fn leaf_sweep(threads: &[usize], batches: &[usize], seed: u64) -> Vec<LeafRow> {
    // The small board is the pool's motivating case: whole games take
    // milliseconds, so per-step thread spawns dominate the spawn
    // baseline's profile.
    let small = SameGame::random(6, 6, 3, seed);
    let samegame = SameGame::random(10, 10, 4, seed);
    let cross = cross_board(Variant::Disjoint, 3);
    let mut rows = Vec::new();
    sweep_domain(&mut rows, "samegame-6x6", &small, threads, batches, seed);
    sweep_domain(
        &mut rows,
        "samegame-10x10",
        &samegame,
        threads,
        batches,
        seed,
    );
    sweep_domain(&mut rows, "morpion-5d-c3", &cross, threads, batches, seed);
    rows
}

/// Renders a sweep as a table in the style of the paper harness.
pub fn leaf_table(rows: &[LeafRow]) -> Table {
    let mut table = Table::new(
        "Leaf-parallel batched NMCS: persistent pool vs spawn-per-step throughput",
        &[
            "domain",
            "batch",
            "workers",
            "score",
            "elapsed (ms)",
            "leaf evals",
            "pool evals/sec",
            "spawn evals/sec",
            "speedup",
            "steals/s",
            "parks/s",
            "wakeups/s",
        ],
    );
    for r in rows {
        table.row(&[
            r.domain.clone(),
            r.batch.to_string(),
            r.threads.to_string(),
            r.score.to_string(),
            format!("{:.1}", r.elapsed_ms),
            r.leaf_evals.to_string(),
            format!("{:.0}", r.evals_per_sec),
            format!("{:.0}", r.spawn_evals_per_sec),
            format!("{:.2}x", r.speedup),
            format!("{:.0}", r.steals_per_sec),
            format!("{:.0}", r.parks_per_sec),
            format!("{:.0}", r.wakeups_per_sec),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_invariant_across_worker_counts() {
        let rows = leaf_sweep(&[1, 2], &[2], 7);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].domain, pair[1].domain);
            assert_eq!(pair[0].batch, pair[1].batch);
            assert_eq!(
                pair[0].score, pair[1].score,
                "{}: leaf scores must not depend on the worker count",
                pair[0].domain
            );
            assert_eq!(pair[0].leaf_evals, pair[1].leaf_evals);
        }
    }

    #[test]
    fn table_renders_every_row() {
        let rows = leaf_sweep(&[1], &[1, 2], 3);
        let table = leaf_table(&rows);
        assert_eq!(table.rows.len(), rows.len());
        assert!(table.render().contains("samegame-10x10"));
        assert!(table.render().contains("samegame-6x6"));
    }

    #[test]
    fn rows_carry_replayable_specs() {
        let rows = leaf_sweep(&[1], &[2], 5);
        for row in &rows {
            let spec: SearchSpec = serde_json::from_str(&row.spec).expect("row spec parses");
            assert!(matches!(
                spec.algorithm,
                nmcs_core::AlgorithmSpec::LeafParallel { batch: 2, .. }
            ));
            assert_eq!(spec.seed, 5);
            assert!(row.speedup > 0.0);
        }
    }
}
