//! Tree-parallel UCT experiment (`tables --tree`).
//!
//! Sweeps **lock strategy × stats mode × worker count** (plus a
//! batched-leaf column) for `SearchSpec::tree_parallel` on a
//! cheap-rollout SameGame 6x6 board — the regime where the PR-4
//! single-arena-mutex serialised selection — and a reduced Morpion
//! cross, reporting score, wall-clock time, playout throughput, and
//! each row's throughput relative to the global-mutex / virtual-loss
//! arena at the same width (`vs arena`). Sequential UCT is the
//! `workers = 1` anchor: per seed, *every* lock/stats combination at
//! one worker is bit-identical to `SearchSpec::uct()` — the sweep
//! asserts it, so the contention experiment can never drift from the
//! conformance contract.
//!
//! Unlike the leaf and root sweeps, the score column is **allowed to
//! move with the worker count** above one worker: tree-parallel workers
//! race on one shared tree, so their interleaving shapes the search
//! itself. The `deterministic` column states the contract per row so
//! the table never over-promises (see
//! `AlgorithmSpec::worker_count_deterministic`).
//!
//! Every row records the exact [`SearchSpec`] JSON that produced it;
//! deterministic rows are reproducible from the command line with
//! `tables --spec '<json>' --game <domain>`, nondeterministic rows
//! reproduce the *distribution*, not the cell.

use crate::pooldelta::PoolProbe;
use crate::report::Table;
use morpion::{cross_board, Variant};
use nmcs_core::{CodedGame, LockStrategy, SearchSpec, Searcher, StatsMode, UctConfig};
use nmcs_games::SameGame;
use serde::Serialize;

/// One measured (domain × configuration × workers) cell of the
/// tree-parallel sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TreeRow {
    pub domain: String,
    pub threads: usize,
    pub lock: String,
    pub stats: String,
    pub leaf_batch: usize,
    pub score: i64,
    pub elapsed_ms: f64,
    pub playouts: u64,
    pub playouts_per_sec: f64,
    /// Throughput relative to the global-mutex / virtual-loss arena row
    /// at the same domain and width (1.0 for the arena row itself) —
    /// the measured, not asserted, contention win.
    pub vs_arena: f64,
    /// Executor-pool deque steals per second during this row's run
    /// (delta of the shared metrics registry around the measurement).
    pub steals_per_sec: f64,
    /// Executor-pool worker parks per second during this row's run.
    pub parks_per_sec: f64,
    /// Executor-pool wakeup-generation bumps per second during this
    /// row's run.
    pub wakeups_per_sec: f64,
    /// Whether this cell's result is reproducible bit-for-bit from its
    /// spec (true at one worker, false above — the honest column).
    pub deterministic: bool,
    /// The exact spec JSON describing this row.
    pub spec: String,
}

/// One point of the configuration grid.
#[derive(Debug, Clone, Copy)]
struct TreeConfigPoint {
    lock: LockStrategy,
    stats: StatsMode,
    leaf_batch: usize,
}

/// The sweep grid: the PR-4 arena baseline first (the `vs arena`
/// denominator), then each lever in isolation, then the full stack.
const GRID: [TreeConfigPoint; 4] = [
    TreeConfigPoint {
        lock: LockStrategy::Global,
        stats: StatsMode::VirtualLoss,
        leaf_batch: 0,
    },
    TreeConfigPoint {
        lock: LockStrategy::Sharded,
        stats: StatsMode::VirtualLoss,
        leaf_batch: 0,
    },
    TreeConfigPoint {
        lock: LockStrategy::Sharded,
        stats: StatsMode::WuUct,
        leaf_batch: 0,
    },
    TreeConfigPoint {
        lock: LockStrategy::Sharded,
        stats: StatsMode::WuUct,
        leaf_batch: 8,
    },
];

fn measure<G>(
    domain: &str,
    game: &G,
    point: TreeConfigPoint,
    threads: usize,
    iterations: usize,
    seed: u64,
) -> TreeRow
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    let config = UctConfig {
        iterations,
        ..UctConfig::default()
    };
    let spec = SearchSpec::tree_parallel_with(config.clone(), threads)
        .lock_strategy(point.lock)
        .stats_mode(point.stats)
        .leaf_batch(point.leaf_batch)
        .seed(seed)
        .build();
    let probe = PoolProbe::start();
    let report = spec.search(game, None);
    let delta = probe.finish();
    if threads == 1 && point.leaf_batch < 2 {
        // The sweep's built-in conformance check: one unbatched worker
        // ≡ uct, whatever the lock strategy and stats mode.
        let uct = SearchSpec::uct_with(config).seed(seed).run(game);
        assert_eq!(
            (report.score, &report.sequence),
            (uct.score, &uct.sequence),
            "{domain} [{}/{}]: single-worker tree-parallel must equal sequential UCT",
            point.lock.label(),
            point.stats.label(),
        );
    }
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    TreeRow {
        domain: domain.to_string(),
        threads,
        lock: point.lock.label().to_string(),
        stats: point.stats.label().to_string(),
        leaf_batch: point.leaf_batch,
        score: report.score,
        elapsed_ms: secs * 1e3,
        playouts: report.stats.playouts,
        playouts_per_sec: report.stats.playouts as f64 / secs,
        vs_arena: 1.0, // filled in by `tree_sweep` once the arena row exists
        steals_per_sec: delta.steals_per_sec(secs),
        parks_per_sec: delta.parks_per_sec(secs),
        wakeups_per_sec: delta.wakeups_per_sec(secs),
        deterministic: spec.algorithm.worker_count_deterministic(),
        spec: serde_json::to_string(&spec).expect("specs serialise"),
    }
}

fn sweep_domain<G>(
    rows: &mut Vec<TreeRow>,
    domain: &str,
    game: &G,
    threads: &[usize],
    iterations: usize,
    seed: u64,
) where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    for &t in threads {
        let base = rows.len();
        for point in GRID {
            rows.push(measure(domain, game, point, t, iterations, seed));
        }
        // The first grid point is the PR-4 arena; normalise the width's
        // rows against it so the contention win is a printed number.
        let arena_pps = rows[base].playouts_per_sec.max(1e-9);
        for row in &mut rows[base..] {
            row.vs_arena = row.playouts_per_sec / arena_pps;
        }
    }
}

/// Sweeps the tree-parallel configuration grid over worker counts at a
/// fixed iteration budget (the shared counter keeps total playouts
/// constant per row, so the throughput column isolates parallel
/// efficiency). The primary domain is a **6x6 SameGame** — rollouts of
/// a few microseconds, the regime where selection cost and lock
/// contention dominate — with a reduced Morpion cross as the
/// expensive-rollout contrast.
pub fn tree_sweep(threads: &[usize], iterations: usize, seed: u64) -> Vec<TreeRow> {
    let samegame = SameGame::random(6, 6, 3, seed);
    let cross = cross_board(Variant::Disjoint, 3);
    let mut rows = Vec::new();
    sweep_domain(
        &mut rows,
        "samegame-6x6",
        &samegame,
        threads,
        iterations,
        seed,
    );
    // Morpion rollouts are ~2 orders of magnitude more expensive;
    // a quarter of the iteration budget keeps the sweep's wall clock
    // balanced between the domains.
    sweep_domain(
        &mut rows,
        "morpion-5d-c3",
        &cross,
        threads,
        (iterations / 4).max(1),
        seed,
    );
    rows
}

/// Renders a sweep as a table in the style of the paper harness.
pub fn tree_table(rows: &[TreeRow]) -> Table {
    let mut table = Table::new(
        "Tree-parallel UCT: lock strategy x stats mode x workers (vs the single-mutex arena)",
        &[
            "domain",
            "workers",
            "lock",
            "stats",
            "batch",
            "score",
            "elapsed (ms)",
            "playouts",
            "playouts/sec",
            "vs arena",
            "steals/s",
            "parks/s",
            "wakeups/s",
            "deterministic",
        ],
    );
    for r in rows {
        table.row(&[
            r.domain.clone(),
            r.threads.to_string(),
            r.lock.clone(),
            r.stats.clone(),
            r.leaf_batch.to_string(),
            r.score.to_string(),
            format!("{:.1}", r.elapsed_ms),
            r.playouts.to_string(),
            format!("{:.0}", r.playouts_per_sec),
            format!("{:.2}x", r.vs_arena),
            format!("{:.0}", r.steals_per_sec),
            format!("{:.0}", r.parks_per_sec),
            format!("{:.0}", r.wakeups_per_sec),
            if r.deterministic { "yes" } else { "no" }.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn playout_totals_are_invariant_across_the_whole_grid() {
        // The shared iteration counter: any worker count, lock
        // strategy, stats mode, or batch size executes the same number
        // of playouts, so throughput comparisons are fair.
        let rows = tree_sweep(&[1, 2], 120, 7);
        for chunk in rows.chunks(GRID.len()) {
            assert!(chunk.iter().all(|r| r.playouts == chunk[0].playouts));
        }
    }

    #[test]
    fn rows_are_marked_deterministic_honestly_and_anchor_to_uct() {
        // `measure` itself asserts the uct anchor for unbatched
        // single-worker rows, across every lock/stats combination.
        let rows = tree_sweep(&[1, 2], 100, 3);
        for row in &rows {
            assert_eq!(row.deterministic, row.threads == 1, "{:?}", row);
            let spec: SearchSpec = serde_json::from_str(&row.spec).expect("row spec parses");
            assert!(matches!(
                spec.algorithm,
                nmcs_core::AlgorithmSpec::TreeParallel { .. }
            ));
        }
    }

    #[test]
    fn arena_rows_normalise_to_one() {
        let rows = tree_sweep(&[1], 80, 5);
        for chunk in rows.chunks(GRID.len()) {
            assert!((chunk[0].vs_arena - 1.0).abs() < 1e-12, "{:?}", chunk[0]);
            assert_eq!(chunk[0].lock, "global");
            assert_eq!(chunk[0].stats, "vloss");
        }
    }
}
