//! Tree-parallel UCT experiment (`tables --tree`).
//!
//! Sweeps the worker count for `SearchSpec::tree_parallel(threads)` on a
//! SameGame board and a reduced Morpion cross, reporting score,
//! wall-clock time, and playout throughput, with sequential UCT as the
//! `workers = 1` anchor (per seed, tree-parallel at one worker is
//! bit-identical to `SearchSpec::uct()` — the sweep asserts it).
//!
//! Unlike the leaf and root sweeps, the score column is **allowed to
//! move with the worker count** above one worker: tree-parallel workers
//! race on one shared tree under virtual loss, so their interleaving
//! shapes the search itself. The `deterministic` column states the
//! contract per row so the table never over-promises (see
//! `AlgorithmSpec::worker_count_deterministic`).
//!
//! Every row records the exact [`SearchSpec`] JSON that produced it;
//! deterministic rows are reproducible from the command line with
//! `tables --spec '<json>' --game <domain>`, nondeterministic rows
//! reproduce the *distribution*, not the cell.

use crate::report::Table;
use morpion::{cross_board, Variant};
use nmcs_core::{CodedGame, SearchSpec, Searcher, UctConfig};
use nmcs_games::SameGame;
use serde::Serialize;

/// One measured (domain × workers) cell of the tree-parallel sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TreeRow {
    pub domain: String,
    pub threads: usize,
    pub score: i64,
    pub elapsed_ms: f64,
    pub playouts: u64,
    pub playouts_per_sec: f64,
    /// Whether this cell's result is reproducible bit-for-bit from its
    /// spec (true at one worker, false above — the honest column).
    pub deterministic: bool,
    /// The exact spec JSON describing this row.
    pub spec: String,
}

fn measure<G>(domain: &str, game: &G, threads: usize, iterations: usize, seed: u64) -> TreeRow
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    let config = UctConfig {
        iterations,
        ..UctConfig::default()
    };
    let spec = SearchSpec::tree_parallel_with(config.clone(), threads)
        .seed(seed)
        .build();
    let report = spec.search(game, None);
    if threads == 1 {
        // The sweep's built-in conformance check: one worker ≡ uct.
        let uct = SearchSpec::uct_with(config).seed(seed).run(game);
        assert_eq!(
            (report.score, &report.sequence),
            (uct.score, &uct.sequence),
            "{domain}: single-worker tree-parallel must equal sequential UCT"
        );
    }
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    TreeRow {
        domain: domain.to_string(),
        threads,
        score: report.score,
        elapsed_ms: secs * 1e3,
        playouts: report.stats.playouts,
        playouts_per_sec: report.stats.playouts as f64 / secs,
        deterministic: spec.algorithm.worker_count_deterministic(),
        spec: serde_json::to_string(&spec).expect("specs serialise"),
    }
}

/// Sweeps tree-parallel UCT over worker counts at a fixed iteration
/// budget (the shared counter keeps total playouts constant per row, so
/// the throughput column isolates parallel efficiency).
pub fn tree_sweep(threads: &[usize], iterations: usize, seed: u64) -> Vec<TreeRow> {
    let samegame = SameGame::random(10, 10, 4, seed);
    let cross = cross_board(Variant::Disjoint, 3);
    let mut rows = Vec::new();
    for &t in threads {
        rows.push(measure("samegame-10x10", &samegame, t, iterations, seed));
    }
    for &t in threads {
        rows.push(measure("morpion-5d-c3", &cross, t, iterations, seed));
    }
    rows
}

/// Renders a sweep as a table in the style of the paper harness.
pub fn tree_table(rows: &[TreeRow]) -> Table {
    let mut table = Table::new(
        "Tree-parallel UCT: score and playout throughput vs workers (shared tree, virtual loss)",
        &[
            "domain",
            "workers",
            "score",
            "elapsed (ms)",
            "playouts",
            "playouts/sec",
            "deterministic",
        ],
    );
    for r in rows {
        table.row(&[
            r.domain.clone(),
            r.threads.to_string(),
            r.score.to_string(),
            format!("{:.1}", r.elapsed_ms),
            r.playouts.to_string(),
            format!("{:.0}", r.playouts_per_sec),
            if r.deterministic { "yes" } else { "no" }.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn playout_totals_are_invariant_across_worker_counts() {
        // The shared iteration counter: any worker count executes the
        // same number of playouts, so throughput comparisons are fair.
        let rows = tree_sweep(&[1, 2, 4], 200, 7);
        for chunk in rows.chunks(3) {
            assert!(chunk.iter().all(|r| r.playouts == chunk[0].playouts));
        }
    }

    #[test]
    fn single_worker_rows_are_marked_deterministic_and_anchor_to_uct() {
        // `measure` itself asserts the uct anchor for threads == 1.
        let rows = tree_sweep(&[1, 2], 150, 3);
        for row in &rows {
            assert_eq!(row.deterministic, row.threads == 1, "{}", row.domain);
            let spec: SearchSpec = serde_json::from_str(&row.spec).expect("row spec parses");
            assert!(matches!(
                spec.algorithm,
                nmcs_core::AlgorithmSpec::TreeParallel { .. }
            ));
        }
    }
}
