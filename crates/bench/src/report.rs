//! Plain-text table rendering in the paper's style, plus JSON persistence
//! of raw experiment data.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A rendered experiment table: a title, column headers, and rows.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (header, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{header:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Writes any serialisable experiment payload as pretty JSON under
/// `dir/name.json`, creating the directory if needed.
pub fn persist<T: Serialize>(dir: &Path, name: &str, payload: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(payload).expect("serialisable payload");
    std::fs::write(path, json)
}

/// Formats a speedup for table cells.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["clients", "time"]);
        t.row(&["1".into(), "09m07s".into()]);
        t.row(&["64".into(), "10s".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[3].starts_with("1 "));
        assert!(lines[4].starts_with("64"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn persist_writes_json() {
        let dir = std::env::temp_dir().join("pnmcs_report_test");
        persist(&dir, "demo", &vec![1, 2, 3]).unwrap();
        let back = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(back.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn speedup_format() {
        assert_eq!(fmt_speedup(56.04), "56.0x");
    }
}
