//! Engine throughput experiment: jobs/sec as a function of worker count
//! and queue depth.
//!
//! The workload is a fixed batch of small mixed-game jobs (SameGame,
//! rollout-TSP, SumGame — the same mix as `examples/engine_service.rs`),
//! submitted as fast as backpressure admits them. For each (workers,
//! queue capacity) cell the experiment reports wall-clock throughput,
//! queue behaviour (peak depth, rejected fast-path submissions), and
//! work-stealing activity.

use crate::report::Table;
use nmcs_core::metrics::{HistogramSnapshot, MetricsSnapshot};
use nmcs_core::seeds::median_seed;
use nmcs_core::SearchSpec;
use nmcs_engine::{Algorithm, Engine, EngineConfig, JobSpec, SubmitError};
use nmcs_games::{SameGame, SumGame, TspGame, TspInstance};
use serde::Serialize;
use std::time::Instant;

/// One measured (workers × queue capacity) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    pub workers: usize,
    pub queue_capacity: usize,
    pub jobs: usize,
    pub elapsed_ms: f64,
    pub jobs_per_sec: f64,
    pub total_work_units: u64,
    pub stolen_tasks: u64,
    pub peak_queue_depth: usize,
    pub rejected_submissions: u64,
}

/// Builds the `i`-th job of the mixed workload by enumerating unified
/// specs — the job is (name, game, SearchSpec), nothing hand-wired.
fn mixed_job(i: usize, seed: u64) -> JobSpec {
    let job_seed = median_seed(seed, 0, i);
    let spec = SearchSpec::nested(1).seed(job_seed).build();
    match i % 3 {
        0 => JobSpec::from_spec(
            format!("samegame-{i}"),
            SameGame::random(5, 5, 3, job_seed),
            spec,
        ),
        1 => JobSpec::from_spec(
            format!("tsp-{i}"),
            TspGame::new(TspInstance::random(8, job_seed), None),
            spec,
        ),
        _ => JobSpec::from_spec(format!("sum-{i}"), SumGame::random(6, 4, job_seed), spec),
    }
}

/// Runs `n_jobs` mixed jobs through an engine with the given shape and
/// measures completion throughput.
pub fn measure_cell(
    workers: usize,
    queue_capacity: usize,
    n_jobs: usize,
    seed: u64,
) -> ThroughputRow {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity,
    })
    .expect("valid engine config");
    let started = Instant::now();
    let mut handles = Vec::with_capacity(n_jobs);
    for i in 0..n_jobs {
        // Exercise both admission paths: fast-path try_submit, falling
        // back to the blocking (backpressure) path when full.
        let handle = match engine.try_submit(mixed_job(i, seed)) {
            Ok(h) => h,
            Err((SubmitError::QueueFull { .. }, spec)) => {
                engine.submit(spec).expect("engine accepting")
            }
            Err((e, _)) => panic!("submission failed: {e}"),
        };
        handles.push(handle);
    }
    for h in handles {
        let out = h.join();
        assert!(out.best.is_some(), "job {} produced no result", out.name);
    }
    let elapsed = started.elapsed();
    let stats = engine.stats();
    engine.shutdown();

    ThroughputRow {
        workers,
        queue_capacity,
        jobs: n_jobs,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        jobs_per_sec: n_jobs as f64 / elapsed.as_secs_f64(),
        total_work_units: stats.total_work_units,
        stolen_tasks: stats.stolen_tasks,
        peak_queue_depth: stats.peak_queue_depth,
        rejected_submissions: stats.rejected_submissions,
    }
}

/// The full sweep: every worker count × queue capacity combination.
pub fn throughput_sweep(
    workers: &[usize],
    queue_capacities: &[usize],
    n_jobs: usize,
    seed: u64,
) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for &w in workers {
        for &cap in queue_capacities {
            rows.push(measure_cell(w, cap, n_jobs, seed));
        }
    }
    rows
}

/// Renders a sweep as a table in the style of the paper harness.
pub fn throughput_table(rows: &[ThroughputRow]) -> Table {
    let mut table = Table::new(
        "Engine throughput: mixed jobs vs workers vs queue depth",
        &[
            "workers",
            "queue cap",
            "jobs",
            "elapsed (ms)",
            "jobs/sec",
            "peak queue",
            "stolen",
            "rejected",
        ],
    );
    for r in rows {
        table.row(&[
            r.workers.to_string(),
            r.queue_capacity.to_string(),
            r.jobs.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.jobs_per_sec),
            r.peak_queue_depth.to_string(),
            r.stolen_tasks.to_string(),
            r.rejected_submissions.to_string(),
        ]);
    }
    table
}

/// A game whose playouts panic — the service report's fault injector,
/// proving the dead-letter queue end to end (the engine fences every
/// replica with `catch_unwind`, so the worker and the report survive).
/// The fault fires a few moves into a playout, past the scheduler's
/// short state-digest probe, so submission succeeds and the panic
/// happens where a buggy game would really throw: on a worker, inside
/// the search.
#[derive(Clone, Default)]
struct FaultyGame {
    moves: usize,
}

impl nmcs_core::Game for FaultyGame {
    type Move = u8;
    fn legal_moves(&self, out: &mut Vec<u8>) {
        out.push(0);
    }
    fn play(&mut self, _mv: &u8) {
        self.moves += 1;
        if self.moves > 24 {
            panic!("injected fault: buggy game implementation");
        }
    }
    fn score(&self) -> nmcs_core::Score {
        0
    }
    fn moves_played(&self) -> usize {
        self.moves
    }
}

/// Runs the latency-SLO workload — the mixed-game job set plus one
/// deadline-budgeted job (a guaranteed budget trip) and one panicking
/// job (a guaranteed dead letter) — through a small engine, and
/// returns the [`Engine::inspector`] snapshot it produced.
pub fn slo_snapshot(n_jobs: usize, seed: u64) -> MetricsSnapshot {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 64,
    })
    .expect("valid engine config");
    let mut handles = Vec::new();
    for i in 0..n_jobs {
        handles.push(engine.submit(mixed_job(i, seed)).expect("engine accepting"));
    }
    // A deep nested search under a 1ms deadline: trips the budget and
    // lands in the dead-letter record with reason "deadline" while
    // still returning its best-so-far result.
    let tripped = SearchSpec::nested(3).seed(seed).deadline_ms(1).build();
    handles.push(
        engine
            .submit(JobSpec::from_spec(
                "slo-deadline",
                SameGame::random(10, 10, 4, seed),
                tripped,
            ))
            .expect("engine accepting"),
    );
    // The injected fault: replica panics, job fails, DLQ records it.
    handles.push(
        engine
            .submit(JobSpec::uncoded(
                "slo-panic",
                FaultyGame::default(),
                Algorithm::Sample,
                seed,
            ))
            .expect("engine accepting"),
    );
    for h in handles {
        h.join();
    }
    let snapshot = engine.inspector();
    engine.shutdown();
    snapshot
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// One scope of the SLO report (overall queue wait / run time, one
/// game domain, or one search backend).
#[derive(Debug, Clone, Serialize)]
pub struct SloRow {
    /// What this row measures (e.g. `run-time`, `domain:SameGame`).
    pub scope: String,
    /// Samples behind the percentiles.
    pub count: u64,
    /// Estimated median, milliseconds.
    pub p50_ms: f64,
    /// Estimated 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// Estimated 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Largest observed sample, milliseconds.
    pub max_ms: f64,
    /// The latency objective this row is judged against, milliseconds.
    pub slo_ms: f64,
    /// Whether `p99_ms <= slo_ms`.
    pub within_slo: bool,
}

impl SloRow {
    fn from_hist(scope: impl Into<String>, h: &HistogramSnapshot, slo_ms: f64) -> Self {
        let p99_ms = ms(h.p99_ns);
        SloRow {
            scope: scope.into(),
            count: h.count,
            p50_ms: ms(h.p50_ns),
            p95_ms: ms(h.p95_ns),
            p99_ms,
            max_ms: ms(h.max_ns),
            slo_ms,
            within_slo: p99_ms <= slo_ms,
        }
    }
}

/// Flattens an inspector snapshot into SLO rows: overall queue wait and
/// run time first, then per-domain run time, then per-backend search
/// wall time. `slo_ms` is the p99 objective every row is judged
/// against.
pub fn slo_rows(snapshot: &MetricsSnapshot, slo_ms: f64) -> Vec<SloRow> {
    let mut rows = Vec::new();
    if let Some(engine) = &snapshot.engine {
        rows.push(SloRow::from_hist("queue-wait", &engine.queue_wait, slo_ms));
        rows.push(SloRow::from_hist("run-time", &engine.run_time, slo_ms));
        for d in &engine.domains {
            rows.push(SloRow::from_hist(
                format!("domain:{}", d.label),
                &d.hist,
                slo_ms,
            ));
        }
    }
    for b in &snapshot.search.backends {
        rows.push(SloRow::from_hist(
            format!("backend:{}", b.label),
            &b.hist,
            slo_ms,
        ));
    }
    rows
}

/// Renders the SLO rows as a table in the style of the paper harness.
pub fn slo_table(rows: &[SloRow]) -> Table {
    let mut table = Table::new(
        "Service latency SLO: queue wait, run time, per-domain and per-backend percentiles",
        &[
            "scope", "count", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)", "SLO (ms)", "within",
        ],
    );
    for r in rows {
        table.row(&[
            r.scope.clone(),
            r.count.to_string(),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.2}", r.max_ms),
            format!("{:.0}", r.slo_ms),
            if r.within_slo { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

/// Renders the dead-letter record of an inspector snapshot (the
/// companion table of the SLO report; empty engines render no rows).
pub fn dead_letter_table(snapshot: &MetricsSnapshot) -> Table {
    let mut table = Table::new(
        "Dead letters: panicked / cancelled / budget-tripped replicas (oldest first)",
        &["job", "replica", "tenant", "reason", "age (ms)"],
    );
    if let Some(engine) = &snapshot.engine {
        for d in &engine.dead_letters {
            table.row(&[
                d.job.to_string(),
                d.replica.to_string(),
                d.name.clone(),
                d.reason.clone(),
                d.age_ms.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_completes_all_jobs() {
        let row = measure_cell(2, 8, 6, 42);
        assert_eq!(row.jobs, 6);
        assert!(row.jobs_per_sec > 0.0);
        assert!(row.peak_queue_depth <= 8);
    }

    #[test]
    fn slo_report_covers_faults_budget_trips_and_percentiles() {
        let snapshot = slo_snapshot(4, 11);
        let engine = snapshot.engine.as_ref().expect("engine section present");
        // The injected fault and the 1ms-deadline job are both in the
        // dead-letter record, with the panic marked as such.
        assert!(engine.dead_letters.iter().any(|d| d.reason == "panicked"));
        assert!(engine.dead_letters.iter().any(|d| d.reason == "deadline"));
        assert_eq!(engine.failed_jobs, 1);
        // Every executed replica fed the run-time histogram.
        assert!(engine.run_time.count >= 5);
        assert!(engine.queue_wait.count >= 1);
        let rows = slo_rows(&snapshot, 10_000.0);
        assert!(rows.iter().any(|r| r.scope == "queue-wait"));
        assert!(rows.iter().any(|r| r.scope == "run-time"));
        assert!(rows.iter().any(|r| r.scope.starts_with("domain:")));
        let table = slo_table(&rows);
        assert_eq!(table.rows.len(), rows.len());
        assert!(dead_letter_table(&snapshot).rows.len() >= 2);
    }

    #[test]
    fn sweep_covers_the_grid() {
        let rows = throughput_sweep(&[1, 2], &[4], 3, 7);
        assert_eq!(rows.len(), 2);
        let table = throughput_table(&rows);
        assert_eq!(table.rows.len(), 2);
        // Rendering sanity: every row has the full width.
        assert!(table.render().contains("jobs/sec"));
    }
}
