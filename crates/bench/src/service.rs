//! Engine throughput experiment: jobs/sec as a function of worker count
//! and queue depth.
//!
//! The workload is a fixed batch of small mixed-game jobs (SameGame,
//! rollout-TSP, SumGame — the same mix as `examples/engine_service.rs`),
//! submitted as fast as backpressure admits them. For each (workers,
//! queue capacity) cell the experiment reports wall-clock throughput,
//! queue behaviour (peak depth, rejected fast-path submissions), and
//! work-stealing activity.

use crate::report::Table;
use nmcs_core::SearchSpec;
use nmcs_engine::{Engine, EngineConfig, JobSpec, SubmitError};
use nmcs_games::{SameGame, SumGame, TspGame, TspInstance};
use serde::Serialize;
use std::time::Instant;

/// One measured (workers × queue capacity) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    pub workers: usize,
    pub queue_capacity: usize,
    pub jobs: usize,
    pub elapsed_ms: f64,
    pub jobs_per_sec: f64,
    pub total_work_units: u64,
    pub stolen_tasks: u64,
    pub peak_queue_depth: usize,
    pub rejected_submissions: u64,
}

/// Builds the `i`-th job of the mixed workload by enumerating unified
/// specs — the job is (name, game, SearchSpec), nothing hand-wired.
fn mixed_job(i: usize, seed: u64) -> JobSpec {
    let job_seed = seed.wrapping_add(i as u64);
    let spec = SearchSpec::nested(1).seed(job_seed).build();
    match i % 3 {
        0 => JobSpec::from_spec(
            format!("samegame-{i}"),
            SameGame::random(5, 5, 3, job_seed),
            spec,
        ),
        1 => JobSpec::from_spec(
            format!("tsp-{i}"),
            TspGame::new(TspInstance::random(8, job_seed), None),
            spec,
        ),
        _ => JobSpec::from_spec(format!("sum-{i}"), SumGame::random(6, 4, job_seed), spec),
    }
}

/// Runs `n_jobs` mixed jobs through an engine with the given shape and
/// measures completion throughput.
pub fn measure_cell(
    workers: usize,
    queue_capacity: usize,
    n_jobs: usize,
    seed: u64,
) -> ThroughputRow {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity,
    })
    .expect("valid engine config");
    let started = Instant::now();
    let mut handles = Vec::with_capacity(n_jobs);
    for i in 0..n_jobs {
        // Exercise both admission paths: fast-path try_submit, falling
        // back to the blocking (backpressure) path when full.
        let handle = match engine.try_submit(mixed_job(i, seed)) {
            Ok(h) => h,
            Err((SubmitError::QueueFull { .. }, spec)) => {
                engine.submit(spec).expect("engine accepting")
            }
            Err((e, _)) => panic!("submission failed: {e}"),
        };
        handles.push(handle);
    }
    for h in handles {
        let out = h.join();
        assert!(out.best.is_some(), "job {} produced no result", out.name);
    }
    let elapsed = started.elapsed();
    let stats = engine.stats();
    engine.shutdown();

    ThroughputRow {
        workers,
        queue_capacity,
        jobs: n_jobs,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        jobs_per_sec: n_jobs as f64 / elapsed.as_secs_f64(),
        total_work_units: stats.total_work_units,
        stolen_tasks: stats.stolen_tasks,
        peak_queue_depth: stats.peak_queue_depth,
        rejected_submissions: stats.rejected_submissions,
    }
}

/// The full sweep: every worker count × queue capacity combination.
pub fn throughput_sweep(
    workers: &[usize],
    queue_capacities: &[usize],
    n_jobs: usize,
    seed: u64,
) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for &w in workers {
        for &cap in queue_capacities {
            rows.push(measure_cell(w, cap, n_jobs, seed));
        }
    }
    rows
}

/// Renders a sweep as a table in the style of the paper harness.
pub fn throughput_table(rows: &[ThroughputRow]) -> Table {
    let mut table = Table::new(
        "Engine throughput: mixed jobs vs workers vs queue depth",
        &[
            "workers",
            "queue cap",
            "jobs",
            "elapsed (ms)",
            "jobs/sec",
            "peak queue",
            "stolen",
            "rejected",
        ],
    );
    for r in rows {
        table.row(&[
            r.workers.to_string(),
            r.queue_capacity.to_string(),
            r.jobs.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.jobs_per_sec),
            r.peak_queue_depth.to_string(),
            r.stolen_tasks.to_string(),
            r.rejected_submissions.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_completes_all_jobs() {
        let row = measure_cell(2, 8, 6, 42);
        assert_eq!(row.jobs, 6);
        assert!(row.jobs_per_sec > 0.0);
        assert!(row.peak_queue_depth <= 8);
    }

    #[test]
    fn sweep_covers_the_grid() {
        let rows = throughput_sweep(&[1, 2], &[4], 3, 7);
        assert_eq!(rows.len(), 2);
        let table = throughput_table(&rows);
        assert_eq!(table.rows.len(), 2);
        // Rendering sanity: every row has the full width.
        assert!(table.render().contains("jobs/sec"));
    }
}
