//! Single-shot, unbounded searches for the experiment harness.
//!
//! The experiments thread one RNG through a sequence of searches to
//! reproduce the paper's measurement protocol — a shape the seed-in,
//! builder-out [`nmcs_core::SearchSpec`] front door deliberately does
//! not expose. These helpers call the same `*_with` engine rooms the
//! unified API runs on, with an unbounded budget, and repackage the
//! `(score, sequence)` pair plus the context's counters as a
//! [`SearchResult`] — behaviourally identical to the deprecated free
//! functions without routing through the compatibility shims.

use nmcs_core::baselines::{flat_monte_carlo_with, iterated_sampling_with};
use nmcs_core::{
    nested_with, nrpa_with, simulated_annealing_with, uct_with, AnnealingConfig, CodedGame, Game,
    NestedConfig, NrpaConfig, Rng, SearchCtx, SearchResult, UctConfig,
};

fn package<M>(ctx: SearchCtx, (score, sequence): (nmcs_core::Score, Vec<M>)) -> SearchResult<M> {
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// One unbounded Nested Monte-Carlo Search at `level`.
pub(crate) fn nested_once<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let out = nested_with(game, level, config, rng, &mut ctx);
    package(ctx, out)
}

/// One unbounded NRPA run at `level`.
pub(crate) fn nrpa_once<G: CodedGame>(
    game: &G,
    level: u32,
    config: &NrpaConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let out = nrpa_with(game, level, config, rng, &mut ctx);
    package(ctx, out)
}

/// One unbounded UCT run.
pub(crate) fn uct_once<G: Game>(
    game: &G,
    config: &UctConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let out = uct_with(game, config, rng, &mut ctx);
    package(ctx, out)
}

/// `n` independent playouts, best kept (flat Monte-Carlo baseline).
pub(crate) fn flat_mc_once<G: Game>(game: &G, n: usize, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let out = flat_monte_carlo_with(game, n, rng, &mut ctx);
    package(ctx, out)
}

/// Iterated sampling baseline with `n` playouts per move.
pub(crate) fn iterated_sampling_once<G: Game>(
    game: &G,
    n: usize,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let out = iterated_sampling_with(game, n, rng, &mut ctx);
    package(ctx, out)
}

/// Simulated-annealing baseline over decision vectors.
pub(crate) fn annealing_once<G: Game>(
    game: &G,
    config: &AnnealingConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let out = simulated_annealing_with(game, config, rng, &mut ctx);
    package(ctx, out)
}
