//! `tables` — regenerates the paper's tables and figures.
//!
//! ```text
//! tables                         # everything at paper scale (default)
//! tables --table 2               # just Table II
//! tables --table 6               # Table VI (heterogeneous)
//! tables --figure 1              # Figure 1 analogue
//! tables --ablations             # A1/A2/A4/A5
//! tables --scale real --table 2  # real recorded level-2 traces
//! tables --seed 42 --out target/experiments
//! tables --spec '{"algorithm":{"kind":"nested","level":2},"budget":{"deadline_ms":200},"seed":42}' --game samegame
//! tables --lint                  # workspace invariant check (nonzero exit on findings)
//! tables --serve [--soak-small]  # HTTP front-door soak (nonzero exit on any violated invariant)
//! tables --serve --sessions      # soak plus the session-churn phase (quota, TTL table, eviction plateau)
//! tables --reuse                 # equal-budget warm-tree reuse-on vs reuse-off comparison
//! ```
//!
//! `--spec` replays any persisted sweep row from its recorded JSON (see
//! `nmcs_bench::spec_cli`); `--game` picks the stock game it runs on.

use nmcs_bench::experiments::{Experiments, Scale};
use parallel_nmcs::{DispatchPolicy, RunMode};
use std::path::PathBuf;

struct Args {
    table: Option<u32>,
    figure: Option<u32>,
    ablations: bool,
    engine: bool,
    leaf: bool,
    tree: bool,
    reuse: bool,
    service: bool,
    spec: Option<String>,
    game: String,
    lint: bool,
    hot: bool,
    serve: bool,
    soak_small: bool,
    sessions: bool,
    scale: Scale,
    seed: u64,
    out: PathBuf,
    all: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        table: None,
        figure: None,
        ablations: false,
        engine: false,
        leaf: false,
        tree: false,
        reuse: false,
        service: false,
        spec: None,
        game: "samegame".to_string(),
        lint: false,
        hot: false,
        serve: false,
        soak_small: false,
        sessions: false,
        scale: Scale::Paper,
        seed: 2009,
        out: PathBuf::from("target/experiments"),
        all: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => {
                args.table = Some(
                    expect_val(&mut it, "--table")
                        .parse()
                        .expect("table number"),
                );
                args.all = false;
            }
            "--figure" => {
                args.figure = Some(
                    expect_val(&mut it, "--figure")
                        .parse()
                        .expect("figure number"),
                );
                args.all = false;
            }
            "--ablations" => {
                args.ablations = true;
                args.all = false;
            }
            "--engine" => {
                args.engine = true;
                args.all = false;
            }
            "--leaf" => {
                args.leaf = true;
                args.all = false;
            }
            "--tree" => {
                args.tree = true;
                args.all = false;
            }
            "--reuse" => {
                args.reuse = true;
                args.all = false;
            }
            "--service" => {
                args.service = true;
                args.all = false;
            }
            "--spec" => {
                args.spec = Some(expect_val(&mut it, "--spec"));
                args.all = false;
            }
            "--lint" => {
                args.lint = true;
                args.all = false;
            }
            "--hot" => {
                args.hot = true;
                args.all = false;
            }
            "--serve" => {
                args.serve = true;
                args.all = false;
            }
            "--soak-small" => args.soak_small = true,
            "--sessions" => args.sessions = true,
            "--game" => args.game = expect_val(&mut it, "--game"),
            "--scale" => {
                args.scale = match expect_val(&mut it, "--scale").as_str() {
                    "paper" => Scale::Paper,
                    "real" => Scale::Real,
                    other => panic!("unknown scale '{other}' (paper|real)"),
                };
            }
            "--seed" => args.seed = expect_val(&mut it, "--seed").parse().expect("seed"),
            "--out" => args.out = PathBuf::from(expect_val(&mut it, "--out")),
            "--help" | "-h" => {
                println!(
                    "tables [--table N] [--figure 1] [--ablations] [--engine] [--leaf] [--tree] [--reuse] [--service] \
                     [--lint [--hot]] [--serve [--soak-small] [--sessions]] [--spec JSON [--game {}]] \
                     [--scale paper|real] [--seed S] [--out DIR]",
                    nmcs_bench::STOCK_GAMES.join("|")
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument '{other}' (see --help)"),
        }
    }
    args
}

fn expect_val(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
}

fn main() {
    let args = parse_args();

    // The invariant check needs no calibration and gates CI: print every
    // unwaived finding, summarise per rule, exit nonzero if any remain.
    // `--hot` additionally renders every function the hot-path pass
    // proved reachable from a `nmcs-lint: hot-entry` root, with its
    // verdict and provenance chain.
    if args.lint {
        if args.hot {
            let (hot, hot_findings) = match nmcs_lint::hot_report(std::path::Path::new(".")) {
                Ok(r) => r,
                Err(e) => panic!("workspace walk failed (run from the repo root): {e}"),
            };
            let mut t = nmcs_bench::Table::new(
                "Hot-path reachability (nmcs-lint --hot)",
                &["function", "file:line", "verdict", "hot via"],
            );
            for f in &hot {
                let in_fn = |x: &&nmcs_lint::Finding| {
                    x.file == f.file && x.line >= f.line && x.line <= f.end_line
                };
                let open = hot_findings
                    .iter()
                    .filter(in_fn)
                    .filter(|x| !x.waived)
                    .count();
                let waived = hot_findings
                    .iter()
                    .filter(in_fn)
                    .filter(|x| x.waived)
                    .count();
                let verdict = match (open, waived) {
                    (0, 0) => "clean".to_string(),
                    (0, w) => format!("waived x{w}"),
                    (o, _) => format!("DENY x{o}"),
                };
                t.row(&[
                    f.name.clone(),
                    format!("{}:{}", f.file, f.line),
                    verdict,
                    f.via.clone(),
                ]);
            }
            println!("{}", t.render());
            if hot_findings.iter().any(|x| !x.waived) {
                std::process::exit(1);
            }
            return;
        }
        let findings = match nmcs_lint::lint_workspace(std::path::Path::new(".")) {
            Ok(f) => f,
            Err(e) => panic!("workspace walk failed (run from the repo root): {e}"),
        };
        let mut unwaived = 0usize;
        for f in &findings {
            if !f.waived {
                unwaived += 1;
                println!("{f}");
            }
        }
        let mut t = nmcs_bench::Table::new(
            "Workspace invariants (nmcs-lint)",
            &["rule", "unwaived", "waived"],
        );
        for (rule, (open, excused)) in nmcs_lint::rule_counts(&findings) {
            t.row(&[rule.to_string(), open.to_string(), excused.to_string()]);
        }
        println!("{}", t.render());
        // Persist the machine-readable report CI consumes — the same
        // serialisation `nmcs-lint --format json` prints.
        let json = nmcs_lint::findings_to_json(&findings);
        if std::fs::create_dir_all(&args.out).is_ok() {
            let path = args.out.join("lint_findings.json");
            if std::fs::write(&path, json).is_ok() {
                eprintln!("wrote {}", path.display());
            }
        }
        if unwaived > 0 {
            std::process::exit(1);
        }
        return;
    }

    // The soak needs no calibration either: it drives the HTTP front
    // door and panics (nonzero exit) on any violated invariant.
    if args.serve {
        let (_, table) = nmcs_bench::serve_soak(args.soak_small, args.seed);
        println!("{}", table.render());
        if args.sessions {
            println!("{}", nmcs_bench::session_churn(args.seed).render());
        }
        return;
    }

    // The reuse comparison needs no calibration: both arms are
    // deterministic width-1 UCT sessions, and the sweep itself asserts
    // the reuse-on mean never falls below reuse-off.
    if args.reuse {
        let rows = nmcs_bench::reuse_sweep(args.seed);
        println!("{}", nmcs_bench::reuse_table(&rows).render());
        nmcs_bench::persist(&args.out, "warm_reuse", &rows).expect("persist reuse rows");
        return;
    }

    // Spec replay needs no calibration: parse, run, render, done.
    if let Some(json) = &args.spec {
        let spec: nmcs_core::SearchSpec = match serde_json::from_str(json) {
            Ok(spec) => spec,
            Err(e) => panic!("--spec JSON did not parse: {e}"),
        };
        match nmcs_bench::run_spec_on(&spec, &args.game) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => panic!("{e}"),
        }
        return;
    }

    eprintln!("calibrating on this machine…");
    let e = Experiments::new(args.seed, args.out.clone());
    eprintln!(
        "calibration: {:.0} ns/work-unit, mean playout {:.1} moves, level ratio x{:.0}\n",
        e.cal.ns_per_unit, e.cal.mean_playout_len, e.cal.level_ratio
    );

    let run_table = |n: u32| match (n, args.scale) {
        (1, _) => println!("{}", e.table1().render()),
        (2, Scale::Paper) => {
            println!(
                "{}",
                e.paper_sweep(2, DispatchPolicy::RoundRobin, RunMode::FirstMove, 3)
                    .render()
            );
            println!(
                "{}",
                e.paper_sweep(2, DispatchPolicy::RoundRobin, RunMode::FirstMove, 4)
                    .render()
            );
        }
        (3, Scale::Paper) => {
            println!(
                "{}",
                e.paper_sweep(3, DispatchPolicy::RoundRobin, RunMode::FullGame, 3)
                    .render()
            );
            println!(
                "{}",
                e.paper_sweep(3, DispatchPolicy::RoundRobin, RunMode::FullGame, 4)
                    .render()
            );
        }
        (4, Scale::Paper) => {
            println!(
                "{}",
                e.paper_sweep(4, DispatchPolicy::LastMinute, RunMode::FirstMove, 3)
                    .render()
            );
            println!(
                "{}",
                e.paper_sweep(4, DispatchPolicy::LastMinute, RunMode::FirstMove, 4)
                    .render()
            );
        }
        (5, Scale::Paper) => {
            println!(
                "{}",
                e.paper_sweep(5, DispatchPolicy::LastMinute, RunMode::FullGame, 3)
                    .render()
            );
            println!(
                "{}",
                e.paper_sweep(5, DispatchPolicy::LastMinute, RunMode::FullGame, 4)
                    .render()
            );
        }
        (6, _) => {
            println!("{}", e.table6(3).render());
            println!("{}", e.table6(4).render());
        }
        (2, Scale::Real) => {
            println!(
                "{}",
                e.real_sweep(DispatchPolicy::RoundRobin, RunMode::FirstMove)
                    .render()
            )
        }
        (3, Scale::Real) => {
            println!(
                "{}",
                e.real_sweep(DispatchPolicy::RoundRobin, RunMode::FullGame)
                    .render()
            )
        }
        (4, Scale::Real) => {
            println!(
                "{}",
                e.real_sweep(DispatchPolicy::LastMinute, RunMode::FirstMove)
                    .render()
            )
        }
        (5, Scale::Real) => {
            println!(
                "{}",
                e.real_sweep(DispatchPolicy::LastMinute, RunMode::FullGame)
                    .render()
            )
        }
        (n, _) => panic!("no table {n}"),
    };

    if args.all {
        for t in 1..=6 {
            run_table(t);
        }
        let (art, _) = e.figure1();
        println!("{art}");
        println!("{}", e.ablation_order().render());
        println!("{}", e.ablation_latency().render());
        println!("{}", e.ablation_memory(5).render());
        println!("{}", e.ablation_baselines().render());
        println!("{}", e.ablation_nrpa().render());
        return;
    }
    if let Some(t) = args.table {
        run_table(t);
    }
    if args.figure == Some(1) {
        let (art, _) = e.figure1();
        println!("{art}");
    }
    if args.ablations {
        println!("{}", e.ablation_order().render());
        println!("{}", e.ablation_latency().render());
        println!("{}", e.ablation_memory(5).render());
        println!("{}", e.ablation_baselines().render());
        println!("{}", e.ablation_nrpa().render());
    }
    if args.engine {
        let rows = nmcs_bench::throughput_sweep(&[1, 2, 4, 8], &[4, 32, 256], 96, args.seed);
        println!("{}", nmcs_bench::throughput_table(&rows).render());
        nmcs_bench::persist(&args.out, "engine_throughput", &rows)
            .expect("persist engine throughput rows");
    }
    if args.leaf {
        let rows = nmcs_bench::leaf_sweep(&[1, 2, 4, 8], &[1, 4, 16], args.seed);
        println!("{}", nmcs_bench::leaf_table(&rows).render());
        nmcs_bench::persist(&args.out, "leaf_parallel", &rows).expect("persist leaf rows");
    }
    if args.tree {
        let rows = nmcs_bench::tree_sweep(&[1, 2, 4, 8], 20_000, args.seed);
        println!("{}", nmcs_bench::tree_table(&rows).render());
        nmcs_bench::persist(&args.out, "tree_parallel", &rows).expect("persist tree rows");
    }
    if args.service {
        // The latency-SLO report: a mixed workload (plus one injected
        // panic and one guaranteed budget trip) through the engine,
        // read back through `Engine::inspector`.
        let snapshot = nmcs_bench::slo_snapshot(24, args.seed);
        let rows = nmcs_bench::slo_rows(&snapshot, 250.0);
        println!("{}", nmcs_bench::slo_table(&rows).render());
        println!("{}", nmcs_bench::dead_letter_table(&snapshot).render());
        nmcs_bench::persist(&args.out, "service_slo", &rows).expect("persist SLO rows");
    }
}
