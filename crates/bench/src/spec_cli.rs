//! `tables --spec '<json>'` — replay any sweep row from one pasted
//! string.
//!
//! Every persisted sweep row records the exact [`SearchSpec`] JSON that
//! produced it; this module runs such a spec against a named stock game
//! and renders a one-row table, so a measurement is reproducible from
//! the command line without touching code:
//!
//! ```text
//! tables --spec '{"algorithm":{"kind":"nested","level":2},"budget":{"deadline_ms":200},"seed":42}' \
//!        --game samegame
//! ```

use crate::report::Table;
use morpion::{cross_board, standard_5d, Variant};
use nmcs_core::{SearchReport, SearchSpec, Searcher};
use nmcs_games::{NeedleLadder, SameGame, SumGame, TspGame, TspInstance};

/// The stock games `--game` can name. Each is fully determined by the
/// name plus the spec's seed, so (spec, game name) is a complete
/// experiment description.
pub const STOCK_GAMES: &[&str] = &[
    "samegame",
    "samegame-small",
    "morpion",
    "morpion-c3",
    "tsp",
    "sum",
    "needle",
];

/// Runs `spec` on the stock game named `game` (seeded games derive from
/// the spec's seed). Returns the rendered table; errors on an unknown
/// game name.
pub fn run_spec_on(spec: &SearchSpec, game: &str) -> Result<Table, String> {
    let report = match game {
        "samegame" => erase(spec.search(&SameGame::random(10, 10, 4, spec.seed), None)),
        "samegame-small" => erase(spec.search(&SameGame::random(6, 6, 3, spec.seed), None)),
        "morpion" => erase(spec.search(&standard_5d(), None)),
        "morpion-c3" => erase(spec.search(&cross_board(Variant::Disjoint, 3), None)),
        "tsp" => erase(spec.search(
            &TspGame::new(TspInstance::random(12, spec.seed), None),
            None,
        )),
        "sum" => erase(spec.search(&SumGame::random(6, 4, spec.seed), None)),
        "needle" => erase(spec.search(&NeedleLadder::new(10), None)),
        other => {
            return Err(format!(
                "unknown game '{other}' (expected one of {STOCK_GAMES:?})"
            ))
        }
    };
    Ok(spec_table(spec, game, &report))
}

/// Drops the move type (every stock game has a different one; the table
/// only needs scalars).
fn erase<M>(report: SearchReport<M>) -> SearchReport<()> {
    SearchReport {
        score: report.score,
        sequence: report.sequence.iter().map(|_| ()).collect(),
        stats: report.stats,
        elapsed: report.elapsed,
        client_jobs: report.client_jobs,
        interrupted: report.interrupted,
        seed: report.seed,
    }
}

fn spec_table(spec: &SearchSpec, game: &str, report: &SearchReport<()>) -> Table {
    let mut table = Table::new(
        "Spec replay",
        &[
            "game",
            "algorithm",
            "seed",
            "score",
            "moves",
            "playouts",
            "work units",
            "client jobs",
            "elapsed (ms)",
            "interrupted",
        ],
    );
    table.row(&[
        game.to_string(),
        spec.algorithm.label().to_string(),
        spec.seed.to_string(),
        report.score.to_string(),
        report.sequence.len().to_string(),
        report.stats.playouts.to_string(),
        report.total_work().to_string(),
        report.client_jobs.to_string(),
        format!("{:.1}", report.elapsed.as_secs_f64() * 1e3),
        report
            .interrupted
            .map_or_else(|| "-".to_string(), |i| format!("{i:?}")),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_a_pasted_json_spec() {
        let json = r#"{"algorithm":{"kind":"nested","level":1},"budget":{},"seed":7}"#;
        let spec: SearchSpec = serde_json::from_str(json).expect("spec parses");
        let table = run_spec_on(&spec, "sum").expect("stock game");
        let rendered = table.render();
        assert!(rendered.contains("nested"));
        assert!(rendered.contains("sum"));
    }

    #[test]
    fn budgeted_spec_reports_its_interruption() {
        let spec = SearchSpec::nested(2).seed(1).max_playouts(5).build();
        let table = run_spec_on(&spec, "samegame-small").expect("stock game");
        assert!(table.render().contains("PlayoutBudget"));
    }

    #[test]
    fn unknown_game_is_a_clear_error() {
        let spec = SearchSpec::sample().build();
        let err = run_spec_on(&spec, "chess").unwrap_err();
        assert!(err.contains("unknown game"));
    }
}
