//! Experiment runners — one per table/figure of the paper, plus the
//! ablations listed in DESIGN.md §4.
//!
//! Two scales:
//!
//! * **Paper scale** (default): synthetic traces whose structure
//!   (branching, game length) and client-job cost profile are *measured*
//!   on the real Morpion 5D domain at affordable levels, then anchored to
//!   the paper's single-client times. Regenerates the level-3/level-4
//!   64-client tables in seconds.
//! * **Real scale**: records actual level-2 parallel searches on the
//!   standard cross (client jobs are real playouts) and replays them in
//!   the simulator with this machine's measured `ns_per_unit`. Slower to
//!   generate, entirely measurement-driven.

use crate::calibrate::{calibrate, Calibration};
use crate::paper;
use crate::report::{fmt_speedup, persist, Table};
use crate::searches::nested_once;
use des_sim::{format_time, ClusterSpec, Time, SECOND};
use morpion::{render_default, standard_5d, GameRecord};
use nmcs_core::rng::derive_seed;
use nmcs_core::{sample, Game, NestedConfig, Rng};
use parallel_nmcs::trace::run_reference;
use parallel_nmcs::{simulate_trace, DispatchPolicy, RunMode, SearchTrace, TraceModel};
use serde::Serialize;
use std::path::PathBuf;

/// Domain-separation tag of the demand-profile sample game (arbitrary
/// odd constant, same scheme as `nmcs_core::seeds`).
const TAG_DEMAND_PROFILE: u64 = 0x6465_6d61_6e64_0001;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Calibrated synthetic workloads at the paper's scale (default).
    Paper,
    /// Real recorded level-2 traces on the standard cross.
    Real,
}

/// Shared context: calibration results and output directory.
pub struct Experiments {
    pub seed: u64,
    pub out_dir: PathBuf,
    pub cal: Calibration,
}

/// The client counts of Tables II–V.
pub const CLIENT_SWEEP: &[usize] = &[64, 32, 16, 8, 4, 1];

impl Experiments {
    /// Calibrates on construction (a few seconds of measurement).
    pub fn new(seed: u64, out_dir: PathBuf) -> Self {
        let cal = calibrate(seed);
        Self { seed, out_dir, cal }
    }

    // ------------------------------------------------------------------
    // Workload construction
    // ------------------------------------------------------------------

    /// Measures the client-job cost profile for a given client level:
    /// positions at increasing depths along a seeded random game, each
    /// evaluated with a `client_level` search, returning
    /// `(depth, work_units)` samples.
    pub fn measure_demand_profile(&self, client_level: u32, samples: usize) -> Vec<(u64, u64)> {
        let board = standard_5d();
        let mut rng = Rng::seeded(derive_seed(self.seed, &[TAG_DEMAND_PROFILE]));
        // A fixed random game provides the positions.
        let game = sample(&board, &mut rng);
        let total = game.sequence.len();
        let step = (total / samples.max(1)).max(1);
        let cfg = NestedConfig::paper();
        let mut out = Vec::new();
        let mut pos = board;
        for (depth, mv) in game.sequence.iter().enumerate() {
            if depth % step == 0 && depth + 2 < total {
                let r = nested_once(&pos, client_level, &cfg, &mut rng);
                out.push((depth as u64, r.stats.work_units.max(1)));
            }
            pos.play(mv);
        }
        out
    }

    /// Builds the paper-scale synthetic workload model for a given *root*
    /// level (3 or 4): structure constants from the Morpion domain,
    /// client-job demand profile measured at `level − 2`.
    pub fn paper_model(&self, root_level: u32) -> TraceModel {
        assert!(root_level == 3 || root_level == 4);
        let client_level = root_level - 2;
        // Level-1 profiles are cheap to measure densely; level-2 sparsely.
        let n_samples = if client_level == 1 { 10 } else { 4 };
        let profile = self.measure_demand_profile(client_level, n_samples);
        let game_len = 72; // level-3/4 5D games reach the low 70s–80
        let (demand0, gamma) = fit_power(&profile, game_len as f64);
        TraceModel {
            game_len,
            branching0: 28.0, // the standard cross's 28 first moves
            demand0,
            gamma,
            sigma: 0.35, // matches the run-to-run std devs the paper reports
        }
    }

    /// A synthetic paper-scale trace for the given root level and mode.
    pub fn paper_trace(&self, root_level: u32, mode: RunMode) -> SearchTrace {
        self.paper_model(root_level).synthesize(mode, self.seed)
    }

    /// A real recorded trace: level-2 parallel search on the standard
    /// cross (client jobs are actual playouts). FirstMove ≈ 2 s to
    /// record; FullGame ≈ 1–2 min.
    pub fn real_trace(&self, mode: RunMode) -> SearchTrace {
        let board = standard_5d();
        let (_, trace) = run_reference(&board, 2, self.seed, mode, None);
        trace
    }

    /// Cluster with ns_per_unit anchored so one speed-1.0 client matches
    /// `anchor_secs` for `trace` (the paper's single-client measurement).
    fn anchored_cluster(trace: &SearchTrace, anchor_secs: u64) -> f64 {
        (anchor_secs as f64 * SECOND as f64) / trace.total_work.max(1) as f64
    }

    // ------------------------------------------------------------------
    // Tables
    // ------------------------------------------------------------------

    /// Table I — sequential algorithm times. Measures levels 1–2 for real
    /// on this machine and reports the structural ratios next to the
    /// paper's level-3/4 values.
    pub fn table1(&self) -> Table {
        let board = standard_5d();
        let cfg = NestedConfig::paper();
        let mut t = Table::new(
            "Table I — sequential NMCS (measured levels 1-2; paper levels 3-4)",
            &[
                "level",
                "first move",
                "one rollout",
                "rollout/first",
                "source",
            ],
        );

        let mut prev_rollout: Option<f64> = None;
        for level in 1..=2u32 {
            // First move: the cost of evaluating every initial move with a
            // level-1 search below the root = step 1 of nested(level).
            let t0 = std::time::Instant::now();
            let mut moves = Vec::new();
            board.legal_moves(&mut moves);
            let mut rng = Rng::seeded(self.seed);
            for mv in &moves {
                let mut child = board.clone();
                child.play(mv);
                let _ = nested_once(&child, level - 1, &cfg, &mut rng);
            }
            let first = t0.elapsed().as_secs_f64();

            let t1 = std::time::Instant::now();
            let _ = nested_once(&board, level, &cfg, &mut rng);
            let rollout = t1.elapsed().as_secs_f64();

            if let Some(prev) = prev_rollout {
                let ratio = rollout / prev;
                t.row(&[
                    format!("{level} vs {}", level - 1),
                    String::new(),
                    format!("x{ratio:.0} vs previous level"),
                    String::new(),
                    "measured".into(),
                ]);
            }
            prev_rollout = Some(rollout);
            let fmt_secs = |v: f64| {
                if v < 1.0 {
                    format!("{:.1}ms", v * 1e3)
                } else {
                    format!("{v:.2}s")
                }
            };
            t.row(&[
                level.to_string(),
                fmt_secs(first),
                fmt_secs(rollout),
                format!("{:.1}", rollout / first.max(1e-9)),
                "measured".into(),
            ]);
        }
        t.row(&[
            "3".into(),
            format_time(paper::T1_L3_FIRST_MOVE * SECOND),
            format_time(paper::T1_L3_ROLLOUT * SECOND),
            format!(
                "{:.1}",
                paper::T1_L3_ROLLOUT as f64 / paper::T1_L3_FIRST_MOVE as f64
            ),
            "paper".into(),
        ]);
        t.row(&[
            "4".into(),
            format_time(paper::T1_L4_FIRST_MOVE * SECOND),
            format_time(paper::T1_L4_ROLLOUT * SECOND),
            format!(
                "{:.1}",
                paper::T1_L4_ROLLOUT as f64 / paper::T1_L4_FIRST_MOVE as f64
            ),
            "paper".into(),
        ]);
        t.row(&[
            "4 vs 3".into(),
            format!(
                "x{:.0}",
                paper::T1_L4_FIRST_MOVE as f64 / paper::T1_L3_FIRST_MOVE as f64
            ),
            String::new(),
            String::new(),
            "paper".into(),
        ]);
        let _ = persist(&self.out_dir, "table1", &t);
        t
    }

    /// Tables II–V — a speedup sweep for one policy and mode at one
    /// level, with the paper's column alongside.
    #[allow(clippy::too_many_arguments)]
    pub fn speedup_table(
        &self,
        title: &str,
        trace: &SearchTrace,
        policy: DispatchPolicy,
        anchor_secs: u64,
        paper_col: &[(usize, u64)],
        persist_as: &str,
    ) -> Table {
        let nspu = Self::anchored_cluster(trace, anchor_secs);
        let mut t = Table::new(
            title,
            &[
                "clients",
                "time",
                "speedup",
                "paper time",
                "paper speedup",
                "mean util",
            ],
        );
        let paper_t1 = paper::paper_time(paper_col, 1);

        // The paper's 64-client row mixes 1.86 and 2.33 GHz machines; the
        // 32-and-below rows use the slow machines only.
        let mut single_ref: Option<Time> = None;
        let mut raw: Vec<(usize, Time, f64)> = Vec::new();
        for &n in CLIENT_SWEEP {
            let cluster = if n == 64 {
                ClusterSpec::paper_64().with_ns_per_unit(nspu)
            } else {
                ClusterSpec::homogeneous(n).with_ns_per_unit(nspu)
            };
            let out = simulate_trace(trace, &cluster, policy);
            if n == 1 {
                single_ref = Some(out.makespan);
            }
            raw.push((n, out.makespan, out.stats.mean_utilisation));
        }
        let single = single_ref.expect("sweep includes 1 client");
        for (n, makespan, util) in &raw {
            let speedup = single as f64 / *makespan as f64;
            let ptime = paper::paper_time(paper_col, *n)
                .map(|pt| format_time(pt * SECOND))
                .unwrap_or_else(|| "—".into());
            let pspeed = match (paper::paper_time(paper_col, *n), paper_t1) {
                (Some(pt), Some(p1)) => fmt_speedup(p1 as f64 / pt as f64),
                _ => "—".into(),
            };
            t.row(&[
                n.to_string(),
                format_time(*makespan),
                fmt_speedup(speedup),
                ptime,
                pspeed,
                format!("{:.0}%", util * 100.0),
            ]);
        }
        let _ = persist(&self.out_dir, persist_as, &t);
        t
    }

    /// Convenience: run one of Tables II–V at paper scale.
    pub fn paper_sweep(
        &self,
        table_no: u32,
        policy: DispatchPolicy,
        mode: RunMode,
        level: u32,
    ) -> Table {
        let trace = self.paper_trace(level, mode);
        let (anchor, paper_col): (u64, &[(usize, u64)]) = match (table_no, level) {
            (2, 3) => (paper::T2_RR_FIRST_L3[5].1, paper::T2_RR_FIRST_L3),
            (2, 4) => (paper::T2_RR_FIRST_L4[3].1, paper::T2_RR_FIRST_L4),
            (3, 3) => (paper::T3_RR_ROLLOUT_L3[5].1, paper::T3_RR_ROLLOUT_L3),
            (3, 4) => (paper::T2_RR_FIRST_L4[3].1 * 9, paper::T3_RR_ROLLOUT_L4),
            (4, 3) => (paper::T4_LM_FIRST_L3[5].1, paper::T4_LM_FIRST_L3),
            (4, 4) => (paper::T4_LM_FIRST_L4[3].1, paper::T4_LM_FIRST_L4),
            (5, 3) => (paper::T5_LM_ROLLOUT_L3[5].1, paper::T5_LM_ROLLOUT_L3),
            (5, 4) => (paper::T4_LM_FIRST_L4[3].1 * 9, paper::T5_LM_ROLLOUT_L4),
            _ => panic!("no sweep table {table_no} level {level}"),
        };
        let mode_name = match mode {
            RunMode::FirstMove => "first move",
            RunMode::FullGame => "rollout",
        };
        self.speedup_table(
            &format!(
                "Table {} — {} {} times, level {} (paper scale)",
                ["", "", "II", "III", "IV", "V"][table_no as usize],
                policy.short_name(),
                mode_name,
                level
            ),
            &trace,
            policy,
            anchor,
            paper_col,
            &format!("table{table_no}_l{level}"),
        )
    }

    /// Table VI — heterogeneous repartitions, LM vs RR.
    pub fn table6(&self, level: u32) -> Table {
        let trace = self.paper_trace(level, RunMode::FirstMove);
        let anchor = match level {
            3 => paper::T2_RR_FIRST_L3[5].1,
            _ => paper::T2_RR_FIRST_L4[3].1,
        };
        let nspu = Self::anchored_cluster(&trace, anchor);
        let mut t = Table::new(
            format!("Table VI — heterogeneous first-move times, level {level} (paper scale)"),
            &["repartition", "alg", "time", "paper time", "LM gain"],
        );
        for (name, cluster) in [
            (
                "16x4+16x2",
                ClusterSpec::hetero_16x4_16x2().with_ns_per_unit(nspu),
            ),
            (
                "8x4+8x2",
                ClusterSpec::hetero_8x4_8x2().with_ns_per_unit(nspu),
            ),
        ] {
            let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute);
            let rr = simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin);
            let gain = rr.makespan as f64 / lm.makespan as f64;
            for (alg, out) in [("LM", &lm), ("RR", &rr)] {
                let ptime = paper::T6
                    .iter()
                    .find(|r| r.0 == name && r.1 == alg && r.2 == level)
                    .map(|r| format_time(r.3 * SECOND))
                    .unwrap_or_else(|| "—".into());
                t.row(&[
                    name.into(),
                    alg.into(),
                    format_time(out.makespan),
                    ptime,
                    if alg == "LM" {
                        format!("{gain:.2}x")
                    } else {
                        String::new()
                    },
                ]);
            }
        }
        let _ = persist(&self.out_dir, &format!("table6_l{level}"), &t);
        t
    }

    /// Real-scale variant of the sweep tables: level-2 recorded traces,
    /// replayed at this machine's measured speed.
    ///
    /// Level-2 client jobs are single playouts (≈20 µs) — far below any
    /// network latency, which is precisely why the paper only distributes
    /// levels 3+. The sweep therefore uses zero latency to isolate the
    /// compute scaling; the latency ablation (A2) quantifies the
    /// granularity effect separately.
    pub fn real_sweep(&self, policy: DispatchPolicy, mode: RunMode) -> Table {
        let trace = self.real_trace(mode);
        let nspu = self.cal.ns_per_unit;
        let mut t = Table::new(
            format!(
                "Real-scale sweep — {} {:?}, level 2 on the standard cross \
                 (measured trace, zero latency)",
                policy.short_name(),
                mode
            ),
            &["clients", "virtual time", "speedup", "mean util"],
        );
        let outs: Vec<(usize, Time, f64)> = CLIENT_SWEEP
            .iter()
            .map(|&n| {
                let cluster = ClusterSpec::homogeneous(n)
                    .with_ns_per_unit(nspu)
                    .with_latency(0);
                let out = simulate_trace(&trace, &cluster, policy);
                (n, out.makespan, out.stats.mean_utilisation)
            })
            .collect();
        let single = outs
            .iter()
            .find(|(n, _, _)| *n == 1)
            .map(|(_, m, _)| *m)
            .expect("sweep includes 1 client");
        for (n, makespan, util) in &outs {
            t.row(&[
                n.to_string(),
                format_time(*makespan),
                fmt_speedup(single as f64 / *makespan as f64),
                format!("{:.0}%", util * 100.0),
            ]);
        }
        let _ = persist(
            &self.out_dir,
            &format!("real_sweep_{}_{:?}", policy.short_name(), mode),
            &t,
        );
        t
    }

    // ------------------------------------------------------------------
    // Figure 1 and ablations
    // ------------------------------------------------------------------

    /// Figure 1 — runs a real level-2 search on the standard 5D cross,
    /// verifies the resulting record, renders the grid, and persists the
    /// record JSON.
    pub fn figure1(&self) -> (String, usize) {
        let board = standard_5d();
        let cfg = NestedConfig::paper();
        let mut rng = Rng::seeded(self.seed);
        let result = nested_once(&board, 2, &cfg, &mut rng);
        let mut replay = board.clone();
        for mv in &result.sequence {
            replay.play(mv);
        }
        let record = GameRecord::from_board(&replay, format!("level-2 NMCS, seed {}", self.seed));
        let verified = record.verify().expect("search output must verify");
        assert_eq!(verified as i64, result.score);
        let _ = persist(&self.out_dir, "figure1_record", &record);
        let art = format!(
            "Figure 1 analogue — {} moves found by level-2 NMCS (seed {}).\n\
             Paper milestones: human 68, simulated annealing 79, paper's level-4 record 80.\n\n{}",
            verified,
            self.seed,
            render_default(&replay)
        );
        (art, verified)
    }

    /// Ablation A1 — Last-Minute job-ordering policies on a heterogeneous
    /// cluster (paper's longest-first vs FIFO vs shortest-first vs RR).
    pub fn ablation_order(&self) -> Table {
        let trace = self.paper_trace(3, RunMode::FirstMove);
        let nspu = Self::anchored_cluster(&trace, paper::T2_RR_FIRST_L3[5].1);
        let cluster = ClusterSpec::hetero_16x4_16x2().with_ns_per_unit(nspu);
        let mut t = Table::new(
            "Ablation A1 — dispatcher job ordering (heterogeneous 16x4+16x2, level 3)",
            &["policy", "time", "vs LM"],
        );
        let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute).makespan;
        for policy in [
            DispatchPolicy::LastMinute,
            DispatchPolicy::LastMinuteFifo,
            DispatchPolicy::LastMinuteShortest,
            DispatchPolicy::RoundRobin,
        ] {
            let out = simulate_trace(&trace, &cluster, policy);
            t.row(&[
                policy.to_string(),
                format_time(out.makespan),
                format!("{:+.1}%", (out.makespan as f64 / lm as f64 - 1.0) * 100.0),
            ]);
        }
        let _ = persist(&self.out_dir, "ablation_order", &t);
        t
    }

    /// Ablation A2 — sensitivity to message latency at 64 clients.
    pub fn ablation_latency(&self) -> Table {
        let trace = self.paper_trace(3, RunMode::FirstMove);
        let nspu = Self::anchored_cluster(&trace, paper::T2_RR_FIRST_L3[5].1);
        let mut t = Table::new(
            "Ablation A2 — latency sensitivity (64 clients, LM, level 3)",
            &["one-way latency", "time", "speedup vs 1 client"],
        );
        for lat_us in [0u64, 100, 1_000, 10_000, 100_000] {
            let lat = lat_us * 1_000;
            let c64 = ClusterSpec::paper_64()
                .with_ns_per_unit(nspu)
                .with_latency(lat);
            let c1 = ClusterSpec::homogeneous(1)
                .with_ns_per_unit(nspu)
                .with_latency(lat);
            let out = simulate_trace(&trace, &c64, DispatchPolicy::LastMinute);
            let single = simulate_trace(&trace, &c1, DispatchPolicy::LastMinute);
            t.row(&[
                format!("{lat_us}us"),
                format_time(out.makespan),
                fmt_speedup(single.makespan as f64 / out.makespan as f64),
            ]);
        }
        let _ = persist(&self.out_dir, "ablation_latency", &t);
        t
    }

    /// Ablation A4 — the memorised best sequence of the sequential NMCS
    /// (paper §III) vs the greedy per-step argmax (parallel pseudocode).
    pub fn ablation_memory(&self, trials: u64) -> Table {
        let board = standard_5d();
        let mut t = Table::new(
            "Ablation A4 — memorised sequence vs greedy argmax (Morpion 5D)",
            &["level", "memorised mean", "greedy mean", "memory gain"],
        );
        for level in [1u32, 2] {
            let runs = if level == 1 { trials } else { trials.min(3) };
            let mut mem_sum = 0.0;
            let mut greedy_sum = 0.0;
            for s in 0..runs {
                let mem = nested_once(
                    &board,
                    level,
                    &NestedConfig::paper(),
                    &mut Rng::seeded(self.seed + s),
                );
                let gre = nested_once(
                    &board,
                    level,
                    &NestedConfig::greedy(),
                    &mut Rng::seeded(self.seed + s),
                );
                mem_sum += mem.score as f64;
                greedy_sum += gre.score as f64;
            }
            let mem = mem_sum / runs as f64;
            let gre = greedy_sum / runs as f64;
            t.row(&[
                level.to_string(),
                format!("{mem:.1}"),
                format!("{gre:.1}"),
                format!("{:+.1}", mem - gre),
            ]);
        }
        let _ = persist(&self.out_dir, "ablation_memory", &t);
        t
    }

    /// Ablation A5 — NMCS vs the baselines at matched playout budgets.
    pub fn ablation_baselines(&self) -> Table {
        use crate::searches::{annealing_once, flat_mc_once, iterated_sampling_once, uct_once};
        use nmcs_core::{AnnealingConfig, UctConfig};
        let board = standard_5d();
        let mut rng = Rng::seeded(self.seed);
        // Budget: the playout count of one level-1 NMCS.
        let l1 = nested_once(&board, 1, &NestedConfig::paper(), &mut rng);
        let budget = l1.stats.playouts as usize;
        let mut t = Table::new(
            "Ablation A5 — NMCS vs baselines at matched playout budget (Morpion 5D)",
            &["algorithm", "score", "playouts"],
        );
        let flat = flat_mc_once(&board, budget, &mut Rng::seeded(self.seed + 1));
        let iter = iterated_sampling_once(&board, 1, &mut Rng::seeded(self.seed + 2));
        let sa = annealing_once(
            &board,
            &AnnealingConfig {
                iterations: budget,
                ..Default::default()
            },
            &mut Rng::seeded(self.seed + 3),
        );
        let mcts = uct_once(
            &board,
            &UctConfig {
                iterations: budget,
                ..Default::default()
            },
            &mut Rng::seeded(self.seed + 4),
        );
        t.row(&[
            "flat Monte-Carlo".into(),
            flat.score.to_string(),
            flat.stats.playouts.to_string(),
        ]);
        t.row(&[
            "iterated sampling".into(),
            iter.score.to_string(),
            iter.stats.playouts.to_string(),
        ]);
        t.row(&[
            "simulated annealing".into(),
            sa.score.to_string(),
            sa.stats.playouts.to_string(),
        ]);
        t.row(&[
            "UCT (single-player)".into(),
            mcts.score.to_string(),
            mcts.stats.playouts.to_string(),
        ]);
        t.row(&[
            "NMCS level 1".into(),
            l1.score.to_string(),
            l1.stats.playouts.to_string(),
        ]);
        let _ = persist(&self.out_dir, "ablation_baselines", &t);
        t
    }
}

impl Experiments {
    /// Extension X1 — NRPA (Rosin 2011) vs NMCS at matched playout
    /// budgets on Morpion 5D: the successor algorithm the paper's record
    /// eventually lost to.
    pub fn ablation_nrpa(&self) -> Table {
        use crate::searches::nrpa_once;
        use nmcs_core::NrpaConfig;
        let board = standard_5d();
        let mut t = Table::new(
            "Extension X1 — NRPA vs NMCS (Morpion 5D, matched playouts)",
            &["algorithm", "score", "playouts"],
        );
        let l1 = nested_once(
            &board,
            1,
            &NestedConfig::paper(),
            &mut Rng::seeded(self.seed),
        );
        // NRPA(2) with iterations^2 ≈ l1 playout count.
        let iters = (l1.stats.playouts as f64).sqrt().ceil() as usize;
        let cfg = NrpaConfig {
            iterations: iters,
            alpha: 1.0,
        };
        let r2 = nrpa_once(&board, 2, &cfg, &mut Rng::seeded(self.seed));
        let cfg3 = NrpaConfig {
            iterations: 10,
            alpha: 1.0,
        };
        let r3 = nrpa_once(&board, 3, &cfg3, &mut Rng::seeded(self.seed));
        t.row(&[
            "NMCS level 1".into(),
            l1.score.to_string(),
            l1.stats.playouts.to_string(),
        ]);
        t.row(&[
            format!("NRPA level 2 (N={iters})"),
            r2.score.to_string(),
            r2.stats.playouts.to_string(),
        ]);
        t.row(&[
            "NRPA level 3 (N=10)".into(),
            r3.score.to_string(),
            r3.stats.playouts.to_string(),
        ]);
        let _ = persist(&self.out_dir, "ablation_nrpa", &t);
        t
    }
}

/// Least-squares power-law fit `demand ≈ demand0 · ((T − m)/T)^gamma` in
/// log-log space.
pub fn fit_power(profile: &[(u64, u64)], game_len: f64) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = profile
        .iter()
        .filter(|(m, _)| (*m as f64) < game_len - 1.0)
        .map(|(m, d)| {
            (
                (((game_len - *m as f64) / game_len).max(1e-9)).ln(),
                (*d as f64).max(1.0).ln(),
            )
        })
        .collect();
    if pts.len() < 2 {
        let mean =
            profile.iter().map(|(_, d)| *d as f64).sum::<f64>() / profile.len().max(1) as f64;
        return (mean.max(1.0), 0.0);
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return ((sy / n).exp(), 0.0);
    }
    let gamma = (n * sxy - sx * sy) / denom;
    let intercept = (sy - gamma * sx) / n;
    (intercept.exp().max(1.0), gamma.clamp(0.0, 8.0))
}

/// Serializable summary of a whole paper-scale run (used by tests and the
/// EXPERIMENTS.md generator).
#[derive(Debug, Serialize)]
pub struct ShapeSummary {
    pub speedup_64_rr_first_l3: f64,
    pub speedup_64_lm_first_l3: f64,
    pub lm_gain_hetero_l4: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Experiments {
        Experiments::new(2009, std::env::temp_dir().join("pnmcs_experiments_test"))
    }

    #[test]
    fn fit_power_recovers_known_exponent() {
        let t = 50.0;
        let profile: Vec<(u64, u64)> = (0..40)
            .map(|m| {
                let frac = (t - m as f64) / t;
                (m, (1000.0 * frac.powf(2.5)).round() as u64)
            })
            .collect();
        let (d0, g) = fit_power(&profile, t);
        assert!((g - 2.5).abs() < 0.1, "gamma {g}");
        assert!((d0 - 1000.0).abs() / 1000.0 < 0.1, "demand0 {d0}");
    }

    #[test]
    fn fit_power_degenerate_inputs() {
        let (d0, g) = fit_power(&[(0, 500)], 10.0);
        assert_eq!(g, 0.0);
        assert!((d0 - 500.0).abs() < 1e-9);
        let (d0b, _) = fit_power(&[], 10.0);
        assert!(d0b >= 1.0);
    }

    #[test]
    #[ignore = "several seconds of measurement; run with --ignored"]
    fn paper_scale_shape_holds() {
        let e = ctx();
        // Level-3 first-move: 64-client speedup should land in the
        // paper's band (they report ~56 with the frequency correction
        // noting ~51 against a slow client).
        let trace = e.paper_trace(3, RunMode::FirstMove);
        let nspu = Experiments::anchored_cluster(&trace, paper::T2_RR_FIRST_L3[5].1);
        let c64 = ClusterSpec::paper_64().with_ns_per_unit(nspu);
        let c1 = ClusterSpec::homogeneous(1).with_ns_per_unit(nspu);
        let t64 = simulate_trace(&trace, &c64, DispatchPolicy::RoundRobin).makespan;
        let t1 = simulate_trace(&trace, &c1, DispatchPolicy::RoundRobin).makespan;
        let speedup = t1 as f64 / t64 as f64;
        assert!(
            (30.0..67.0).contains(&speedup),
            "64-client speedup {speedup} far from the paper's ~56"
        );
    }
}
