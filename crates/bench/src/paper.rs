//! The paper's published numbers (Tables I–VI), used as reference columns
//! in the regenerated tables and by the shape-checking tests.
//!
//! All times in seconds. Parenthesised one-shot measurements in the paper
//! are included as plain values.

/// Table I — sequential algorithm.
pub const T1_L3_FIRST_MOVE: u64 = 8 * 60 + 3; // 8m03s
pub const T1_L3_ROLLOUT: u64 = 3600 + 7 * 60 + 33; // 1h07m33s
pub const T1_L4_FIRST_MOVE: u64 = 28 * 3600 + 6; // 28h00m06s
pub const T1_L4_ROLLOUT: u64 = 9 * 86_400 + 18 * 3600 + 58 * 60; // 09d18h58m

/// Tables II–V — (clients, seconds); `None` entries were not run ("—").
pub const T2_RR_FIRST_L3: &[(usize, u64)] =
    &[(64, 10), (32, 20), (16, 37), (8, 71), (4, 142), (1, 547)];
pub const T2_RR_FIRST_L4: &[(usize, u64)] = &[
    (64, 33 * 60 + 11),
    (32, 3600 + 4 * 60 + 44),
    (16, 2 * 3600 + 10 * 60),
    (1, 29 * 3600 + 56 * 60 + 14),
];
pub const T3_RR_ROLLOUT_L3: &[(usize, u64)] = &[
    (64, 112),
    (32, 188),
    (16, 322),
    (8, 618),
    (4, 21 * 60 + 41),
    (1, 3600 + 26 * 60 + 28),
];
pub const T3_RR_ROLLOUT_L4: &[(usize, u64)] =
    &[(64, 5 * 3600 + 9 * 60 + 16), (32, 6 * 3600 + 31 * 60)];
pub const T4_LM_FIRST_L3: &[(usize, u64)] = &[
    (64, 9),
    (32, 19),
    (16, 37),
    (8, 72),
    (4, 143),
    (1, 9 * 60 + 30),
];
pub const T4_LM_FIRST_L4: &[(usize, u64)] = &[
    (64, 27 * 60 + 20),
    (32, 59 * 60 + 44),
    (16, 2 * 3600 + 5 * 60 + 17),
    (1, 33 * 3600 + 6 * 60 + 57),
];
pub const T5_LM_ROLLOUT_L3: &[(usize, u64)] = &[
    (64, 92),
    (32, 163),
    (16, 5 * 60 + 35),
    (8, 11 * 60 + 33),
    (4, 19 * 60 + 51),
    (1, 3600 + 31 * 60 + 40),
];
pub const T5_LM_ROLLOUT_L4: &[(usize, u64)] =
    &[(64, 4 * 3600 + 10 * 60 + 9), (32, 6 * 3600 + 58 * 60 + 21)];

/// Table VI — ((repartition, policy, level), seconds).
pub const T6: &[(&str, &str, u32, u64)] = &[
    ("16x4+16x2", "LM", 3, 14),
    ("16x4+16x2", "RR", 3, 16),
    ("8x4+8x2", "LM", 3, 18),
    ("8x4+8x2", "RR", 3, 25),
    ("16x4+16x2", "LM", 4, 28 * 60 + 37),
    ("16x4+16x2", "RR", 4, 45 * 60 + 17),
    ("8x4+8x2", "LM", 4, 58 * 60 + 21),
    ("8x4+8x2", "RR", 4, 3600 + 24 * 60 + 11),
];

/// Headline speedups quoted in the abstract / §V.
pub const SPEEDUP_64_CLIENTS_FIRST_MOVE: f64 = 56.0;
pub const SPEEDUP_64_CLIENTS_ROLLOUT_RR: f64 = 44.0;
pub const SPEEDUP_32_CLIENTS_L3: f64 = 29.8;

/// Looks up a paper time for a client count in one of the sweep tables.
pub fn paper_time(table: &[(usize, u64)], clients: usize) -> Option<u64> {
    table.iter().find(|(c, _)| *c == clients).map(|(_, t)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_level_ratio_is_about_207() {
        // §V: "level 4 takes approximately 207 times more time than
        // level 3" (first move).
        let ratio = T1_L4_FIRST_MOVE as f64 / T1_L3_FIRST_MOVE as f64;
        assert!((200.0..215.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn paper_rollout_is_about_9x_first_move() {
        let ratio = T1_L3_ROLLOUT as f64 / T1_L3_FIRST_MOVE as f64;
        assert!((8.0..10.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn paper_speedup_at_64_clients_is_about_56() {
        let t1 = paper_time(T2_RR_FIRST_L3, 1).unwrap() as f64;
        let t64 = paper_time(T2_RR_FIRST_L3, 64).unwrap() as f64;
        let s = t1 / t64;
        assert!((52.0..58.0).contains(&s), "{s}");
    }

    #[test]
    fn paper_lm_beats_rr_on_heterogeneous_level_4() {
        let lm: Vec<u64> = T6
            .iter()
            .filter(|r| r.1 == "LM" && r.2 == 4)
            .map(|r| r.3)
            .collect();
        let rr: Vec<u64> = T6
            .iter()
            .filter(|r| r.1 == "RR" && r.2 == 4)
            .map(|r| r.3)
            .collect();
        for (l, r) in lm.iter().zip(rr.iter()) {
            assert!(l < r, "LM {l} vs RR {r}");
        }
    }

    #[test]
    fn lookup_finds_existing_and_rejects_missing() {
        assert_eq!(paper_time(T2_RR_FIRST_L3, 64), Some(10));
        assert_eq!(paper_time(T2_RR_FIRST_L4, 8), None);
    }
}
