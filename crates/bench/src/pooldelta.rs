//! Executor-pool counter deltas around one measured run.
//!
//! The shared [`ExecutorPool`] registry counts parks, steals, and
//! wakeups for the whole process lifetime; a benchmark row wants only
//! the slice attributable to *its* run. [`PoolProbe`] captures the
//! counters before the run and differences them after, so the tree and
//! leaf sweeps can print steals/parks/wakeups **per second of that
//! row** without resetting (and thereby racing on) the global registry.

use nmcs_core::ExecutorPool;

/// Counter deltas attributable to one measured run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolDelta {
    /// Deque steals during the run.
    pub steals: u64,
    /// Worker parks during the run.
    pub parks: u64,
    /// Wakeup-generation bumps during the run.
    pub wakeups: u64,
}

impl PoolDelta {
    /// Steals per second over a run of `secs` seconds.
    pub fn steals_per_sec(&self, secs: f64) -> f64 {
        self.steals as f64 / secs.max(1e-9)
    }

    /// Parks per second over a run of `secs` seconds.
    pub fn parks_per_sec(&self, secs: f64) -> f64 {
        self.parks as f64 / secs.max(1e-9)
    }

    /// Wakeups per second over a run of `secs` seconds.
    pub fn wakeups_per_sec(&self, secs: f64) -> f64 {
        self.wakeups as f64 / secs.max(1e-9)
    }
}

/// Snapshot of the shared pool's counters at the start of a run.
#[derive(Debug, Clone, Copy)]
pub struct PoolProbe {
    steals: u64,
    parks: u64,
    wakeups: u64,
}

impl PoolProbe {
    /// Captures the shared pool's current counters.
    pub fn start() -> Self {
        let m = ExecutorPool::shared().metrics();
        PoolProbe {
            steals: m.steals.get(),
            parks: m.parks.get(),
            wakeups: m.wakeups.get(),
        }
    }

    /// Differences the counters against the captured baseline.
    /// Saturating, so a probe misuse can never underflow.
    pub fn finish(self) -> PoolDelta {
        let m = ExecutorPool::shared().metrics();
        PoolDelta {
            steals: m.steals.get().saturating_sub(self.steals),
            parks: m.parks.get().saturating_sub(self.parks),
            wakeups: m.wakeups.get().saturating_sub(self.wakeups),
        }
    }
}
