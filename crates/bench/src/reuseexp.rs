//! Warm-tree reuse experiment (`tables --reuse`).
//!
//! Steps one game to completion twice per seed under the **same**
//! per-step playout budget: once with `tree_reuse` on (the session
//! keeps its re-rooted UCT tree and transposition table between
//! steps) and once off (every step searches cold, exactly the
//! pre-session behaviour). The only difference between the arms is the
//! knob, so the score gap is the measured value of carrying statistics
//! across decisions — the on-line policy-improvement argument, as a
//! number per domain.
//!
//! Domains mirror the tree-parallel sweep: a 6x6 SameGame (cheap
//! rollouts, one board per seed) and the reduced Morpion cross (fixed
//! board, expensive rollouts, seed varies only the search). Both arms
//! are width-1 UCT, so **every row is deterministic**: the recorded
//! spec JSON plus the domain name reproduce a row bit-for-bit by
//! stepping a fresh [`SearchSession`] to terminal (step `k` seeds
//! itself with `session_step_seed(spec.seed, k)` — nothing else is
//! needed).
//!
//! The sweep asserts the acceptance ordering itself — per domain, the
//! reuse-on **mean** score over the seed set must be at least the
//! reuse-off mean — so `tables --reuse` exits nonzero if the warm tree
//! ever stops paying for itself.

use crate::report::Table;
use morpion::{cross_board, Variant};
use nmcs_core::{CodedGame, SearchSession, SearchSpec};
use nmcs_games::SameGame;
use serde::Serialize;

/// One full game stepped to terminal: a (domain × seed × reuse) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ReuseRow {
    pub domain: String,
    pub reuse: bool,
    pub seed: u64,
    /// Final score of the completed game.
    pub score: i64,
    /// Steps taken (= moves committed; one commit per step).
    pub steps: usize,
    /// Total playouts across all steps (equal budget per step, so this
    /// differs between arms only through game length).
    pub playouts: u64,
    pub elapsed_ms: f64,
    /// Transposition-table hits across the whole game (0 cold).
    pub tt_hits: u64,
    /// Bytes the warm tree held after the final step (0 cold).
    pub bytes: usize,
    /// The exact per-step spec JSON that reproduces this row.
    pub spec: String,
}

fn step_to_terminal<G>(domain: &str, game: G, reuse: bool, seed: u64, playouts: u64) -> ReuseRow
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    let spec = SearchSpec::uct()
        .tree_reuse(reuse)
        .seed(seed)
        .max_playouts(playouts)
        .build();
    let spec_json = serde_json::to_string(&spec).expect("specs serialise");
    let started = nmcs_core::metrics::monotonic_now();
    let mut session = SearchSession::new(game, spec, None);
    let mut total_playouts = 0u64;
    while !session.is_done() {
        let report = session.step(None);
        total_playouts += report.stats.playouts;
        assert!(
            !report.sequence.is_empty(),
            "{domain} seed {seed}: non-terminal steps commit a move"
        );
    }
    let (tt_hits, _) = session.table_counters();
    ReuseRow {
        domain: domain.to_string(),
        reuse,
        seed,
        score: session.score(),
        steps: session.steps(),
        playouts: total_playouts,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        tt_hits,
        bytes: session.approx_bytes(),
        spec: spec_json,
    }
}

/// Per-domain mean scores of the two arms, from a sweep's rows.
pub fn reuse_means(rows: &[ReuseRow]) -> Vec<(String, f64, f64)> {
    let mut domains: Vec<String> = Vec::new();
    for r in rows {
        if !domains.contains(&r.domain) {
            domains.push(r.domain.clone());
        }
    }
    domains
        .into_iter()
        .map(|d| {
            let mean = |reuse: bool| {
                let scores: Vec<i64> = rows
                    .iter()
                    .filter(|r| r.domain == d && r.reuse == reuse)
                    .map(|r| r.score)
                    .collect();
                scores.iter().sum::<i64>() as f64 / scores.len().max(1) as f64
            };
            let (warm, cold) = (mean(true), mean(false));
            (d, warm, cold)
        })
        .collect()
}

/// Per-step playout budget and seed count of each domain, tuned to the
/// regime where reuse is measurable: the budget sits far below what a
/// from-scratch search of the position wants, so the carried tree is a
/// real head start. SameGame has score headroom at any budget; the
/// reduced Morpion cross saturates near its optimum, so it runs at a
/// starvation budget over a wider seed set to keep the comparison off
/// the ceiling.
const SAMEGAME_BUDGET: u64 = 256;
const SAMEGAME_SEEDS: u64 = 5;
const MORPION_BUDGET: u64 = 16;
const MORPION_SEEDS: u64 = 10;

/// Runs both arms over a seed window starting at `seed` on both domains
/// and asserts the acceptance ordering: per domain, mean(reuse on) ≥
/// mean(reuse off). Deterministic — both arms are width-1 UCT — so the
/// assertion cannot flake across machines, only across code changes.
pub fn reuse_sweep(seed: u64) -> Vec<ReuseRow> {
    let mut rows = Vec::new();
    for seed in seed..seed + SAMEGAME_SEEDS {
        for reuse in [true, false] {
            rows.push(step_to_terminal(
                "samegame-6x6",
                SameGame::random(6, 6, 3, seed),
                reuse,
                seed,
                SAMEGAME_BUDGET,
            ));
        }
    }
    for seed in seed..seed + MORPION_SEEDS {
        for reuse in [true, false] {
            rows.push(step_to_terminal(
                "morpion-5d-c3",
                cross_board(Variant::Disjoint, 3),
                reuse,
                seed,
                MORPION_BUDGET,
            ));
        }
    }
    for (domain, warm, cold) in reuse_means(&rows) {
        assert!(
            warm >= cold,
            "{domain}: reuse-on mean {warm:.1} fell below reuse-off mean {cold:.1} \
             — the warm tree must never lose at equal budget"
        );
    }
    rows
}

/// Renders the sweep plus a per-domain mean-comparison footer.
pub fn reuse_table(rows: &[ReuseRow]) -> Table {
    let mut table = Table::new(
        "Warm-tree reuse: equal per-step budget, reuse on vs off (width-1 UCT, deterministic)",
        &[
            "domain",
            "reuse",
            "seed",
            "score",
            "steps",
            "playouts",
            "elapsed (ms)",
            "tt hits",
            "tree bytes",
        ],
    );
    for r in rows {
        table.row(&[
            r.domain.clone(),
            if r.reuse { "on" } else { "off" }.to_string(),
            r.seed.to_string(),
            r.score.to_string(),
            r.steps.to_string(),
            r.playouts.to_string(),
            format!("{:.1}", r.elapsed_ms),
            r.tt_hits.to_string(),
            r.bytes.to_string(),
        ]);
    }
    for (domain, warm, cold) in reuse_means(rows) {
        table.row(&[
            format!("{domain} (mean)"),
            "on vs off".to_string(),
            "-".to_string(),
            format!("{warm:.1} vs {cold:.1}"),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests drive single cells, not `reuse_sweep` itself: its mean
    // ordering is a statement about the tuned seed windows, and paying
    // for them per test run belongs to `tables --reuse`, not `cargo
    // test`. The properties below hold cell-wise at any scale.
    fn cells(seed: u64) -> Vec<ReuseRow> {
        let mut rows = Vec::new();
        for reuse in [true, false] {
            rows.push(step_to_terminal(
                "samegame-6x6",
                SameGame::random(6, 6, 3, seed),
                reuse,
                seed,
                64,
            ));
            rows.push(step_to_terminal(
                "morpion-5d-c3",
                cross_board(Variant::Disjoint, 3),
                reuse,
                seed,
                8,
            ));
        }
        rows
    }

    #[test]
    fn reuse_rows_are_deterministic_and_record_replayable_specs() {
        let a = cells(3);
        let b = cells(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.score, x.steps, x.playouts),
                (y.score, y.steps, y.playouts),
                "width-1 sessions are run-to-run deterministic: {x:?}"
            );
            let spec: SearchSpec = serde_json::from_str(&x.spec).expect("row spec parses");
            assert_eq!(spec.seed, x.seed);
            // Warm rows carry tree state; cold rows provably keep none.
            if x.reuse {
                assert!(x.bytes > 0, "warm rows hold a tree: {x:?}");
            } else {
                assert_eq!(x.bytes, 0, "cold rows keep no state: {x:?}");
                assert_eq!(x.tt_hits, 0);
            }
        }
        let table = reuse_table(&a).render();
        assert!(table.contains("mean"), "{table}");
    }

    #[test]
    fn means_are_computed_per_domain_and_arm() {
        let rows = cells(5);
        let means = reuse_means(&rows);
        assert_eq!(means.len(), 2, "one mean pair per domain");
        for (domain, warm, cold) in means {
            let pick = |reuse: bool| {
                rows.iter()
                    .find(|r| r.domain == domain && r.reuse == reuse)
                    .map(|r| r.score as f64)
                    .unwrap()
            };
            assert_eq!(warm, pick(true), "{domain}");
            assert_eq!(cold, pick(false), "{domain}");
        }
    }
}
