//! # nmcs-bench — experiment harness
//!
//! Code that regenerates every table and figure of *"Parallel Nested
//! Monte-Carlo Search"* plus the ablations of DESIGN.md. See the `tables`
//! binary (`cargo run --release -p nmcs-bench --bin tables -- --help`) for
//! the command-line interface and `benches/` for the criterion
//! micro-benchmarks.

pub mod calibrate;
pub mod experiments;
pub mod leafexp;
pub mod paper;
pub mod pooldelta;
pub mod report;
pub mod reuseexp;
pub(crate) mod searches;
pub mod serveexp;
pub mod service;
pub mod spec_cli;
pub mod treeexp;

pub use calibrate::{calibrate, fit_model, Calibration};
pub use experiments::{fit_power, Experiments, Scale, CLIENT_SWEEP};
pub use leafexp::{leaf_sweep, leaf_table, LeafRow};
pub use pooldelta::{PoolDelta, PoolProbe};
pub use report::{persist, Table};
pub use reuseexp::{reuse_means, reuse_sweep, reuse_table, ReuseRow};
pub use serveexp::{serve_soak, session_churn, SoakOutcome};
pub use service::{
    dead_letter_table, measure_cell, slo_rows, slo_snapshot, slo_table, throughput_sweep,
    throughput_table, SloRow, ThroughputRow,
};
pub use spec_cli::{run_spec_on, STOCK_GAMES};
pub use treeexp::{tree_sweep, tree_table, TreeRow};
