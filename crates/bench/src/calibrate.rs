//! Calibration: anchors the simulator's virtual time to measured reality.
//!
//! Three measurements feed the experiment harness:
//!
//! 1. **`ns_per_unit`** — wall nanoseconds per abstract work unit on this
//!    machine, measured by timing instrumented searches. Converts trace
//!    demands into virtual service times for "real-scale" tables.
//! 2. **Per-level cost ratio** — how much a level-`k+1` search costs
//!    relative to level `k` (the paper reports ≈207× between levels 3 and
//!    4; we measure ≈190–210× between levels 1 and 2 on the same domain).
//!    Used to extrapolate the synthetic level-4 workload.
//! 3. **Trace-model fit** — game length, branching profile and demand
//!    decay measured from a real recorded trace, parameterising
//!    [`parallel_nmcs::TraceModel`] for paper-scale synthetic workloads.

use crate::searches::nested_once;
use morpion::standard_5d;
use nmcs_core::{sample, NestedConfig, Rng};
use parallel_nmcs::{SearchTrace, TraceModel};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Results of the on-machine calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// Wall nanoseconds per work unit (speed-1.0 client ≡ this machine).
    pub ns_per_unit: f64,
    /// Measured mean playout length on the standard 5D cross.
    pub mean_playout_len: f64,
    /// Measured mean level-1 search cost in work units.
    pub level1_work: u64,
    /// Measured level-2 / level-1 cost ratio (the per-level multiplier).
    pub level_ratio: f64,
}

/// Measures `ns_per_unit` and the level cost structure on Morpion 5D.
///
/// Costs a couple of seconds (dominated by one level-2 search).
pub fn calibrate(seed: u64) -> Calibration {
    let board = standard_5d();
    let mut rng = Rng::seeded(seed);

    // Playout throughput.
    let n = 2_000;
    let mut work = 0u64;
    let mut moves = 0u64;
    let t0 = Instant::now();
    for _ in 0..n {
        let r = sample(&board, &mut rng);
        work += r.stats.work_units;
        moves += r.stats.playout_moves;
    }
    let playout_ns = t0.elapsed().as_nanos() as f64;
    let ns_per_unit = playout_ns / work as f64;
    let mean_playout_len = moves as f64 / n as f64;

    // Level-1 and level-2 costs (work units are machine-independent).
    let cfg = NestedConfig::paper();
    let l1 = nested_once(&board, 1, &cfg, &mut rng);
    let l2 = nested_once(&board, 2, &cfg, &mut rng);
    let level_ratio = l2.stats.work_units as f64 / l1.stats.work_units as f64;

    Calibration {
        ns_per_unit,
        mean_playout_len,
        level1_work: l1.stats.work_units,
        level_ratio,
    }
}

/// Fits a [`TraceModel`] to a recorded real trace: game length from the
/// deepest job, branching from first-step widths, demand scale and decay
/// from a least-squares fit of `log demand` against `log((T − m)/T)`.
pub fn fit_model(trace: &SearchTrace, sigma: f64) -> TraceModel {
    let mut max_depth = 0u64;
    let mut samples: Vec<(u64, u64)> = Vec::new(); // (depth, demand)
    let mut first_widths: Vec<usize> = Vec::new();
    for step in &trace.steps {
        first_widths.push(step.medians.len());
        for m in &step.medians {
            for st in &m.steps {
                for j in &st.jobs {
                    max_depth = max_depth.max(j.moves_played);
                    samples.push((j.moves_played, j.demand));
                }
            }
        }
    }
    // The deepest job evaluates a position one move short of the end.
    let game_len = max_depth.max(4) as usize;
    let branching0 = first_widths.first().copied().unwrap_or(1) as f64;

    // Fit demand(m) = demand0 * ((T-m)/T)^gamma by linear regression in
    // log-log space, ignoring depths at the very end of the game.
    let t = game_len as f64;
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .filter(|(m, _)| (*m as f64) < t - 1.0)
        .map(|(m, d)| ((((t - *m as f64) / t).ln()), (*d as f64).max(1.0).ln()))
        .collect();
    let (demand0, gamma) = if pts.len() >= 2 {
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            (
                samples.iter().map(|(_, d)| *d).sum::<u64>() as f64 / samples.len() as f64,
                0.0,
            )
        } else {
            let gamma = (n * sxy - sx * sy) / denom;
            let intercept = (sy - gamma * sx) / n;
            (intercept.exp(), gamma)
        }
    } else {
        (1.0, 0.0)
    };

    TraceModel {
        game_len,
        branching0,
        demand0: demand0.max(1.0),
        gamma: gamma.clamp(0.0, 8.0),
        sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_games::SumGame;
    use parallel_nmcs::trace::run_reference;
    use parallel_nmcs::RunMode;

    #[test]
    fn calibration_values_are_plausible() {
        let c = calibrate(1);
        assert!(
            c.ns_per_unit > 1.0 && c.ns_per_unit < 100_000.0,
            "{}",
            c.ns_per_unit
        );
        assert!(
            c.mean_playout_len > 15.0 && c.mean_playout_len < 80.0,
            "{}",
            c.mean_playout_len
        );
        assert!(c.level1_work > 1_000);
        assert!(
            c.level_ratio > 50.0 && c.level_ratio < 1_000.0,
            "per-level ratio {} out of band (paper: ~207)",
            c.level_ratio
        );
    }

    #[test]
    fn fit_recovers_decaying_demand() {
        // Build a synthetic trace through the real generator and refit.
        let model = TraceModel {
            game_len: 30,
            branching0: 6.0,
            demand0: 5_000.0,
            gamma: 3.0,
            sigma: 0.0,
        };
        let trace = model.synthesize(RunMode::FirstMove, 3);
        let fit = fit_model(&trace, 0.3);
        assert!(
            (fit.gamma - 3.0).abs() < 0.6,
            "gamma {} should be near 3",
            fit.gamma
        );
        assert!(
            fit.demand0 / 5_000.0 > 0.5 && fit.demand0 / 5_000.0 < 2.0,
            "demand0 {}",
            fit.demand0
        );
        assert_eq!(fit.game_len, 30);
    }

    #[test]
    fn fit_handles_tiny_real_traces() {
        let g = SumGame::random(4, 3, 2);
        let (_, trace) = run_reference(&g, 2, 1, RunMode::FullGame, None);
        let fit = fit_model(&trace, 0.35);
        assert!(fit.game_len >= 4);
        assert!(fit.branching0 >= 1.0);
        assert!(fit.demand0 >= 1.0);
    }
}
