//! The serve soak: many concurrent HTTP clients against one
//! [`nmcs_serve::Server`], mixed game domains, with every acceptance
//! invariant of the front door checked in-process:
//!
//! * every **accepted** job's wire result is bit-identical (score,
//!   index-coded sequence, playout and work-unit counters) to the
//!   direct `SearchSpec::run` library call with the same seed;
//! * every **shed** submission (`429` — tenant quota, priority lane, or
//!   unmeetable deadline) carries `Retry-After` and is never enqueued:
//!   at the end the engine's `submitted_jobs` counter equals the exact
//!   number of `202` responses the clients saw;
//! * `GET /metrics` parses line-by-line as Prometheus text, and the
//!   JSON form round-trips byte-identically through the snapshot types.
//!
//! The full soak holds ≥ 200 connections open at once (a barrier after
//! connect guarantees the concurrency actually happens); `--soak-small`
//! shrinks that to a CI-friendly couple dozen. Worker count follows
//! `NMCS_TEST_WORKERS` so CI exercises both the contended single-worker
//! shape and the parallel one.

use crate::report::Table;
use nmcs_core::metrics::MetricsSnapshot;
use nmcs_core::{DynGame, SearchSpec};
use nmcs_engine::EngineConfig;
use nmcs_games::{NeedleLadder, SameGame, SumGame, TspGame, TspInstance};
use nmcs_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{Read, Write};
// nmcs-lint: allow(socket-discipline) reason="the soak drives the HTTP edge from outside: these sockets are the test clients"
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Aggregated outcome of one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakOutcome {
    /// Client connections held open concurrently at the barrier.
    pub connections: usize,
    /// Jobs the server answered `202` for (then completed and matched).
    pub accepted: u64,
    /// Submissions that stayed shed (`429`) after every retry.
    pub shed: u64,
    /// `429` responses that a later retry turned into a `202`.
    pub retried: u64,
    /// Accepted jobs whose wire result diverged from the direct call.
    pub mismatches: u64,
}

const DOMAINS: &[&str] = &["sum", "samegame-small", "tsp", "needle"];

fn spec_for(client: usize, seed: u64) -> SearchSpec {
    match client % 3 {
        0 => SearchSpec::sample().seed(seed).build(),
        1 => SearchSpec::nested(1).seed(seed).build(),
        _ => SearchSpec::flat_mc(32).seed(seed).build(),
    }
}

/// The direct library call the wire result must match: the same stock
/// game the server builds for `domain`, searched over `DynGame` so the
/// sequence comes back index-coded exactly like the engine's.
fn direct_coded(domain: &str, spec: &SearchSpec) -> (i64, Vec<usize>, u64, u64) {
    let seed = spec.seed;
    let run = |g: DynGame| {
        let r = spec.run(&g).into_result();
        (r.score, r.sequence, r.stats.playouts, r.stats.work_units)
    };
    match domain {
        "sum" => run(DynGame::new(SumGame::random(6, 4, seed))),
        "samegame-small" => run(DynGame::new(SameGame::random(6, 6, 3, seed))),
        "tsp" => run(DynGame::new(TspGame::new(
            TspInstance::random(12, seed),
            None,
        ))),
        "needle" => run(DynGame::new(NeedleLadder::new(10))),
        other => panic!("soak has no domain '{other}'"),
    }
}

// ---------------------------------------------------------------------
// A blocking keep-alive HTTP/1.1 client.
// ---------------------------------------------------------------------

type HttpReply = (u16, Vec<(String, String)>, String);

fn read_reply(stream: &mut TcpStream) -> Result<HttpReply, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("EOF before response head".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|e| e.to_string())?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or("bad status line")?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or("missing content-length")?;
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("EOF mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((
        status,
        headers,
        String::from_utf8(body).map_err(|e| e.to_string())?,
    ))
}

fn request(stream: &mut TcpStream, raw: &str) -> Result<HttpReply, String> {
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;
    read_reply(stream)
}

fn post_jobs(stream: &mut TcpStream, body: &str) -> Result<HttpReply, String> {
    post_path(stream, "/jobs", body)
}

fn post_path(stream: &mut TcpStream, path: &str, body: &str) -> Result<HttpReply, String> {
    request(
        stream,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: soak\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete_path(stream: &mut TcpStream, path: &str) -> Result<HttpReply, String> {
    request(
        stream,
        &format!("DELETE {path} HTTP/1.1\r\nHost: soak\r\n\r\n"),
    )
}

fn get_path(stream: &mut TcpStream, path: &str) -> Result<HttpReply, String> {
    request(
        stream,
        &format!("GET {path} HTTP/1.1\r\nHost: soak\r\n\r\n"),
    )
}

fn connect(addr: SocketAddr) -> Result<TcpStream, String> {
    // Under a 200-way connect storm the accept queue can briefly fill;
    // a couple of spaced retries ride that out.
    let mut last = String::new();
    for _ in 0..5 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(Duration::from_secs(120)));
                return Ok(s);
            }
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(format!("connect failed: {last}"))
}

fn field<'a>(v: &'a Value, k: &str) -> Option<&'a Value> {
    v.get_field(k)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// One client's conversation.
// ---------------------------------------------------------------------

struct ClientTally {
    accepted: u64,
    shed: u64,
    retried: u64,
    mismatch: Option<String>,
}

fn run_client(addr: SocketAddr, client: usize, seed: u64, barrier: &Barrier) -> ClientTally {
    let mut tally = ClientTally {
        accepted: 0,
        shed: 0,
        retried: 0,
        mismatch: None,
    };
    let mut stream = match connect(addr) {
        Ok(s) => s,
        Err(e) => {
            tally.mismatch = Some(format!("client {client}: {e}"));
            barrier.wait();
            return tally;
        }
    };
    // Hold the connection until every client has one open: this is the
    // moment the soak's concurrency claim is actually true.
    barrier.wait();

    let domain = DOMAINS[client % DOMAINS.len()];
    let spec = spec_for(client, seed);
    let tenant = format!("t{}", client % 6);
    // Every 7th client asks for a 1 ms allowance — unmeetable whenever
    // the queue has any backlog, so the deadline shed path gets real
    // traffic without being guaranteed to fire on an idle queue.
    let ttl = if client % 7 == 3 {
        r#","ttl_ms":1"#
    } else {
        ""
    };
    let spec_json = serde_json::to_string(&spec).expect("spec serialises");
    let body = format!(r#"{{"tenant":"{tenant}","game":"{domain}","spec":{spec_json}{ttl}}}"#);

    let mut attempts = 0u32;
    let job_id = loop {
        let (status, headers, resp) = match post_jobs(&mut stream, &body) {
            Ok(r) => r,
            Err(e) => {
                tally.mismatch = Some(format!("client {client}: submit: {e}"));
                return tally;
            }
        };
        match status {
            202 => {
                if attempts > 0 {
                    tally.retried += 1;
                }
                let parsed: Value = match serde_json::from_str(&resp) {
                    Ok(v) => v,
                    Err(e) => {
                        tally.mismatch = Some(format!("client {client}: 202 body: {e}"));
                        return tally;
                    }
                };
                break field(&parsed, "job").and_then(as_u64);
            }
            429 | 503 => {
                // The shed contract: a Retry-After header and a
                // retry_after_ms field, every time.
                let has_header = headers.iter().any(|(k, _)| k == "retry-after");
                let ms = serde_json::from_str::<Value>(&resp)
                    .ok()
                    .and_then(|v| field(&v, "retry_after_ms").and_then(as_u64));
                if status == 429 && (!has_header || ms.is_none()) {
                    tally.mismatch = Some(format!(
                        "client {client}: 429 without retry contract: {resp}"
                    ));
                    return tally;
                }
                attempts += 1;
                if attempts > 3 {
                    tally.shed += 1;
                    return tally;
                }
                std::thread::sleep(Duration::from_millis(ms.unwrap_or(100).min(200)));
            }
            other => {
                tally.mismatch = Some(format!("client {client}: unexpected {other}: {resp}"));
                return tally;
            }
        }
    };
    let Some(job_id) = job_id else {
        tally.mismatch = Some(format!("client {client}: 202 without a job id"));
        return tally;
    };
    tally.accepted = 1;

    let (status, _, out) = match get_path(&mut stream, &format!("/jobs/{job_id}?wait=1")) {
        Ok(r) => r,
        Err(e) => {
            tally.mismatch = Some(format!("client {client}: wait: {e}"));
            return tally;
        }
    };
    if status != 200 {
        tally.mismatch = Some(format!("client {client}: wait got {status}: {out}"));
        return tally;
    }
    if let Err(e) = check_bit_identity(domain, &spec, &out) {
        tally.mismatch = Some(format!("client {client}: {e}"));
    }
    tally
}

fn check_bit_identity(domain: &str, spec: &SearchSpec, out: &str) -> Result<(), String> {
    let v: Value = serde_json::from_str(out).map_err(|e| format!("output body: {e}"))?;
    let state = field(&v, "state").ok_or("output without state")?;
    if state != &Value::Str("completed".to_string()) {
        return Err(format!("job not completed: {out}"));
    }
    let best = field(&v, "best").ok_or("output without best")?;
    let score = field(best, "score")
        .and_then(|s| match s {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        })
        .ok_or("best without score")?;
    let sequence: Vec<usize> = match field(best, "sequence") {
        Some(Value::Array(xs)) => xs
            .iter()
            .map(|x| as_u64(x).map(|n| n as usize))
            .collect::<Option<_>>()
            .ok_or("non-integer move code")?,
        _ => return Err("best without sequence".to_string()),
    };
    let playouts = field(best, "playouts")
        .and_then(as_u64)
        .ok_or("no playouts")?;
    let work_units = field(best, "work_units")
        .and_then(as_u64)
        .ok_or("no work_units")?;

    let (d_score, d_seq, d_playouts, d_work) = direct_coded(domain, spec);
    if (score, &sequence, playouts, work_units) != (d_score, &d_seq, d_playouts, d_work) {
        return Err(format!(
            "wire result diverged from direct call on {domain}: \
             wire ({score}, {sequence:?}, {playouts}, {work_units}) \
             vs direct ({d_score}, {d_seq:?}, {d_playouts}, {d_work})"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The soak itself.
// ---------------------------------------------------------------------

fn soak_workers() -> usize {
    std::env::var("NMCS_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or(4)
}

/// Runs the soak and panics on any violated invariant, so a CI job can
/// gate on the exit code. Returns the outcome plus a rendered table.
pub fn serve_soak(small: bool, seed: u64) -> (SoakOutcome, Table) {
    let connections = if small { 24 } else { 224 };
    let workers = soak_workers();
    let server = Server::start(ServeConfig {
        engine: EngineConfig {
            workers,
            queue_capacity: 64,
        },
        tenant_quota: 16,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port for the soak");
    let addr = server.addr();

    let accepted = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let mismatches = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
    let barrier = Arc::new(Barrier::new(connections));

    let handles: Vec<_> = (0..connections)
        .map(|client| {
            let (accepted, shed, retried, mismatches, barrier) = (
                accepted.clone(),
                shed.clone(),
                retried.clone(),
                mismatches.clone(),
                barrier.clone(),
            );
            // nmcs-lint: allow(spawn-discipline) reason="soak clients: driver threads for the HTTP edge, never search work"
            std::thread::spawn(move || {
                // Each client is a logical worker of the soak, so its
                // seed derives from that coordinate.
                let client_seed = nmcs_core::seeds::tree_worker_seed(seed, client);
                let tally = run_client(addr, client, client_seed, &barrier);
                accepted.fetch_add(tally.accepted, Ordering::Relaxed);
                shed.fetch_add(tally.shed, Ordering::Relaxed);
                retried.fetch_add(tally.retried, Ordering::Relaxed);
                if let Some(m) = tally.mismatch {
                    mismatches.lock().push(m);
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    // The post-storm audit, over one fresh connection.
    let mut stream = connect(addr).expect("connect for the metrics audit");
    let (status, _, text) = get_path(&mut stream, "/metrics").expect("GET /metrics");
    assert_eq!(status, 200, "metrics endpoint answers");
    let mut series = 0usize;
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("metrics line without value: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric metrics value: {line:?}"
        );
        assert!(
            !name.is_empty() && name.contains('{') == name.ends_with('}'),
            "malformed metrics series: {line:?}"
        );
        series += 1;
    }
    assert!(series > 0, "metrics text has series");

    let (status, _, json_body) =
        get_path(&mut stream, "/metrics?format=json").expect("GET /metrics?format=json");
    assert_eq!(status, 200);
    let snapshot: MetricsSnapshot =
        serde_json::from_str(&json_body).expect("metrics JSON deserialises");
    assert_eq!(
        serde_json::to_string(&snapshot).expect("metrics JSON reserialises"),
        json_body,
        "metrics JSON round-trips byte-identically"
    );

    let outcome = SoakOutcome {
        connections,
        accepted: accepted.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        retried: retried.load(Ordering::Relaxed),
        mismatches: mismatches.lock().len() as u64,
    };

    // The two hard invariants: nothing diverged, nothing shed was ever
    // enqueued (202 count == the engine's own submitted counter).
    let problems = mismatches.lock();
    assert!(
        problems.is_empty(),
        "soak saw {} violations, first: {}",
        problems.len(),
        problems[0]
    );
    drop(problems);
    let engine = snapshot
        .engine
        .expect("served snapshot has an engine section");
    assert_eq!(
        engine.submitted_jobs, outcome.accepted,
        "every 202 was enqueued and nothing else"
    );
    assert_eq!(
        engine.completed_jobs, outcome.accepted,
        "every accepted job completed"
    );
    assert_eq!(
        outcome.accepted + outcome.shed,
        connections as u64,
        "every client either landed a job or stayed shed"
    );

    // Close the audit connection before shutdown: a handler blocked in
    // `read_request` on a live keep-alive socket holds shutdown hostage
    // for the whole read timeout.
    drop(stream);
    server.shutdown();

    let mut t = Table::new(
        format!("Serve soak ({connections} concurrent connections, {workers} workers)"),
        &["measure", "value"],
    );
    t.row(&["connections".to_string(), outcome.connections.to_string()]);
    t.row(&["accepted (202)".to_string(), outcome.accepted.to_string()]);
    t.row(&[
        "shed after retries (429)".to_string(),
        outcome.shed.to_string(),
    ]);
    t.row(&[
        "retried into acceptance".to_string(),
        outcome.retried.to_string(),
    ]);
    t.row(&["bit-identity mismatches".to_string(), "0".to_string()]);
    t.row(&["metrics series parsed".to_string(), series.to_string()]);
    (outcome, t)
}

// ---------------------------------------------------------------------
// The session-churn phase (`tables --serve --sessions`).
// ---------------------------------------------------------------------

/// Drives the session routes through a full churn cycle and panics on
/// any violated invariant: opens far more warm sessions than the byte
/// bound holds (each carries its default transposition-table backing),
/// steps each one, and checks that
///
/// * the `engine_session_bytes` gauge **plateaus** — it never exceeds
///   the configured bound by more than the one just-opened session the
///   next sweep trims, and LRU eviction is observed in the counters;
/// * the per-tenant session quota sheds over-quota opens as `429` with
///   the retry contract, and the shed shows up in
///   `serve_shed_total{reason="session-quota"}`;
/// * `DELETE` unlists (a second delete and a step both `404`), and the
///   serve section's route histograms cover the session routes.
pub fn session_churn(seed: u64) -> Table {
    let workers = soak_workers();
    // Each warm session on the default table budget holds ~3 MiB of
    // backing, so a dozen opens churn well past this bound.
    let bound = 16 * 1024 * 1024;
    let server = Server::start(ServeConfig {
        engine: EngineConfig {
            workers,
            queue_capacity: 64,
        },
        session_quota: 2,
        session_limits: nmcs_engine::SessionLimits {
            max_bytes: bound,
            ..Default::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port for the churn");
    let addr = server.addr();
    let mut stream = connect(addr).expect("connect for the churn");

    let spec = SearchSpec::uct()
        .tree_reuse(true)
        .seed(seed)
        .max_playouts(32)
        .build();
    let spec_json = serde_json::to_string(&spec).expect("spec serialises");
    let open_body = |tenant: &str| {
        format!(r#"{{"tenant":"{tenant}","game":"samegame-small","spec":{spec_json}}}"#)
    };

    let engine_gauges = |stream: &mut TcpStream| -> nmcs_core::metrics::EngineSnapshot {
        let (status, _, body) =
            get_path(stream, "/metrics?format=json").expect("GET /metrics?format=json");
        assert_eq!(status, 200);
        let snapshot: MetricsSnapshot = serde_json::from_str(&body).expect("metrics JSON");
        snapshot
            .engine
            .expect("served snapshot has an engine section")
    };

    // Churn: one tenant per round dodges the per-tenant quota, so the
    // byte bound is the only thing holding the table back.
    let rounds = 12u64;
    let mut peak_bytes = 0u64;
    for round in 0..rounds {
        let tenant = format!("churn{round}");
        let (status, _, body) =
            post_path(&mut stream, "/sessions", &open_body(&tenant)).expect("POST /sessions");
        assert_eq!(status, 201, "open session: {body}");
        let opened: Value = serde_json::from_str(&body).expect("201 body");
        let sid = field(&opened, "session")
            .and_then(as_u64)
            .expect("201 carries a session id");
        assert_eq!(
            field(&opened, "warm"),
            Some(&Value::Bool(true)),
            "tree_reuse spec opens warm: {body}"
        );

        let (status, _, body) = post_path(&mut stream, &format!("/sessions/{sid}/jobs"), "")
            .expect("POST /sessions/id/jobs");
        assert_eq!(status, 202, "step: {body}");
        let accepted: Value = serde_json::from_str(&body).expect("202 body");
        let job = field(&accepted, "job")
            .and_then(as_u64)
            .expect("202 carries a job id");
        let (status, _, out) = get_path(&mut stream, &format!("/jobs/{job}?wait=1")).expect("wait");
        assert_eq!(status, 200, "step completes: {out}");

        let (status, _, body) =
            get_path(&mut stream, &format!("/sessions/{sid}")).expect("GET /sessions/id");
        if status == 200 {
            // The byte bound may have evicted this (now-LRU) session
            // already; when it survives, the step must have committed.
            let info: Value = serde_json::from_str(&body).expect("200 body");
            assert_eq!(
                field(&info, "steps").and_then(as_u64),
                Some(1),
                "one step taken: {body}"
            );
        } else {
            assert_eq!(status, 404, "evicted sessions 404: {body}");
        }

        peak_bytes = peak_bytes.max(engine_gauges(&mut stream).session_bytes);
    }

    // The plateau: churn never pushed the gauge past the bound plus the
    // single just-opened table the next sweep trims.
    let slack = 6 * 1024 * 1024;
    assert!(
        peak_bytes <= bound as u64 + slack,
        "session bytes gauge must plateau near the {bound}-byte bound, peaked at {peak_bytes}"
    );
    let gauges = engine_gauges(&mut stream);
    assert!(
        gauges.sessions_evicted >= 3,
        "churn past the byte bound evicts LRU sessions: {gauges:?}"
    );
    assert!(gauges.sessions >= 1, "newest sessions survive: {gauges:?}");
    assert_eq!(gauges.sessions_opened, rounds, "every open landed");

    // Quota: a single tenant stops at `session_quota` with the full
    // retry contract on the 429.
    let mut hog_ids = Vec::new();
    for _ in 0..2 {
        let (status, _, body) =
            post_path(&mut stream, "/sessions", &open_body("hog")).expect("open under quota");
        assert_eq!(status, 201, "{body}");
        let v: Value = serde_json::from_str(&body).expect("201 body");
        hog_ids.push(field(&v, "session").and_then(as_u64).expect("session id"));
    }
    let (status, headers, body) =
        post_path(&mut stream, "/sessions", &open_body("hog")).expect("over-quota open");
    assert_eq!(status, 429, "third session for one tenant sheds: {body}");
    assert!(
        headers.iter().any(|(k, _)| k == "retry-after"),
        "429 carries Retry-After"
    );
    let shed: Value = serde_json::from_str(&body).expect("429 body");
    assert!(
        field(&shed, "retry_after_ms").and_then(as_u64).is_some(),
        "429 carries retry_after_ms: {body}"
    );

    // Delete: unlists now, 404s forever after.
    let sid = hog_ids[0];
    let (status, _, body) =
        delete_path(&mut stream, &format!("/sessions/{sid}")).expect("DELETE /sessions/id");
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = delete_path(&mut stream, &format!("/sessions/{sid}")).expect("redelete");
    assert_eq!(status, 404, "second delete is a 404");
    let (status, _, _) =
        post_path(&mut stream, &format!("/sessions/{sid}/jobs"), "").expect("step deleted");
    assert_eq!(status, 404, "stepping a deleted session is a 404");

    // The serve text section: session routes in the histograms, the
    // quota shed in the by-reason counters, gauges present and parsing.
    let (status, _, text) = get_path(&mut stream, "/metrics").expect("GET /metrics");
    assert_eq!(status, 200);
    for needle in [
        "serve_route_seconds_count{route=\"POST /sessions\"}",
        "serve_route_seconds_count{route=\"POST /sessions/{id}/jobs\"}",
        "serve_route_seconds_count{route=\"DELETE /sessions/{id}\"}",
        "engine_sessions ",
        "engine_session_bytes ",
    ] {
        assert!(text.contains(needle), "metrics text misses {needle}");
    }
    let quota_sheds = text
        .lines()
        .find(|l| l.starts_with("serve_shed_total{reason=\"session-quota\"}"))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .expect("session-quota shed counter renders");
    assert!(quota_sheds >= 1, "the over-quota open was counted");

    // As in the soak: close the keep-alive connection first, or
    // shutdown waits out the full socket read timeout.
    drop(stream);
    server.shutdown();

    let mut t = Table::new(
        format!(
            "Session churn ({rounds} warm opens vs a {} MiB bound)",
            bound / (1024 * 1024)
        ),
        &["measure", "value"],
    );
    t.row(&["opened".to_string(), gauges.sessions_opened.to_string()]);
    t.row(&[
        "evicted (LRU)".to_string(),
        gauges.sessions_evicted.to_string(),
    ]);
    t.row(&[
        "open at end of churn".to_string(),
        gauges.sessions.to_string(),
    ]);
    t.row(&["peak session bytes".to_string(), peak_bytes.to_string()]);
    t.row(&["byte bound".to_string(), bound.to_string()]);
    t.row(&["quota sheds (429)".to_string(), quota_sheds.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_holds_every_invariant() {
        let (outcome, table) = serve_soak(true, 2009);
        assert_eq!(outcome.connections, 24);
        assert_eq!(outcome.mismatches, 0);
        assert!(outcome.accepted > 0, "most clients land jobs");
        assert!(table.render().contains("Serve soak"));
    }
}
