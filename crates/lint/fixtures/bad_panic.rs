// lint-fixture: path=crates/engine/src/worker.rs expect=panic-discipline
//! Known-bad: panicking extractors on an engine worker path.

pub fn run(task: Task) -> Output {
    let job = task.job.upgrade().unwrap();
    job.result().expect("job must have completed")
}
