// lint-fixture: path=crates/engine/src/telemetry.rs expect=socket-discipline
//! Known-bad: raw sockets outside the serve crate's waivered HTTP
//! edge — an engine module quietly growing a network dependency.

use std::net::{SocketAddr, UdpSocket};

pub fn beacon(addr: SocketAddr) -> std::io::Result<usize> {
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.send_to(b"hello", addr)
}

pub fn dial(addr: SocketAddr) -> std::io::Result<std::net::TcpStream> {
    std::net::TcpStream::connect(addr)
}
