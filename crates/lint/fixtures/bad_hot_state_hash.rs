// lint-fixture: path=crates/games/src/samegame.rs expect=hot-path
//! Known-bad: a `state_hash` that stringifies the position and hashes
//! the bytes — a heap allocation per table probe, inside the hottest
//! loop a warm session has. The purity pass must reject it.

// nmcs-lint: hot-entry
pub fn state_hash(cells: &[u8]) -> u64 {
    let key = format!("{cells:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}
