// lint-fixture: path=crates/core/src/search.rs expect=hot-path
//! Known-bad: the hot root itself is clean, but a helper it calls
//! allocates — reachability must carry the taint through the call
//! graph, and the finding lands in the callee.

// nmcs-lint: hot-entry
pub fn rollout(moves: &mut Vec<u32>) -> usize {
    step(moves)
}

fn step(moves: &mut Vec<u32>) -> usize {
    let label = format!("{} moves", moves.len());
    label.len()
}
