// lint-fixture: path=crates/serve/src/edge.rs expect=clean
//! Known-good: the serve crate's HTTP edge carries a waiver per socket
//! site — accounted for by a written reason, not a directory exemption.

// nmcs-lint: allow(socket-discipline) reason="fixture modelling the serve crate's HTTP boundary"
use std::net::{TcpListener, TcpStream};

pub fn bind() -> std::io::Result<(TcpListener, Option<TcpStream>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok((listener, None))
}
