// lint-fixture: path=crates/core/src/search.rs expect=clean
//! Known-good: a hot-path finding silenced by a well-formed, reasoned
//! waiver (and the waiver is consumed, so no stale-waiver either).

// nmcs-lint: hot-entry
pub fn rollout(out: &mut Vec<u32>) {
    // nmcs-lint: allow(hot-path) reason="fixture demonstrating a reasoned hot-path waiver"
    let scratch: Vec<u32> = Vec::with_capacity(4);
    out.push(scratch.capacity() as u32);
}
