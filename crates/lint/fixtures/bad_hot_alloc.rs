// lint-fixture: path=crates/core/src/search.rs expect=hot-path
//! Known-bad: heap allocation directly inside a declared hot-path
//! root — the exact bug class the rule exists for.

// nmcs-lint: hot-entry
pub fn rollout(moves: &mut Vec<u32>) -> usize {
    let mut played: Vec<u32> = Vec::new();
    while let Some(top) = moves.pop() {
        played.push(top);
    }
    played.len()
}
