// lint-fixture: path=crates/core/src/search.rs expect=clean
//! Known-good: every trigger below sits in a string, a comment, or a
//! `#[cfg(test)]` region, so no rule may fire.

/* block comment mentioning Instant::now() and thread::spawn */
// line comment: SystemTime, seed.wrapping_add(1), .unwrap()

pub fn log_message() -> String {
    let plain = "Instant::now() thread::spawn SystemTime".to_string();
    let raw = r#"use std::sync::Mutex; x.unwrap() "quoted" "#.to_string();
    let bytes = b"thread_rng OsRng";
    format!("{plain}{raw}{}", bytes.len())
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_do_anything() {
        let t = Instant::now();
        let h = std::thread::spawn(move || t.elapsed());
        h.join().unwrap();
        let seed = 7u64;
        let _ = seed.wrapping_add(1);
    }
}
