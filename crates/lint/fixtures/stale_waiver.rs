// lint-fixture: path=crates/core/src/driver.rs expect=stale-waiver
//! Known-bad: the violation this waiver once excused is gone, so the
//! waiver itself must now be reported.

// nmcs-lint: allow(clock-discipline) reason="the clock read below was removed"
pub fn no_clock_here() -> u64 {
    42
}
