// lint-fixture: path=crates/core/src/spec.rs expect=tag-identity
//! Known-bad: `Beam::width` is a result-affecting knob that `tag()`
//! never mentions — two differently-configured runs would collide on
//! one identity.

pub enum AlgorithmSpec {
    Nested { level: u32, config: NestedConfig },
    Beam { width: usize },
}

impl AlgorithmSpec {
    pub fn tag(&self) -> String {
        match self {
            AlgorithmSpec::Nested { level, config } => format!("nested{level}-{config:?}"),
            AlgorithmSpec::Beam { .. } => "beam".to_string(),
        }
    }
}
