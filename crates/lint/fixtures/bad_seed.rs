// lint-fixture: path=crates/bench/src/service.rs expect=seed-discipline
//! Known-bad: entropy sources and ad-hoc seed arithmetic.

pub fn job_seed(root_seed: u64, i: u64) -> u64 {
    root_seed.wrapping_add(i)
}

pub fn mixed_seed(seed: u64, tag: u64) -> u64 {
    seed ^ tag
}

pub fn random_seed() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
