// lint-fixture: path=crates/core/src/driver.rs expect=clock-discipline
//! Known-bad: raw clock reads outside the allowlisted modules.

pub fn elapsed_ms(work: impl FnOnce()) -> u128 {
    let t0 = std::time::Instant::now();
    work();
    t0.elapsed().as_millis()
}

pub fn wall_clock_stamp() -> u64 {
    use std::time::SystemTime;
    SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
