// lint-fixture: path=crates/bench/src/calibrate.rs expect=deprecated-shim
//! Known-bad: internal calls to the deprecated PR-3 free functions.

pub fn measure(board: &Board, rng: &mut Rng) -> (u64, u64) {
    let l1 = nested(board, 1, &NestedConfig::paper(), rng);
    let mc = nmcs_core::uct(board, &UctConfig::default(), rng);
    (l1.stats.work_units, mc.stats.work_units)
}
