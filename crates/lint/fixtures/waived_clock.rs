// lint-fixture: path=crates/core/src/driver.rs expect=clean
//! Known-good: a finding covered by a well-formed waiver is silenced
//! (and the waiver is consumed, so no stale-waiver either).

pub fn stamp() -> std::time::Instant {
    // nmcs-lint: allow(clock-discipline) reason="fixture demonstrating a sound waiver"
    std::time::Instant::now()
}
