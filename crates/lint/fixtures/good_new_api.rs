// lint-fixture: path=crates/parallel/src/runner.rs expect=clean
//! Known-good: the unified-API constructors share names with the
//! deprecated free functions; calling them qualified by their type (or
//! as methods) must not trip `deprecated-shim`.

pub fn build_specs() {
    let a = SearchSpec::nested(2).build();
    let b = AlgorithmSpec::uct(UctConfig::default());
    let c = builder.nested(3);
    let _ = (a, b, c);
}

fn nested(level: u32) -> u32 {
    // A local definition of the same name is not a shim call either.
    level
}
