// lint-fixture: path=crates/core/src/driver.rs expect=clock-discipline,waiver-syntax
//! Known-bad: waivers missing a reason or naming unknown rules are
//! malformed — and malformed waivers silence nothing.

// nmcs-lint: allow(clock-discipline)
pub fn missing_reason() -> std::time::Instant {
    std::time::Instant::now()
}

// nmcs-lint: allow(no-such-rule) reason="confidently wrong"
pub fn unknown_rule() -> u64 {
    7
}
