// lint-fixture: path=crates/core/src/search.rs expect=clean
//! Known-good: an allocation-free hot rollout — in-place mutation,
//! indexing, and integer arithmetic only; nothing for the hot-path
//! pass to object to.

// nmcs-lint: hot-entry
pub fn rollout(moves: &mut Vec<u32>) -> u64 {
    let mut acc = 0u64;
    while let Some(top) = moves.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(top as u64);
    }
    acc
}
