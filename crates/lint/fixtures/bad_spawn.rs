// lint-fixture: path=crates/parallel/src/leaf.rs expect=spawn-discipline
//! Known-bad: ad-hoc threads outside the sanctioned pools.

pub fn fan_out(jobs: Vec<Job>) -> Vec<std::thread::JoinHandle<()>> {
    jobs.into_iter()
        .map(|j| std::thread::spawn(move || j.run()))
        .collect()
}

pub fn named_worker() {
    let _ = thread::Builder::new().name("rogue".into());
}
