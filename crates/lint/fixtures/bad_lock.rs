// lint-fixture: path=crates/engine/src/queue.rs expect=lock-discipline
//! Known-bad: std locks bypass the vendored lock-order detector.

use std::sync::{Arc, Condvar, Mutex};

pub struct Queue {
    inner: std::sync::RwLock<Vec<u32>>,
    gate: Arc<Mutex<bool>>,
    cv: Condvar,
}
