// lint-fixture: path=crates/games/src/samegame.rs expect=clean
//! Known-good: an allocation-free incremental `state_hash` — the shape
//! PR-10's warm sessions demand, since the transposition table keys
//! every node visit on it. Pure indexing, XOR, and wrapping arithmetic;
//! nothing for the hot-path pass to object to.

// nmcs-lint: hot-entry
pub fn state_hash(cells: &[u8], acc: u64) -> u64 {
    let mut h = acc ^ 0x9e37_79b9_7f4a_7c15;
    for (i, &c) in cells.iter().enumerate() {
        h ^= (c as u64).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (i as u64).rotate_left(17);
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    h ^ (h >> 33)
}
