//! The linter's own acceptance gate, run as a test so `cargo test`
//! alone catches a regression before CI's dedicated lint job does:
//!
//! * the whole workspace is clean (zero unwaived findings, and every
//!   waiver carries a reason — malformed ones are findings);
//! * the linter's own crate is clean under its own rules;
//! * the rule catalog itself stays well-formed.

use nmcs_lint::{lint_source, lint_workspace, rule_counts, RULES};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn the_workspace_is_clean_under_deny() {
    let findings = lint_workspace(workspace_root()).expect("workspace walk");
    let unwaived: Vec<_> = findings.iter().filter(|f| !f.waived).collect();
    assert!(
        unwaived.is_empty(),
        "unwaived findings (fix them or waive with a reason):\n{}",
        unwaived
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Waivers exist and are all consumed (a stale one would be an
    // unwaived finding above); keep the count in sight so an explosion
    // of exceptions needs a deliberate edit here.
    // The serve PR added six edge waivers on purpose: the HTTP
    // boundary's sockets and connection threads are waivered per site
    // rather than path-exempt.
    let waived: usize = rule_counts(&findings).values().map(|(_, w)| w).sum();
    assert!(
        waived <= 22,
        "waiver count crept up to {waived} — review them"
    );
}

#[test]
fn hot_path_pass_covers_the_playout_core() {
    // The hot-path rule is active workspace-wide: every required entry
    // is annotated (a missing one would be an unwaived finding in the
    // test above), the reachable set is non-trivial, and it spans both
    // the search core and the game domains.
    let (hot, findings) = nmcs_lint::hot_report(workspace_root()).expect("workspace walk");
    assert!(
        hot.len() >= 40,
        "hot set shrank to {} fns — did an entry annotation go missing?",
        hot.len()
    );
    for needle in [
        ("crates/core/src/search.rs", "PlayoutScratch::run"),
        ("crates/core/src/search.rs", "PlayoutScratch::run_undo"),
        ("crates/core/src/search.rs", "nested_scratch"),
        ("crates/core/src/uct.rs", "TpTree::descend"),
        ("crates/games/src/samegame.rs", "SameGame::undo"),
        ("crates/games/src/sudoku.rs", "Sudoku::most_constrained"),
        ("crates/games/src/tsp.rs", "TspGame::legal_moves"),
        ("crates/morpion/src/board.rs", "Board::apply"),
    ] {
        assert!(
            hot.iter().any(|f| f.file == needle.0 && f.name == needle.1),
            "expected `{}` in {} to be hot-reachable",
            needle.1,
            needle.0
        );
    }
    // Every hot-path exception is waived with a reason; none are open.
    assert!(
        findings.iter().all(|f| f.waived),
        "unwaived hot-path findings: {findings:#?}"
    );
    assert!(
        !findings.is_empty(),
        "the by-design exceptions (snapshot fallback, strided deadline \
         poll, UCT node construction) should appear as waived findings"
    );
}

#[test]
fn nmcs_lint_lints_itself_clean() {
    let own = workspace_root().join("crates/lint/src");
    for entry in std::fs::read_dir(&own).expect("own src dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let rel = format!(
            "crates/lint/src/{}",
            path.file_name().unwrap().to_string_lossy()
        );
        let src = std::fs::read_to_string(&path).expect("readable source");
        let findings = lint_source(&rel, &src);
        assert!(
            findings.is_empty(),
            "the linter violates its own rules in {rel}: {findings:#?}"
        );
    }
}

#[test]
fn rule_catalog_is_well_formed() {
    let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate rule ids in the catalog");
    for r in RULES {
        assert!(
            r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "rule id `{}` is not kebab-case",
            r.id
        );
        assert!(!r.summary.is_empty());
    }
}
