//! Property tests for the lexer — the foundation every rule stands on.
//!
//! The generator gives lexically adversarial soup: quote and comment
//! delimiters, escapes, raw-string openers, newlines, and rule-relevant
//! identifiers, concatenated in random orders. The lexer must survive
//! anything (garbage in, tokens out) and must never let trigger text
//! that sits inside a string or comment surface as an identifier.

use nmcs_lint::lexer::{lex, TokKind};
use nmcs_lint::lint_source;
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragments chosen to collide: every delimiter the lexer special-cases,
/// plus identifiers the rules match on.
fn fragment() -> BoxedStrategy<String> {
    prop_oneof![
        Just("\"".to_string()),
        Just("\\".to_string()),
        Just("\\\"".to_string()),
        Just("'".to_string()),
        Just("'a".to_string()),
        Just("//".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("r#type".to_string()),
        Just("b\"bytes\"".to_string()),
        Just("b'x'".to_string()),
        Just("\n".to_string()),
        Just(" ".to_string()),
        Just("Instant::now()".to_string()),
        Just("thread::spawn".to_string()),
        Just(".unwrap()".to_string()),
        Just("seed.wrapping_add(1)".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        (32u32..0x2500u32).prop_map(|c| char::from_u32(c).map(String::from).unwrap_or_default()),
    ]
    .boxed()
}

fn soup() -> BoxedStrategy<String> {
    vec(fragment(), 0..48).prop_map(|v| v.concat()).boxed()
}

/// Lowercase payload that cannot terminate a string or comment.
fn word() -> BoxedStrategy<String> {
    // Exclusive upper bound: the vendored proptest only implements
    // `Strategy` for `Range`, not `RangeInclusive` (`{` is `z` + 1).
    vec((b'a'..b'{').prop_map(|b| b as char), 1..9)
        .prop_map(|v| v.into_iter().collect())
        .boxed()
}

proptest! {
    /// Garbage in, tokens out — lexing arbitrary delimiter soup never
    /// panics, and is deterministic.
    #[test]
    fn lexing_never_panics_and_is_deterministic(src in soup()) {
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a, b);
    }

    /// Line numbers are 1-based and non-decreasing in token order.
    #[test]
    fn line_numbers_are_monotone(src in soup()) {
        let toks = lex(&src);
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(t.line >= prev, "line went backwards in {:?}", toks);
            prev = t.line;
        }
    }

    /// Trigger text quarantined inside a string literal and a line
    /// comment never surfaces as identifiers, and no rule fires on it —
    /// for any payload padding around the triggers.
    #[test]
    fn triggers_inside_strings_and_comments_never_fire(pad in word()) {
        let src = format!(
            "fn f() {{ let s = \"{pad} Instant::now() thread::spawn\"; }}\n\
             // {pad} SystemTime seed.wrapping_add(1)\n"
        );
        for t in lex(&src) {
            if let TokKind::Ident(id) = &t.kind {
                prop_assert!(
                    !matches!(id.as_str(), "Instant" | "thread" | "spawn" | "SystemTime"),
                    "quarantined trigger leaked as ident `{}`", id
                );
            }
        }
        let findings = lint_source("crates/core/src/search.rs", &src);
        prop_assert!(findings.is_empty(), "phantom findings: {:?}", findings);
    }

    /// The same triggers as live code *do* fire — the quarantine above
    /// is not the lexer eating the tokens outright.
    #[test]
    fn triggers_outside_strings_still_fire(pad in word()) {
        let src = format!(
            "fn {pad}() {{ let t = Instant::now(); std::thread::spawn(|| t); }}\n"
        );
        let findings = lint_source("crates/core/src/search.rs", &src);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        prop_assert!(rules.contains(&"clock-discipline"), "{:?}", findings);
        prop_assert!(rules.contains(&"spawn-discipline"), "{:?}", findings);
    }
}
