//! Property tests for the item-level parser the hot-path pass stands
//! on, mirroring `lexer_props.rs` one layer up:
//!
//! * parsing arbitrary token soup never panics and is deterministic;
//! * the extracted call-graph structure (fn identities and call shapes)
//!   is invariant under comment and whitespace perturbation — the same
//!   token stream re-spaced or re-commented must produce the same
//!   edges, else lint verdicts would depend on formatting.

use nmcs_lint::lexer::{lex, TokKind, Token};
use nmcs_lint::parser::{hot_entry_lines, parse_file, Callee, ParsedFile};
use proptest::collection::vec;
use proptest::prelude::*;

/// Runs the same lex → strip-comments → parse path `lint_source` uses.
fn parse(src: &str) -> ParsedFile {
    let all = lex(src);
    let toks: Vec<Token> = all
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment(_) | TokKind::BlockComment(_)))
        .cloned()
        .collect();
    let in_test = vec![false; toks.len()];
    let hot = hot_entry_lines(&all);
    parse_file("prop.rs", &toks, &in_test, &hot, false)
}

/// Formatting-independent projection of everything the call-graph pass
/// consumes: fn identity, ownership, hotness, and every call/macro
/// shape — deliberately excluding line numbers.
fn shape(p: &ParsedFile) -> Vec<String> {
    shape_with(p, true)
}

/// Like [`shape`] but optionally excluding the hot flag: the hot-entry
/// marker binds by *line*, so whitespace that merges or splits lines
/// legitimately changes it while the call graph must stay fixed.
fn shape_with(p: &ParsedFile, include_hot: bool) -> Vec<String> {
    let mut out: Vec<String> = p
        .fns
        .iter()
        .map(|f| {
            let calls: Vec<String> = f
                .calls
                .iter()
                .map(|c| match &c.callee {
                    Callee::Free { name } => format!("free {name}"),
                    Callee::Qualified { qual, name } => format!("qual {qual}::{name}"),
                    Callee::Method {
                        name,
                        recv,
                        recv_self_field,
                    } => format!("method {recv:?}.{name} self_field={recv_self_field}"),
                })
                .collect();
            let macros: Vec<&str> = f.macros.iter().map(|m| m.name.as_str()).collect();
            let hot = if include_hot {
                format!(" hot={}", f.hot_entry)
            } else {
                String::new()
            };
            format!(
                "{:?}/{:?}/{}{hot} test={} calls={calls:?} macros={macros:?}",
                f.qual, f.trait_name, f.name, f.in_test
            )
        })
        .collect();
    out.extend(p.types.iter().map(|t| {
        format!(
            "type {} copy={} fields={:?}",
            t.name, t.derives_copy, t.fields
        )
    }));
    out
}

/// Item-flavoured fragments: everything the parser special-cases, in
/// random order — `impl`/`trait`/`fn` headers, generics, paths, call
/// shapes, markers — so structurally broken nonsense is the common case.
fn fragment() -> BoxedStrategy<String> {
    prop_oneof![
        Just("fn ".to_string()),
        Just("impl ".to_string()),
        Just("trait ".to_string()),
        Just("struct ".to_string()),
        Just("enum ".to_string()),
        Just("mod ".to_string()),
        Just("for ".to_string()),
        Just("where ".to_string()),
        Just("let ".to_string()),
        Just("self".to_string()),
        Just("Self::".to_string()),
        Just("::<Vec<u8>>".to_string()),
        Just("<T as Game>::apply(".to_string()),
        Just("-> Vec<u8>".to_string()),
        Just("x.run(".to_string()),
        Just("self.pool.lock()".to_string()),
        Just("Box::new(".to_string()),
        Just("#[derive(Clone, Copy)]".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("// nmcs-lint: hot-entry\n".to_string()),
        Just("debug_assert!(a == b);".to_string()),
        Just("vec![".to_string()),
        Just("!=".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just(",".to_string()),
        Just(";".to_string()),
        Just(":".to_string()),
        Just("'a".to_string()),
        Just("\n".to_string()),
        Just(" ".to_string()),
        Just("Alpha".to_string()),
        Just("beta".to_string()),
    ]
    .boxed()
}

fn soup() -> BoxedStrategy<String> {
    vec(fragment(), 0..64).prop_map(|v| v.concat()).boxed()
}

/// A small well-formed module built from generated pieces: a struct, an
/// impl whose methods call each other, a trait impl, and a free fn.
/// Token text is emitted with single spaces; the perturbation tests
/// re-join the identical pieces with different separators.
fn template(methods: usize, hot_first: bool) -> Vec<String> {
    let mut t: Vec<String> = Vec::new();
    let push = |t: &mut Vec<String>, s: &str| t.push(s.to_string());
    push(&mut t, "#[derive(Clone)]");
    push(&mut t, "struct Alpha { data : Vec < u8 > , tag : Beta }");
    push(&mut t, "struct Beta ;");
    push(&mut t, "impl Alpha {");
    for i in 0..methods {
        if i == 0 && hot_first {
            push(&mut t, "// nmcs-lint: hot-entry");
        }
        t.push(format!("fn m{i} ( & mut self , k : usize ) {{"));
        if i + 1 < methods {
            t.push(format!("self . m{} ( k ) ;", i + 1));
        }
        push(&mut t, "self . tag . poke ( ) ;");
        push(&mut t, "free_helper ( k ) ;");
        push(&mut t, "let v : Vec < u8 > = Vec :: with_capacity ( k ) ;");
        push(&mut t, "v . len ( ) ;");
        push(&mut t, "}");
    }
    push(&mut t, "}");
    push(
        &mut t,
        "impl Game for Alpha { fn apply ( & mut self ) { self . m0 ( 1 ) ; } }",
    );
    push(
        &mut t,
        "fn free_helper ( k : usize ) { assert ! ( k < 9 ) ; }",
    );
    t
}

/// Separators that must be invisible to the parser (the hot-entry
/// marker line in the template carries its own newline, so comment
/// separators cannot detach it from its fn).
fn sep() -> BoxedStrategy<String> {
    prop_oneof![
        Just(" ".to_string()),
        Just("   ".to_string()),
        Just("\t".to_string()),
        Just("\n".to_string()),
        Just("\n\n".to_string()),
        Just(" /* tangent */ ".to_string()),
        Just(" // trailing note\n".to_string()),
    ]
    .boxed()
}

proptest! {
    /// Garbage in, items out — parsing arbitrary item-flavoured soup
    /// never panics, and is deterministic.
    #[test]
    fn parsing_never_panics_and_is_deterministic(src in soup()) {
        let a = parse(&src);
        let b = parse(&src);
        prop_assert_eq!(shape(&a), shape(&b));
    }

    /// Re-joining the same token pieces with different comments and
    /// whitespace must not change any extracted fn, call, or type —
    /// call-graph edges cannot depend on formatting.
    #[test]
    fn call_graph_shape_survives_comment_and_whitespace_perturbation(
        methods in 1usize..4,
        hot_first in (0u8..2).prop_map(|b| b == 1),
        seps in vec(sep(), 32..64),
    ) {
        let pieces = template(methods, hot_first);
        // One piece per line keeps the hot marker bound to exactly the
        // fn below it.
        let canonical = pieces.join("\n");
        let mut perturbed = String::new();
        for (i, piece) in pieces.iter().enumerate() {
            perturbed.push_str(piece);
            // A line-comment piece must end its line, or it would
            // swallow the following tokens.
            if piece.starts_with("//") {
                perturbed.push('\n');
            } else {
                perturbed.push_str(&seps[i % seps.len()]);
            }
        }
        let a = parse(&canonical);
        let b = parse(&perturbed);
        // The call graph must ignore formatting entirely. The hot flag
        // is excluded: it binds by line, and merging lines (a " "
        // separator) legitimately moves the marker's scope.
        prop_assert_eq!(shape_with(&a, false), shape_with(&b, false));

        // And the structure is what the template promised: one hot fn
        // iff requested, all methods owned by Alpha, the trait impl
        // owned by (Alpha, Game).
        prop_assert_eq!(a.fns.iter().filter(|f| f.hot_entry).count(), usize::from(hot_first));
        let m0 = a.fns.iter().find(|f| f.name == "m0").expect("m0 parsed");
        prop_assert_eq!(m0.qual.as_deref(), Some("Alpha"));
        let apply = a.fns.iter().find(|f| f.name == "apply").expect("apply parsed");
        prop_assert_eq!(apply.trait_name.as_deref(), Some("Game"));
    }

    /// Hot-entry markers never leak out of comments: a marker inside a
    /// string literal marks nothing.
    #[test]
    fn hot_marker_inside_string_is_inert(
        pad in vec((b'a'..b'{').prop_map(|b| b as char), 0..8)
            .prop_map(|v| v.into_iter().collect::<String>())
    ) {
        let src = format!(
            "fn quoted() {{ let s = \"// nmcs-lint: hot-entry {pad}\"; s.len(); }}\n"
        );
        let p = parse(&src);
        prop_assert!(p.fns.iter().all(|f| !f.hot_entry), "marker leaked from string");
    }
}
