//! Drives the fixture corpus: every file in `fixtures/` declares, on
//! its first line, the workspace path it impersonates and the exact set
//! of rules it expects to trip:
//!
//! ```text
//! // lint-fixture: path=crates/core/src/driver.rs expect=clock-discipline
//! // lint-fixture: path=crates/core/src/search.rs expect=clean
//! ```
//!
//! The harness asserts the *set equality* of unwaived rule ids — a
//! fixture firing extra rules fails just as loudly as one firing none.

use nmcs_lint::lint_source;
use std::collections::BTreeSet;
use std::path::Path;

struct Directive {
    path: String,
    expect: BTreeSet<String>,
}

fn parse_directive(name: &str, first_line: &str) -> Directive {
    let rest = first_line
        .strip_prefix("// lint-fixture:")
        .unwrap_or_else(|| panic!("{name}: first line must be a `// lint-fixture:` directive"))
        .trim();
    let mut path = None;
    let mut expect = None;
    for field in rest.split_whitespace() {
        if let Some(p) = field.strip_prefix("path=") {
            path = Some(p.to_string());
        } else if let Some(e) = field.strip_prefix("expect=") {
            expect = Some(if e == "clean" {
                BTreeSet::new()
            } else {
                e.split(',').map(str::to_string).collect()
            });
        } else {
            panic!("{name}: unknown directive field `{field}`");
        }
    }
    Directive {
        path: path.unwrap_or_else(|| panic!("{name}: directive missing path=")),
        expect: expect.unwrap_or_else(|| panic!("{name}: directive missing expect=")),
    }
}

#[test]
fn every_fixture_fires_exactly_its_declared_rules() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut seen = 0usize;
    let mut bad = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let directive = parse_directive(&name, src.lines().next().unwrap_or(""));
        let findings = lint_source(&directive.path, &src);
        let fired: BTreeSet<String> = findings
            .iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule.to_string())
            .collect();
        assert_eq!(
            fired, directive.expect,
            "fixture {name} (as {}): findings were {findings:#?}",
            directive.path
        );
        seen += 1;
        if !directive.expect.is_empty() {
            bad += 1;
        }
    }
    // The corpus must keep covering both sides of every rule family.
    assert!(seen >= 14, "fixture corpus shrank to {seen} files");
    assert!(bad >= 9, "known-bad coverage shrank to {bad} fixtures");
}
