//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rules in this crate match *token sequences*, so the lexer's one
//! job is to never confuse code with non-code: string literals (plain,
//! raw, byte), char literals, lifetimes, and both comment forms must
//! come out as single tokens with their content quarantined. There is
//! deliberately no attempt at full Rust grammar — no `syn` exists in
//! the vendor set, and the rules need token shapes, not ASTs.
//!
//! Guarantees the proptests in `tests/lexer_props.rs` pin down:
//!
//! * lexing never panics on arbitrary input (garbage in, tokens out);
//! * rule-relevant identifiers inside strings or comments never
//!   surface as [`TokKind::Ident`];
//! * line numbers are 1-based and monotonically non-decreasing.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, without the `r#`).
    Ident(String),
    /// A lifetime such as `'a` (content discarded).
    Lifetime,
    /// A numeric literal (value discarded).
    Num,
    /// String literal content — plain `"…"`, raw `r#"…"#`, or byte.
    Str(String),
    /// A char literal such as `'x'` or `'\n'` (content discarded).
    Char,
    /// Any single punctuation character.
    Punct(char),
    /// `// …` comment content (without the slashes).
    LineComment(String),
    /// `/* … */` comment content, nesting folded in.
    BlockComment(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    /// Consumes a `// …` comment; the leading slashes are already gone.
    fn line_comment(&mut self, line: u32) {
        let mut content = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            content.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment(content), line);
    }

    /// Consumes a `/* … */` comment (nesting-aware); `/*` already gone.
    fn block_comment(&mut self, line: u32) {
        let mut content = String::new();
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            if c == '*' && self.peek() == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                content.push_str("*/");
            } else if c == '/' && self.peek() == Some('*') {
                self.bump();
                depth += 1;
                content.push_str("/*");
            } else {
                content.push(c);
            }
        }
        // An unterminated comment swallows the rest of the file, which
        // is exactly what rustc would reject anyway.
        self.push(TokKind::BlockComment(content), line);
    }

    /// Consumes a `"…"` body with escapes; the opening quote is gone.
    fn string_body(&mut self, line: u32) {
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // The escaped character never terminates the string,
                    // so consume it blindly (covers \" and \\).
                    if let Some(e) = self.bump() {
                        content.push('\\');
                        content.push(e);
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        self.push(TokKind::Str(content), line);
    }

    /// Consumes a raw string `r##"…"##` given the hash count; the
    /// opening `r##"` is gone.
    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut content = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A candidate terminator: `"` followed by `hashes` #s.
                let mut seen = 0usize;
                while seen < hashes && self.peek() == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break 'outer;
                }
                content.push('"');
                for _ in 0..seen {
                    content.push('#');
                }
            } else {
                content.push(c);
            }
        }
        self.push(TokKind::Str(content), line);
    }

    /// Handles `'` — lifetime, or char literal.
    fn quote(&mut self, line: u32) {
        match self.peek() {
            // `'a` with no closing quote right after the ident: lifetime.
            Some(c) if is_ident_start(c) => {
                // Look ahead: consume the ident, then decide by whether a
                // `'` closes it ('x' is a char, 'xs in a pattern is a
                // lifetime-ish label — and 'static has many chars).
                let mut ident = String::new();
                while let Some(c) = self.peek() {
                    if is_ident_continue(c) {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if ident.chars().count() == 1 && self.peek() == Some('\'') {
                    self.bump();
                    self.push(TokKind::Char, line);
                } else {
                    self.push(TokKind::Lifetime, line);
                }
            }
            // Escape: definitely a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // The escaped character.
                             // Unicode escapes have a {...} payload before the quote.
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, line);
            }
            // Any other single char then a quote: char literal.
            Some(_) => {
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, line);
            }
            None => self.push(TokKind::Punct('\''), line),
        }
    }

    /// Raw-prefix handling once an ident starting with `r`/`b`/`br` is
    /// fully read: returns true if it consumed a literal.
    fn try_raw_literal(&mut self, ident: &str, line: u32) -> bool {
        let raw = matches!(ident, "r" | "br");
        let plain_bytes = ident == "b";
        if raw {
            // r"..."  r#"..."#  (and br variants). Count hashes with a
            // cloned lookahead and only commit when a quote follows —
            // `r#ident` is a raw identifier, not a string.
            let mut hashes = 0usize;
            let mut look = self.chars.clone();
            while look.peek() == Some(&'#') {
                look.next();
                hashes += 1;
            }
            if look.peek() == Some(&'"') {
                for _ in 0..=hashes {
                    self.bump(); // The #s and the opening quote.
                }
                self.raw_string_body(hashes, line);
                return true;
            }
            // `r#ident`: strip the hash and lex the identifier normally.
            if hashes >= 1 && self.peek() == Some('#') {
                self.bump();
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Ident(name), line);
                return true;
            }
            return false;
        }
        if plain_bytes {
            if self.peek() == Some('"') {
                self.bump();
                self.string_body(line);
                return true;
            }
            if self.peek() == Some('\'') {
                self.bump();
                self.quote(line);
                return true;
            }
        }
        false
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            if c == '/' {
                self.bump();
                match self.peek() {
                    Some('/') => {
                        self.bump();
                        self.line_comment(line);
                    }
                    Some('*') => {
                        self.bump();
                        self.block_comment(line);
                    }
                    _ => self.push(TokKind::Punct('/'), line),
                }
                continue;
            }
            if c == '"' {
                self.bump();
                self.string_body(line);
                continue;
            }
            if c == '\'' {
                self.bump();
                self.quote(line);
                continue;
            }
            if is_ident_start(c) {
                let mut ident = String::new();
                while let Some(c) = self.peek() {
                    if is_ident_continue(c) {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if matches!(ident.as_str(), "r" | "b" | "br") && self.try_raw_literal(&ident, line)
                {
                    continue;
                }
                self.push(TokKind::Ident(ident), line);
                continue;
            }
            if c.is_ascii_digit() {
                // Good enough for linting: one Num token per alnum run;
                // `1.5` comes out as Num Punct('.') Num, which no rule
                // cares about.
                while let Some(c) = self.peek() {
                    if is_ident_continue(c) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Num, line);
                continue;
            }
            self.bump();
            self.push(TokKind::Punct(c), line);
        }
        self.out
    }
}

/// Lexes `src` into tokens. Never panics; unterminated literals or
/// comments absorb the rest of the input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().peekable(),
        line: 1,
        out: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_strings_and_comments_are_distinct() {
        let toks = kinds(r#"let x = "Instant::now()"; // thread::spawn"#);
        assert!(toks.contains(&TokKind::Ident("let".into())));
        assert!(toks.contains(&TokKind::Str("Instant::now()".into())));
        assert!(toks.contains(&TokKind::LineComment(" thread::spawn".into())));
        assert!(!toks.contains(&TokKind::Ident("Instant".into())));
        assert!(!toks.contains(&TokKind::Ident("spawn".into())));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"unwrap() "quoted""#; let r#type = 1;"##);
        assert!(toks.contains(&TokKind::Str("unwrap() \"quoted\"".into())));
        assert!(toks.contains(&TokKind::Ident("type".into())));
        assert!(!toks.contains(&TokKind::Ident("unwrap".into())));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| **t == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| **t == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(
            toks,
            vec![
                TokKind::Ident("a".into()),
                TokKind::BlockComment(" outer /* inner */ still ".into()),
                TokKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_strings_quarantine_content() {
        let toks = kinds(r#"let b = b"SystemTime"; let c = b'x';"#);
        assert!(toks.contains(&TokKind::Str("SystemTime".into())));
        assert!(toks.contains(&TokKind::Char));
        assert!(!toks.contains(&TokKind::Ident("SystemTime".into())));
    }
}
