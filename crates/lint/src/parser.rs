//! A lightweight item-level parser on top of [`crate::lexer`], just deep
//! enough for call-graph linting: `fn` items (with their `impl`/`trait`
//! owner and parameter types), call sites, macro invocations, and
//! `struct`/`enum` declarations (with `Copy`-derive detection).
//!
//! There is deliberately no `syn` in the vendor set, and none is needed:
//! the hot-path pass (see [`crate::hotpath`]) wants *names and shapes*,
//! not a typed AST. The parser is a single forward walk over the
//! comment-stripped token stream with balanced-bracket skipping; like the
//! lexer it must never panic on arbitrary input (pinned by
//! `tests/parser_props.rs`), so every lookup is bounds-checked and every
//! loop makes forward progress.
//!
//! What it extracts per function:
//!
//! * owner: the `impl` self type (last path ident before `{`, after `for`
//!   when present) or the enclosing `trait` name for default bodies, plus
//!   the trait being implemented when there is one;
//! * parameters (`name: Type`, head type ident only) and simple local
//!   bindings (`let x = Type::…` / `let x: Type = …`), used by the
//!   hot-path pass to type method receivers;
//! * call sites: free `foo(…)`, qualified `Path::foo(…)` (including the
//!   `<T as Trait>::foo(…)` shape), and method `.foo(…)` with the
//!   receiver ident when it is a plain variable or `self.field`;
//! * macro invocations `name!(…)` — except `debug_assert*!`, whose whole
//!   argument group is skipped because it does not exist in release
//!   builds and therefore cannot violate a hot-path contract;
//! * the `// nmcs-lint: hot-entry` marker on the line of (or directly
//!   above) a `fn`, which declares that function a hot-path root.

use crate::lexer::{TokKind, Token};

/// One `name: Type` function parameter (head type ident only; `&mut
/// Vec<G>` records `Vec`, `&G` records `G`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// The shape of one call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(…)` with no path qualifier or receiver.
    Free { name: String },
    /// `Qual::foo(…)` (only the last two path segments are kept; the
    /// `<T as Trait>::foo` shape records the trait as the qualifier).
    Qualified { qual: String, name: String },
    /// `recv.foo(…)`. `recv` is the ident directly before the dot when
    /// there is one; `recv_self_field` marks the `self.field.foo(…)`
    /// shape so the receiver can be typed from the owner's field list.
    Method {
        name: String,
        recv: Option<String>,
        recv_self_field: bool,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    pub callee: Callee,
    pub line: u32,
}

/// One macro invocation (`name!…`) inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroUse {
    pub name: String,
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// `impl` self type, or the trait name for trait default bodies.
    pub qual: Option<String>,
    /// The trait being implemented (also set for trait default bodies).
    pub trait_name: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace (== `line` for bodiless items).
    pub end_line: u32,
    /// Declared a hot-path root via `// nmcs-lint: hot-entry`.
    pub hot_entry: bool,
    /// Inside a `#[cfg(test)]` region or a test-context file.
    pub in_test: bool,
    pub params: Vec<Param>,
    /// Simple `let` bindings with an inferable head type.
    pub lets: Vec<(String, String)>,
    pub calls: Vec<Call>,
    pub macros: Vec<MacroUse>,
}

/// One `struct`/`enum`/`union` declaration.
#[derive(Debug, Clone)]
pub struct TypeDecl {
    pub name: String,
    /// A `#[derive(…)]` directly above mentions `Copy`.
    pub derives_copy: bool,
    /// Named fields with their head type ident (structs only).
    pub fields: Vec<(String, String)>,
}

/// Everything the hot-path pass needs from one file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    pub rel: String,
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeDecl>,
}

/// The in-source marker declaring the next `fn` a hot-path root.
pub const HOT_ENTRY_MARKER: &str = "hot-entry";

/// Lines carrying a `// nmcs-lint: hot-entry` marker.
pub fn hot_entry_lines(all_toks: &[Token]) -> Vec<u32> {
    all_toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::LineComment(c) => {
                let body = c.trim_start().strip_prefix("nmcs-lint:")?.trim_start();
                body.starts_with(HOT_ENTRY_MARKER).then_some(t.line)
            }
            _ => None,
        })
        .collect()
}

struct Parser<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
    hot_lines: &'a [u32],
    fns: Vec<FnItem>,
    types: Vec<TypeDecl>,
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match &toks.get(i)?.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i)?.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

fn is_upper_initial(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Keywords that look like free calls when followed by `(` but are not.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "as"
            | "in"
            | "move"
            | "ref"
            | "mut"
            | "let"
            | "else"
            | "unsafe"
            | "where"
            | "fn"
            | "impl"
            | "dyn"
    )
}

impl<'a> Parser<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        ident_at(self.toks, i)
    }

    fn punct(&self, i: usize) -> Option<char> {
        punct_at(self.toks, i)
    }

    /// `::` at positions i, i+1.
    fn path_sep(&self, i: usize) -> bool {
        self.punct(i) == Some(':') && self.punct(i + 1) == Some(':')
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Skips a balanced `<…>` group whose `<` is at `i`; returns the
    /// index just past the matching `>`. A `>` that is the tail of a
    /// `->` arrow does not close the group (fn-pointer bounds like
    /// `F: Fn() -> T` appear inside generics).
    fn skip_angles(&self, i: usize) -> usize {
        debug_assert_eq!(self.punct(i), Some('<'));
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            match self.punct(j) {
                Some('<') => depth += 1,
                Some('>') if self.punct(j.wrapping_sub(1)) != Some('-') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skips a balanced bracket group (`(…)`, `[…]`, or `{…}`) whose
    /// opener is at `i`; returns the index just past the closer.
    fn skip_group(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            match self.punct(j) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Head type ident of a type expression starting at `i`, scanning at
    /// most to `end`: the last segment of the first `::`-path, skipping
    /// `&`/`mut`/`dyn`/lifetimes (`&'a mut core::Foo<G>` → `Foo`).
    fn head_type(&self, i: usize, end: usize) -> Option<String> {
        let mut j = i;
        while j < end {
            match &self.toks.get(j)?.kind {
                TokKind::Ident(s) if !matches!(s.as_str(), "mut" | "dyn" | "impl" | "const") => {
                    // Follow the path to its last segment.
                    let mut last = s.as_str();
                    let mut k = j;
                    while self.path_sep(k + 1) {
                        match self.ident(k + 3) {
                            Some(seg) => {
                                last = seg;
                                k += 3;
                            }
                            None => break,
                        }
                    }
                    return Some(last.to_string());
                }
                TokKind::Ident(_) | TokKind::Lifetime | TokKind::Punct('&') => j += 1,
                _ => return None,
            }
        }
        None
    }

    /// Parses the parameter list between `open` (at `(`) and its closing
    /// paren, returning `(params, index past the `)`)`.
    fn parse_params(&self, open: usize) -> (Vec<Param>, usize) {
        let close = self.skip_group(open, '(', ')');
        let mut params = Vec::new();
        let mut j = open + 1;
        while j + 1 < close {
            // One parameter: tokens up to a top-level `,` or the `)`.
            let mut k = j;
            let mut colon = None;
            while k + 1 < close {
                match self.punct(k) {
                    Some('(') => {
                        k = self.skip_group(k, '(', ')');
                        continue;
                    }
                    Some('[') => {
                        k = self.skip_group(k, '[', ']');
                        continue;
                    }
                    Some('<') => {
                        k = self.skip_angles(k);
                        continue;
                    }
                    Some(',') => break,
                    Some(':') if colon.is_none() && self.punct(k + 1) != Some(':') => {
                        colon = Some(k);
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(c) = colon {
                // Pattern side: the last ident before the colon names the
                // binding for all the shapes that matter (`x`, `mut x`).
                let name = (j..c).rev().find_map(|p| self.ident(p));
                let ty = self.head_type(c + 1, k + 1);
                if let (Some(name), Some(ty)) = (name, ty) {
                    if !is_expr_keyword(name) {
                        params.push(Param {
                            name: name.to_string(),
                            ty,
                        });
                    }
                }
            }
            if k <= j {
                break;
            }
            j = k + 1;
        }
        (params, close)
    }

    /// Whether a hot-entry marker sits on `line` or the line above.
    fn is_hot(&self, line: u32) -> bool {
        self.hot_lines.iter().any(|&l| l == line || l + 1 == line)
    }

    /// Parses one `fn` whose `fn` keyword is at `i`; returns the index
    /// just past the item.
    fn parse_fn(&mut self, i: usize, qual: Option<&str>, trait_name: Option<&str>) -> usize {
        let line = self.line(i);
        let Some(name) = self.ident(i + 1) else {
            return i + 1;
        };
        let name = name.to_string();
        let mut j = i + 2;
        if self.punct(j) == Some('<') {
            j = self.skip_angles(j);
        }
        if self.punct(j) != Some('(') {
            return i + 1;
        }
        let (params, after_params) = self.parse_params(j);
        // Scan past return type and `where` clause to the body (or `;`
        // for trait method declarations).
        let mut k = after_params;
        let mut body = None;
        while k < self.toks.len() {
            match self.punct(k) {
                Some(';') => break,
                Some('{') => {
                    body = Some(k);
                    break;
                }
                Some('<') => {
                    k = self.skip_angles(k);
                    continue;
                }
                Some('(') => {
                    k = self.skip_group(k, '(', ')');
                    continue;
                }
                Some('[') => {
                    k = self.skip_group(k, '[', ']');
                    continue;
                }
                _ => k += 1,
            }
        }
        let mut item = FnItem {
            name,
            qual: qual.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            line,
            end_line: line,
            hot_entry: self.is_hot(line),
            in_test: self.in_test.get(i).copied().unwrap_or(false),
            params,
            lets: Vec::new(),
            calls: Vec::new(),
            macros: Vec::new(),
        };
        let Some(open) = body else {
            self.fns.push(item);
            return (k + 1).max(i + 2);
        };
        let close = self.skip_group(open, '{', '}');
        item.end_line = self.line(close.saturating_sub(1));
        self.scan_body(open + 1, close.saturating_sub(1), &mut item);
        self.fns.push(item);
        close.max(i + 2)
    }

    /// Extracts calls, macros, and simple `let` types from a body range.
    fn scan_body(&self, start: usize, end: usize, item: &mut FnItem) {
        let mut j = start;
        while j < end {
            let Some(id) = self.ident(j) else {
                // Method call: `.name` then `(` (or turbofish then `(`).
                if self.punct(j) == Some('.') {
                    if let Some(m) = self.ident(j + 1) {
                        let mut k = j + 2;
                        if self.path_sep(k) && self.punct(k + 2) == Some('<') {
                            k = self.skip_angles(k + 2);
                        }
                        if self.punct(k) == Some('(') {
                            let recv = ident_at(self.toks, j.wrapping_sub(1)).filter(|r| *r != "}");
                            let recv_self_field = recv.is_some()
                                && self.punct(j.wrapping_sub(2)) == Some('.')
                                && self.ident(j.wrapping_sub(3)) == Some("self");
                            item.calls.push(Call {
                                callee: Callee::Method {
                                    name: m.to_string(),
                                    recv: recv.map(str::to_string),
                                    recv_self_field,
                                },
                                line: self.line(j + 1),
                            });
                            j = k;
                            continue;
                        }
                    }
                }
                j += 1;
                continue;
            };

            // `debug_assert*!` groups vanish in release builds: skip.
            if id.starts_with("debug_assert") && self.punct(j + 1) == Some('!') {
                let mut k = j + 2;
                match self.punct(k) {
                    Some('(') => k = self.skip_group(k, '(', ')'),
                    Some('[') => k = self.skip_group(k, '[', ']'),
                    Some('{') => k = self.skip_group(k, '{', '}'),
                    _ => k = j + 2,
                }
                j = k.max(j + 2);
                continue;
            }

            // Macro invocation (`!=` is a comparison, not a macro).
            if self.punct(j + 1) == Some('!') && self.punct(j + 2) != Some('=') {
                item.macros.push(MacroUse {
                    name: id.to_string(),
                    line: self.line(j),
                });
                j += 2;
                continue;
            }

            // Simple `let` binding: `let [mut] x: Type = …` or
            // `let [mut] x = Type::…`.
            if id == "let" {
                let mut k = j + 1;
                if self.ident(k) == Some("mut") {
                    k += 1;
                }
                if let Some(binding) = self.ident(k) {
                    if !is_expr_keyword(binding) {
                        let ty = if self.punct(k + 1) == Some(':') && self.punct(k + 2) != Some(':')
                        {
                            self.head_type(k + 2, (k + 16).min(end))
                        } else if self.punct(k + 1) == Some('=') {
                            match self.ident(k + 2) {
                                Some(t) if is_upper_initial(t) && self.path_sep(k + 3) => {
                                    Some(t.to_string())
                                }
                                _ => None,
                            }
                        } else {
                            None
                        };
                        if let Some(ty) = ty {
                            item.lets.push((binding.to_string(), ty));
                        }
                    }
                }
                j += 1;
                continue;
            }

            if is_expr_keyword(id) {
                j += 1;
                continue;
            }

            // Qualified path or free call: collect `a::b::c`.
            let mut segs = vec![id];
            let mut p = j;
            while self.path_sep(p + 1) {
                match self.ident(p + 3) {
                    Some(seg) => {
                        segs.push(seg);
                        p += 3;
                    }
                    None => break,
                }
            }
            let mut q = p + 1;
            // Turbofish: `path::<T>(…)`.
            if self.path_sep(q) && self.punct(q + 2) == Some('<') {
                q = self.skip_angles(q + 2);
            }
            if self.punct(q) != Some('(') {
                j += 1;
                continue;
            }
            let line = self.line(p);
            if segs.len() >= 2 {
                item.calls.push(Call {
                    callee: Callee::Qualified {
                        qual: segs[segs.len() - 2].to_string(),
                        name: segs[segs.len() - 1].to_string(),
                    },
                    line,
                });
                j = q;
                continue;
            }
            // Single segment. `fn foo(` definitions and `.foo(` tails are
            // handled elsewhere; `::foo(` here is the tail of a
            // `<T as Trait>::foo(` cast path.
            let prev = j.wrapping_sub(1);
            if self.ident(prev) == Some("fn") || self.punct(prev) == Some('.') {
                j += 1;
                continue;
            }
            if self.punct(prev) == Some(':') {
                if let Some(qual) = self.qual_from_as_cast(j) {
                    item.calls.push(Call {
                        callee: Callee::Qualified {
                            qual,
                            name: segs[0].to_string(),
                        },
                        line,
                    });
                }
                j = q;
                continue;
            }
            // Uppercase-initial free "calls" are tuple-struct or enum
            // constructors (`Some(…)`, `Undo(…)`), never workspace fns.
            if !is_upper_initial(segs[0]) {
                item.calls.push(Call {
                    callee: Callee::Free {
                        name: segs[0].to_string(),
                    },
                    line,
                });
            }
            j = q;
        }
    }

    /// For `… > :: name (` at `name_idx`, walks back over a
    /// `<T as Trait>` cast and returns `Trait`.
    fn qual_from_as_cast(&self, name_idx: usize) -> Option<String> {
        // name_idx-1, -2 are `::`; -3 should be `>`.
        if self.punct(name_idx.wrapping_sub(3)) != Some('>') {
            return None;
        }
        let mut depth = 1usize;
        let mut j = name_idx.wrapping_sub(4);
        let mut after_as = None;
        for _ in 0..32 {
            match self.punct(j) {
                Some('>') => depth += 1,
                Some('<') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if self.ident(j) == Some("as") {
                        after_as = self.ident(j + 1).map(str::to_string);
                    }
                }
            }
            if j == 0 {
                break;
            }
            j -= 1;
        }
        after_as
    }

    /// Parses the items in `start..end` with the given owner context.
    fn parse_items(
        &mut self,
        start: usize,
        end: usize,
        qual: Option<&str>,
        trait_name: Option<&str>,
    ) {
        let mut derive_copy_pending = false;
        let mut i = start;
        while i < end {
            // Attributes: detect `#[derive(… Copy …)]`, skip the group.
            if self.punct(i) == Some('#') && self.punct(i + 1) == Some('[') {
                let close = self.skip_group(i + 1, '[', ']');
                if self.ident(i + 2) == Some("derive") {
                    derive_copy_pending |= (i + 2..close).any(|k| self.ident(k) == Some("Copy"));
                }
                i = close.max(i + 2);
                continue;
            }
            let Some(id) = self.ident(i) else {
                i += 1;
                continue;
            };
            match id {
                "fn" => {
                    derive_copy_pending = false;
                    i = self.parse_fn(i, qual, trait_name);
                }
                "impl" if qual.is_none() => {
                    derive_copy_pending = false;
                    i = self.parse_impl(i);
                }
                "trait" if qual.is_none() => {
                    derive_copy_pending = false;
                    i = self.parse_trait(i);
                }
                "mod" => {
                    derive_copy_pending = false;
                    // `mod name {` recurses; `mod name;` skips.
                    let mut k = i + 2;
                    while k < end && !matches!(self.punct(k), Some('{') | Some(';')) {
                        k += 1;
                    }
                    if self.punct(k) == Some('{') {
                        let close = self.skip_group(k, '{', '}');
                        self.parse_items(k + 1, close.saturating_sub(1), None, None);
                        i = close.max(i + 2);
                    } else {
                        i = (k + 1).max(i + 2);
                    }
                }
                "struct" | "enum" | "union" => {
                    i = self.parse_type_decl(i, derive_copy_pending);
                    derive_copy_pending = false;
                }
                "macro_rules" => {
                    derive_copy_pending = false;
                    // Skip the whole definition: its body is patterns,
                    // not code.
                    let mut k = i + 1;
                    while k < end && self.punct(k) != Some('{') {
                        k += 1;
                    }
                    i = if self.punct(k) == Some('{') {
                        self.skip_group(k, '{', '}').max(i + 2)
                    } else {
                        i + 2
                    };
                }
                _ => i += 1,
            }
        }
    }

    /// Parses an `impl` header at `i` and recurses into its body.
    fn parse_impl(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j) == Some('<') {
            j = self.skip_angles(j);
        }
        // Collect path idents at angle-depth 0 until `{`; `for` switches
        // from the trait to the self type, `where` ends collection.
        let mut trait_last: Option<&str> = None;
        let mut last: Option<&str> = None;
        let mut body = None;
        while j < self.toks.len() {
            match self.punct(j) {
                Some('{') => {
                    body = Some(j);
                    break;
                }
                Some(';') => break,
                Some('<') => {
                    j = self.skip_angles(j);
                    continue;
                }
                Some('(') => {
                    j = self.skip_group(j, '(', ')');
                    continue;
                }
                _ => {}
            }
            match self.ident(j) {
                Some("for") => {
                    trait_last = last.take();
                }
                Some("where") => {
                    // Skip the clause without collecting bound names.
                    while j < self.toks.len() && self.punct(j) != Some('{') {
                        if self.punct(j) == Some('<') {
                            j = self.skip_angles(j);
                        } else {
                            j += 1;
                        }
                    }
                    continue;
                }
                Some(id) if !is_expr_keyword(id) => last = Some(id),
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            return (j + 1).max(i + 2);
        };
        let close = self.skip_group(open, '{', '}');
        let qual = last.map(str::to_string);
        let trait_name = trait_last.map(str::to_string);
        self.parse_items(
            open + 1,
            close.saturating_sub(1),
            qual.as_deref(),
            trait_name.as_deref(),
        );
        close.max(i + 2)
    }

    /// Parses a `trait Name … { … }` block at `i`; default method bodies
    /// are owned by the trait itself.
    fn parse_trait(&mut self, i: usize) -> usize {
        let name = self.ident(i + 1).map(str::to_string);
        let mut j = i + 2;
        while j < self.toks.len() && !matches!(self.punct(j), Some('{') | Some(';')) {
            if self.punct(j) == Some('<') {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        if self.punct(j) != Some('{') {
            return (j + 1).max(i + 2);
        }
        let close = self.skip_group(j, '{', '}');
        self.parse_items(
            j + 1,
            close.saturating_sub(1),
            name.as_deref(),
            name.as_deref(),
        );
        close.max(i + 2)
    }

    /// Parses `struct`/`enum`/`union` at `i`, recording name, the
    /// pending `Copy` derive, and named struct fields with head types.
    fn parse_type_decl(&mut self, i: usize, derives_copy: bool) -> usize {
        let Some(name) = self.ident(i + 1) else {
            return i + 1;
        };
        let is_struct = self.ident(i) == Some("struct");
        let name = name.to_string();
        let mut j = i + 2;
        if self.punct(j) == Some('<') {
            j = self.skip_angles(j);
        }
        // Tuple struct `struct X(…);` or unit `struct X;`.
        let mut fields = Vec::new();
        let end = match self.punct(j) {
            Some('(') => {
                let close = self.skip_group(j, '(', ')');
                // Trailing `;`.
                close + usize::from(self.punct(close) == Some(';'))
            }
            Some(';') => j + 1,
            _ => {
                // Skip a `where` clause, then the brace body.
                while j < self.toks.len() && self.punct(j) != Some('{') {
                    if self.punct(j) == Some('<') {
                        j = self.skip_angles(j);
                    } else {
                        j += 1;
                    }
                }
                let close = self.skip_group(j, '{', '}');
                if is_struct {
                    // Named fields: ident `:` type, at depth 1.
                    let mut k = j + 1;
                    while k + 1 < close {
                        match self.punct(k) {
                            Some('<') => {
                                k = self.skip_angles(k);
                                continue;
                            }
                            Some('(') => {
                                k = self.skip_group(k, '(', ')');
                                continue;
                            }
                            Some('{') => {
                                k = self.skip_group(k, '{', '}');
                                continue;
                            }
                            _ => {}
                        }
                        if let Some(f) = self.ident(k) {
                            if self.punct(k + 1) == Some(':')
                                && self.punct(k + 2) != Some(':')
                                && !is_expr_keyword(f)
                            {
                                // Field type runs to the next top-level `,`.
                                let mut t = k + 2;
                                while t < close {
                                    match self.punct(t) {
                                        Some(',') => break,
                                        Some('<') => t = self.skip_angles(t),
                                        Some('(') => t = self.skip_group(t, '(', ')'),
                                        _ => t += 1,
                                    }
                                }
                                if let Some(ty) = self.head_type(k + 2, t) {
                                    fields.push((f.to_string(), ty));
                                }
                                k = t;
                                continue;
                            }
                        }
                        k += 1;
                    }
                }
                close
            }
        };
        self.types.push(TypeDecl {
            name,
            derives_copy,
            fields,
        });
        end.max(i + 2)
    }
}

/// Parses one file's comment-stripped tokens into items. `in_test` is
/// parallel to `toks` (see `crate::test_regions`); `hot_lines` are the
/// lines carrying hot-entry markers (from the unstripped stream).
pub fn parse_file(
    rel: &str,
    toks: &[Token],
    in_test: &[bool],
    hot_lines: &[u32],
    is_test_path: bool,
) -> ParsedFile {
    let mut p = Parser {
        toks,
        in_test,
        hot_lines,
        fns: Vec::new(),
        types: Vec::new(),
    };
    p.parse_items(0, toks.len(), None, None);
    let mut fns = p.fns;
    if is_test_path {
        for f in &mut fns {
            f.in_test = true;
        }
    }
    ParsedFile {
        rel: rel.to_string(),
        fns,
        types: p.types,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let all = lex(src);
        let hot = hot_entry_lines(&all);
        let toks: Vec<Token> = all
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment(_) | TokKind::BlockComment(_)))
            .collect();
        let in_test = crate::test_regions(&toks);
        parse_file("crates/core/src/x.rs", &toks, &in_test, &hot, false)
    }

    #[test]
    fn impl_blocks_give_fns_their_owner() {
        let p = parse(
            "impl<G: Game> PlayoutScratch<G> { pub fn run(&mut self, g: &mut G) -> Score { g.play(&mv) } }\n\
             impl Game for SumGame { fn apply(&mut self, mv: &u8) -> Undo<Self> { self.play(mv) } }\n\
             fn free_helper(x: usize) { other(x); }\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "run");
        assert_eq!(p.fns[0].qual.as_deref(), Some("PlayoutScratch"));
        assert_eq!(p.fns[0].trait_name, None);
        assert_eq!(p.fns[1].qual.as_deref(), Some("SumGame"));
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Game"));
        assert_eq!(p.fns[2].qual, None);
        assert_eq!(
            p.fns[2].calls,
            vec![Call {
                callee: Callee::Free {
                    name: "other".into()
                },
                line: 3
            }]
        );
    }

    #[test]
    fn call_shapes_and_receivers() {
        let p = parse(
            "fn f(playout: &mut PlayoutScratch<G>, seq: &mut Vec<u8>) {\n\
               playout.run_undo(pos);\n\
               self.moves.clear();\n\
               Undo::snapshot(x);\n\
               let xs: Vec<u8> = ys.iter().collect::<Vec<_>>();\n\
               <G as Game>::apply(pos, mv);\n\
             }\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, "PlayoutScratch");
        assert_eq!(f.params[1].ty, "Vec");
        let has = |c: &Callee| f.calls.iter().any(|x| &x.callee == c);
        assert!(has(&Callee::Method {
            name: "run_undo".into(),
            recv: Some("playout".into()),
            recv_self_field: false,
        }));
        assert!(has(&Callee::Method {
            name: "clear".into(),
            recv: Some("moves".into()),
            recv_self_field: true,
        }));
        assert!(has(&Callee::Qualified {
            qual: "Undo".into(),
            name: "snapshot".into()
        }));
        assert!(has(&Callee::Method {
            name: "collect".into(),
            recv: None,
            recv_self_field: false,
        }));
        assert!(has(&Callee::Qualified {
            qual: "Game".into(),
            name: "apply".into()
        }));
    }

    #[test]
    fn hot_entry_marker_binds_to_the_next_fn() {
        let p = parse(
            "// nmcs-lint: hot-entry\n\
             fn hot() {}\n\
             fn cold() {}\n",
        );
        assert!(p.fns[0].hot_entry);
        assert!(!p.fns[1].hot_entry);
    }

    #[test]
    fn debug_assert_groups_are_invisible() {
        let p = parse("fn f() { debug_assert!(self.check_alloc()); real(); }\n");
        assert_eq!(p.fns[0].calls.len(), 1);
        assert!(matches!(
            &p.fns[0].calls[0].callee,
            Callee::Free { name } if name == "real"
        ));
    }

    #[test]
    fn type_decls_record_copy_and_fields() {
        let p = parse(
            "#[derive(Clone, Copy)] pub struct Mv { pub cell: u16 }\n\
             #[derive(Clone)] struct Board { cols: Vec<Vec<u8>>, moves: Vec<Mv> }\n\
             enum Kind { A, B(u8) }\n",
        );
        assert_eq!(p.types.len(), 3);
        assert!(p.types[0].derives_copy);
        assert!(!p.types[1].derives_copy);
        assert_eq!(p.types[1].fields[0], ("cols".into(), "Vec".into()));
        assert_eq!(p.types[1].fields[1], ("moves".into(), "Vec".into()));
        assert!(!p.types[2].derives_copy);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p = parse("#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}\n");
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        let real = p.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(helper.in_test);
        assert!(!real.in_test);
    }

    #[test]
    fn macros_are_recorded_and_tuple_ctors_are_not_calls() {
        let p = parse("fn f() { let v = vec![1]; format!(\"x\"); Some(3); okay(); }\n");
        let names: Vec<&str> = p.fns[0].macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["vec", "format"]);
        assert_eq!(p.fns[0].calls.len(), 1, "{:?}", p.fns[0].calls);
    }
}
