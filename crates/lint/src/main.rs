//! `nmcs-lint` CLI.
//!
//! ```text
//! nmcs-lint [--root PATH] [--deny] [--list-rules] [--format text|json]
//! ```
//!
//! Advisory by default (exit 0 either way); `--deny` exits 1 when any
//! unwaived finding remains — that is the mode CI and `tables --lint`
//! run. `--format json` prints every finding (waived included) as the
//! machine-readable array from [`nmcs_lint::findings_to_json`], the
//! same serialisation `tables --lint` consumes. Exit 2 means the
//! invocation itself failed (bad flag, IO error).

use nmcs_lint::{findings_to_json, lint_workspace, rule_counts, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("nmcs-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "nmcs-lint: --format requires `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{:<18} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: nmcs-lint [--root PATH] [--deny] [--list-rules] \
                     [--format text|json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nmcs-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nmcs-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let unwaived = findings.iter().filter(|f| !f.waived).count();

    if json {
        println!("{}", findings_to_json(&findings));
        if deny && unwaived > 0 {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let waived = findings.len() - unwaived;
    for f in &findings {
        if !f.waived {
            println!("{f}");
        }
    }

    if findings.is_empty() {
        println!("nmcs-lint: clean (no findings, no waivers)");
    } else {
        println!("---");
        for (rule, (open, excused)) in rule_counts(&findings) {
            println!("{rule:<18} {open} unwaived, {excused} waived");
        }
        println!("total              {unwaived} unwaived, {waived} waived");
    }

    if deny && unwaived > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
