//! `nmcs-lint` CLI.
//!
//! ```text
//! nmcs-lint [--root PATH] [--deny] [--list-rules]
//! ```
//!
//! Advisory by default (exit 0 either way); `--deny` exits 1 when any
//! unwaived finding remains — that is the mode CI and `tables --lint`
//! run. Exit 2 means the invocation itself failed (bad flag, IO error).

use nmcs_lint::{lint_workspace, rule_counts, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("nmcs-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--deny" => deny = true,
            "--list-rules" => {
                for r in RULES {
                    println!("{:<18} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: nmcs-lint [--root PATH] [--deny] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nmcs-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nmcs-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut unwaived = 0usize;
    let mut waived = 0usize;
    for f in &findings {
        if f.waived {
            waived += 1;
        } else {
            unwaived += 1;
            println!("{f}");
        }
    }

    if findings.is_empty() {
        println!("nmcs-lint: clean (no findings, no waivers)");
    } else {
        println!("---");
        for (rule, (open, excused)) in rule_counts(&findings) {
            println!("{rule:<18} {open} unwaived, {excused} waived");
        }
        println!("total              {unwaived} unwaived, {waived} waived");
    }

    if deny && unwaived > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
