//! The hot-path purity pass: call-graph reachability from declared hot
//! entry points, with an allocation/lock/clock/print deny list.
//!
//! The repo's core perf claim is that the playout/rollout path is
//! allocation-free and lock-free after warm-up. This pass makes the
//! claim mechanical: functions marked `// nmcs-lint: hot-entry`
//! (`PlayoutScratch::run`/`run_undo`, `nested_scratch`,
//! `TpTree::descend`, `Game::legal_moves_into`, the domains' scratch
//! `apply`/`undo` impls) are roots; everything reachable from them over
//! the workspace call graph is *hot* and must not:
//!
//! * allocate — `Box::new`, `Vec::new`/`with_capacity`/`from`,
//!   `String::*`, `vec!`/`format!`, `.collect()`, `.to_string()`/
//!   `.to_owned()`/`.to_vec()`, or `.clone()`/`T::clone()` where the
//!   receiver is provably a non-`Copy` workspace type (`Vec::new` does
//!   not itself allocate, but constructing owned containers per call is
//!   the pattern that grows into per-playout allocation — waive it where
//!   the buffer genuinely amortises);
//! * take locks — `.lock()`/`.try_lock()` (tree-parallel descent
//!   holds per-node `parking_lot` locks *by design* and carries waivers
//!   saying so);
//! * read clocks — `Instant::now()`, `SystemTime`, `monotonic_now()`
//!   (the strided deadline poll in `SearchCtx::should_stop` is the one
//!   waived exception);
//! * print — `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!`.
//!
//! Call resolution is heuristic but typed where it can be: method
//! receivers are typed from `self`, owner fields, parameters, and simple
//! `let` bindings; a receiver typed as a *non-workspace* type (`Vec`,
//! `Arc`, …) produces no edge, an unknown receiver conservatively fans
//! out to every workspace method of that name, and single-uppercase
//! quals (`G::apply`) are treated as generics that may be any impl. The
//! dynamic side (`vendor/alloc_counter` + `tests/alloc_playout.rs`)
//! keeps the static verdict honest.

use crate::parser::{Call, Callee, FnItem, ParsedFile};
use crate::Finding;
use std::collections::{HashMap, HashSet, VecDeque};

/// Global function id: (file index, fn index).
type FnId = (usize, usize);

/// The hot entry points that must exist (annotated) somewhere in the
/// workspace: `(owner, name)`. If a refactor renames or drops one, the
/// pass fails loudly instead of silently analysing an empty hot set.
const REQUIRED_ENTRIES: &[(Option<&str>, &str)] = &[
    (Some("PlayoutScratch"), "run"),
    (Some("PlayoutScratch"), "run_undo"),
    (None, "nested_scratch"),
    (Some("TpTree"), "descend"),
    (Some("Game"), "legal_moves_into"),
];

/// Where the required-entries diagnostic is reported.
const ENTRY_REGISTRY_FILE: &str = "crates/core/src/search.rs";

/// One hot-reachable function, with the chain that made it hot.
#[derive(Debug, Clone)]
pub struct HotFnInfo {
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace.
    pub end_line: u32,
    /// Display name (`Owner::name` or `name`).
    pub name: String,
    /// How it became hot: `entry` or `entry → callee → …`.
    pub via: String,
}

struct Index<'a> {
    files: &'a [ParsedFile],
    /// Methods (fns with an owner) by name, test fns excluded.
    methods_by_name: HashMap<&'a str, Vec<FnId>>,
    /// Fns by (owner-or-trait, name): impl owners, trait-impl traits,
    /// and trait-default owners all index here.
    by_owner: HashMap<(&'a str, &'a str), Vec<FnId>>,
    /// Free fns by name.
    free_by_name: HashMap<&'a str, Vec<FnId>>,
    /// Workspace type and trait names (impl owners, traits, decls).
    workspace_types: HashSet<&'a str>,
    /// Non-`Copy` declared workspace types.
    non_copy_types: HashSet<&'a str>,
    /// Type name → field name → head type.
    fields: HashMap<&'a str, HashMap<&'a str, &'a str>>,
}

impl<'a> Index<'a> {
    fn build(files: &'a [ParsedFile]) -> Self {
        let mut ix = Index {
            files,
            methods_by_name: HashMap::new(),
            by_owner: HashMap::new(),
            free_by_name: HashMap::new(),
            workspace_types: HashSet::new(),
            non_copy_types: HashSet::new(),
            fields: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for t in &file.types {
                ix.workspace_types.insert(&t.name);
                if !t.derives_copy {
                    ix.non_copy_types.insert(&t.name);
                }
                let fm = ix.fields.entry(t.name.as_str()).or_default();
                for (f, ty) in &t.fields {
                    fm.insert(f.as_str(), ty.as_str());
                }
            }
            for (gi, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = (fi, gi);
                match &f.qual {
                    Some(q) => {
                        ix.workspace_types.insert(q.as_str());
                        ix.methods_by_name
                            .entry(f.name.as_str())
                            .or_default()
                            .push(id);
                        ix.by_owner
                            .entry((q.as_str(), f.name.as_str()))
                            .or_default()
                            .push(id);
                        if let Some(tr) = &f.trait_name {
                            ix.workspace_types.insert(tr.as_str());
                            if tr != q {
                                ix.by_owner
                                    .entry((tr.as_str(), f.name.as_str()))
                                    .or_default()
                                    .push(id);
                            }
                        }
                    }
                    None => {
                        ix.free_by_name.entry(f.name.as_str()).or_default().push(id);
                    }
                }
            }
        }
        ix
    }

    fn fn_at(&self, id: FnId) -> &'a FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// Single-uppercase-letter names are generic parameters (`G`, `M`):
    /// a call qualified by one may land on any impl of that method.
    fn is_generic_name(name: &str) -> bool {
        name.len() == 1 && name.chars().all(|c| c.is_ascii_uppercase())
    }

    /// The receiver type of a method call, as far as it is knowable.
    fn receiver_type(&self, caller: &'a FnItem, call: &'a Call) -> Option<&'a str> {
        let Callee::Method {
            recv,
            recv_self_field,
            ..
        } = &call.callee
        else {
            return None;
        };
        let recv = recv.as_deref()?;
        if recv == "self" {
            return caller.qual.as_deref();
        }
        if *recv_self_field {
            let owner = caller.qual.as_deref()?;
            return self.fields.get(owner)?.get(recv).copied();
        }
        if let Some(p) = caller.params.iter().find(|p| p.name == recv) {
            return Some(&p.ty);
        }
        if let Some((_, ty)) = caller.lets.iter().find(|(n, _)| n == recv) {
            return Some(ty);
        }
        None
    }

    /// Free-fn resolution: same-file definitions shadow workspace-wide
    /// ones (Rust's actual scoping, approximately).
    fn resolve_free(&self, caller_file: usize, name: &str) -> Vec<FnId> {
        let Some(all) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        let local: Vec<FnId> = all
            .iter()
            .copied()
            .filter(|id| id.0 == caller_file)
            .collect();
        if local.is_empty() {
            all.clone()
        } else {
            local
        }
    }

    /// Every callee a call site may reach.
    fn resolve(&self, caller_id: FnId, call: &'a Call) -> Vec<FnId> {
        let caller = self.fn_at(caller_id);
        match &call.callee {
            Callee::Free { name } => self.resolve_free(caller_id.0, name),
            Callee::Qualified { qual, name } => match qual.as_str() {
                "Self" => match caller.qual.as_deref() {
                    Some(owner) => self
                        .by_owner
                        .get(&(owner, name.as_str()))
                        .cloned()
                        .unwrap_or_default(),
                    None => self.resolve_free(caller_id.0, name),
                },
                "self" | "crate" | "super" => self.resolve_free(caller_id.0, name),
                q if self.workspace_types.contains(q) => self
                    .by_owner
                    .get(&(q, name.as_str()))
                    .cloned()
                    .unwrap_or_default(),
                q if Self::is_generic_name(q) => self
                    .methods_by_name
                    .get(name.as_str())
                    .cloned()
                    .unwrap_or_default(),
                q if q.chars().next().is_some_and(|c| c.is_lowercase()) => {
                    // Module-qualified free call.
                    self.free_by_name
                        .get(name.as_str())
                        .cloned()
                        .unwrap_or_default()
                }
                // Unknown uppercase qualifier: a std/vendored type
                // (`Vec::new`, `Arc::new`) — not a workspace edge.
                _ => Vec::new(),
            },
            Callee::Method { name, .. } => {
                // Denied method names are std iterator/lock operations;
                // they are reported at the call site, never resolved as
                // workspace edges (`.collect()` must not drag a
                // workspace fn that happens to be called `collect` into
                // the hot set).
                if DENY_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                match self.receiver_type(caller, call) {
                    Some(ty) if self.workspace_types.contains(ty) => self
                        .by_owner
                        .get(&(ty, name.as_str()))
                        .cloned()
                        .unwrap_or_default(),
                    Some(ty) if Self::is_generic_name(ty) || ty == "Self" => self
                        .methods_by_name
                        .get(name.as_str())
                        .cloned()
                        .unwrap_or_default(),
                    // Typed receiver of a non-workspace type: std call.
                    Some(_) => Vec::new(),
                    // Unknown receiver: any workspace method of this name
                    // — except ubiquitous std-container names, where the
                    // fanout is overwhelmingly noise (`bufs.moves.push`
                    // must not drag `BoundedQueue::push` into the hot
                    // set). A hot call to a workspace queue still
                    // resolves when the receiver is typed.
                    None if COMMON_CONTAINER_METHODS.contains(&name.as_str()) => Vec::new(),
                    None => self
                        .methods_by_name
                        .get(name.as_str())
                        .cloned()
                        .unwrap_or_default(),
                }
            }
        }
    }
}

/// BFS over the call graph from every annotated entry; returns each hot
/// fn with its provenance chain, in deterministic (file, fn) order.
fn hot_set(ix: &Index) -> Vec<(FnId, String)> {
    let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
    let mut queue = VecDeque::new();
    for (fi, file) in ix.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if f.hot_entry && !f.in_test {
                parent.insert((fi, gi), None);
                queue.push_back((fi, gi));
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        let f = ix.fn_at(id);
        for call in &f.calls {
            for callee in ix.resolve(id, call) {
                if callee != id && !parent.contains_key(&callee) {
                    parent.insert(callee, Some(id));
                    queue.push_back(callee);
                }
            }
        }
    }
    let mut ids: Vec<FnId> = parent.keys().copied().collect();
    ids.sort();
    ids.into_iter()
        .map(|id| {
            // Provenance: entry → … → this fn, truncated for sanity.
            let mut chain = vec![display_name(ix.fn_at(id))];
            let mut cur = id;
            while let Some(Some(p)) = parent.get(&cur) {
                chain.push(display_name(ix.fn_at(*p)));
                cur = *p;
                if chain.len() >= 5 {
                    chain.push("…".to_string());
                    break;
                }
            }
            chain.reverse();
            (id, chain.join(" → "))
        })
        .collect()
}

fn display_name(f: &FnItem) -> String {
    match &f.qual {
        Some(q) => format!("{q}::{}", f.name),
        None => f.name.clone(),
    }
}

/// Macros denied on the hot path.
const DENY_MACROS: &[&str] = &[
    "vec", "format", "println", "eprintln", "print", "eprint", "dbg",
];

/// `Qual::name` pairs denied on the hot path.
const DENY_QUALIFIED: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Instant", "now"),
    ("SystemTime", "now"),
];

/// Method names denied on the hot path regardless of receiver.
const DENY_METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "lock",
    "try_lock",
];

/// Method names so common on std containers/iterators that an *untyped*
/// receiver calling them must not fan out to same-named workspace
/// methods. Typed receivers still resolve normally.
const COMMON_CONTAINER_METHODS: &[&str] = &[
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "extend",
    "insert",
    "remove",
    "swap_remove",
    "truncate",
    "swap",
    "get",
    "contains",
    "iter",
    "iter_mut",
    "first",
    "last",
    "drain",
    "retain",
    "next",
    "take",
];

fn deny_reason(ix: &Index, f: &FnItem, call: &Call) -> Option<String> {
    match &call.callee {
        Callee::Qualified { qual, name } => {
            if DENY_QUALIFIED.iter().any(|(q, n)| q == qual && n == name) {
                let kind = match (qual.as_str(), name.as_str()) {
                    ("Instant", "now") | ("SystemTime", _) => "clock read",
                    ("Box", _) => "heap allocation",
                    _ => "owned-container construction",
                };
                return Some(format!("{kind} `{qual}::{name}(…)`"));
            }
            if name == "monotonic_now" || qual == "SystemTime" {
                return Some(format!("clock read `{qual}::{name}(…)`"));
            }
            if name == "clone" && ix.non_copy_types.contains(qual.as_str()) {
                return Some(format!("`{qual}::clone(…)` of a non-Copy workspace type"));
            }
            None
        }
        Callee::Free { name } => {
            (name == "monotonic_now").then(|| "clock read `monotonic_now()`".to_string())
        }
        Callee::Method { name, recv, .. } => {
            if DENY_METHODS.contains(&name.as_str()) {
                let kind = if matches!(name.as_str(), "lock" | "try_lock") {
                    "lock acquisition"
                } else {
                    "allocation"
                };
                return Some(format!("{kind} `.{name}(…)`"));
            }
            if name == "clone"
                && recv.as_deref() == Some("self")
                && f.qual
                    .as_deref()
                    .is_some_and(|q| ix.non_copy_types.contains(q))
            {
                return Some(format!(
                    "`self.clone()` of non-Copy workspace type `{}`",
                    f.qual.as_deref().unwrap_or_default()
                ));
            }
            None
        }
    }
}

/// Runs the purity pass over a set of parsed files, producing hot-path
/// findings (pre-waiver) and the hot-set report.
pub fn analyze(files: &[ParsedFile]) -> (Vec<Finding>, Vec<HotFnInfo>) {
    let ix = Index::build(files);
    let hot = hot_set(&ix);
    let mut findings = Vec::new();
    let mut report = Vec::new();
    for (id, via) in &hot {
        let f = ix.fn_at(*id);
        let file = &files[id.0].rel;
        report.push(HotFnInfo {
            file: file.clone(),
            line: f.line,
            end_line: f.end_line,
            name: display_name(f),
            via: via.clone(),
        });
        for call in &f.calls {
            if let Some(what) = deny_reason(&ix, f, call) {
                findings.push(Finding {
                    rule: "hot-path",
                    file: file.clone(),
                    line: call.line,
                    message: format!(
                        "{what} in hot-path fn `{}` (hot via {via}); the playout/rollout \
                         path must stay allocation-, lock-, and clock-free",
                        display_name(f)
                    ),
                    waived: false,
                });
            }
        }
        for m in &f.macros {
            if DENY_MACROS.contains(&m.name.as_str()) {
                findings.push(Finding {
                    rule: "hot-path",
                    file: file.clone(),
                    line: m.line,
                    message: format!(
                        "`{}!` in hot-path fn `{}` (hot via {via}); the playout/rollout \
                         path must stay allocation-, lock-, and clock-free",
                        m.name,
                        display_name(f)
                    ),
                    waived: false,
                });
            }
        }
    }
    (findings, report)
}

/// Workspace-mode check that the declared entry registry is intact: a
/// missing or un-annotated required entry is a finding, so a refactor
/// cannot silently shrink the hot set to nothing.
pub fn required_entry_findings(files: &[ParsedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (qual, name) in REQUIRED_ENTRIES {
        let found = files
            .iter()
            .flat_map(|f| &f.fns)
            .any(|f| f.hot_entry && f.name == *name && f.qual.as_deref() == *qual);
        if !found {
            let disp = match qual {
                Some(q) => format!("{q}::{name}"),
                None => (*name).to_string(),
            };
            out.push(Finding {
                rule: "hot-path",
                file: ENTRY_REGISTRY_FILE.to_string(),
                line: 1,
                message: format!(
                    "required hot entry `{disp}` is missing its `nmcs-lint: hot-entry` \
                     annotation (or was renamed) — the purity pass would go blind; \
                     re-annotate it or update REQUIRED_ENTRIES in the linter"
                ),
                waived: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind, Token};
    use crate::parser::{hot_entry_lines, parse_file};

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        let all = lex(src);
        let hot = hot_entry_lines(&all);
        let toks: Vec<Token> = all
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment(_) | TokKind::BlockComment(_)))
            .collect();
        let in_test = crate::test_regions(&toks);
        parse_file(rel, &toks, &in_test, &hot, crate::is_test_path(rel))
    }

    #[test]
    fn transitive_callee_is_denied() {
        let files = [parsed(
            "crates/core/src/x.rs",
            "// nmcs-lint: hot-entry\n\
             fn rollout(g: &mut Grid) { step(g); }\n\
             fn step(g: &mut Grid) { helper(); }\n\
             fn helper() { let b = Box::new(3); }\n\
             fn cold() { let b = Box::new(4); }\n\
             struct Grid { v: u8 }\n",
        )];
        let (findings, report) = analyze(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].message.contains("rollout → step → helper"));
        assert_eq!(report.len(), 3, "{report:?}");
    }

    #[test]
    fn typed_receivers_limit_the_fanout() {
        // `seq.push` with `seq: &mut Vec<_>` must NOT edge into the
        // workspace `Queue::push`, but the untyped `q.push(…)` must.
        let files = [parsed(
            "crates/core/src/x.rs",
            "struct Queue { v: u8 }\n\
             impl Queue { fn push(&mut self) { let s = String::new(); } }\n\
             // nmcs-lint: hot-entry\n\
             fn hot_a(seq: &mut Vec<u8>) { seq.push(1); }\n\
             fn cold_b(q: &mut Queue) { q.push(); }\n",
        )];
        let (findings, report) = analyze(&files);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn method_calls_fan_out_to_trait_impls() {
        let files = [parsed(
            "crates/core/src/x.rs",
            "trait Game { fn play(&mut self); }\n\
             struct A { v: u8 }\n\
             impl Game for A { fn play(&mut self) { self.grow(); } }\n\
             impl A { fn grow(&mut self) { let v: Vec<u8> = Vec::new(); } }\n\
             // nmcs-lint: hot-entry\n\
             fn hot(g: &mut G_UNKNOWN) { g.play(); }\n",
        )];
        // `G_UNKNOWN` is not a workspace type and not single-letter; the
        // receiver type is "known non-workspace" → no edge. Use an
        // untyped receiver instead to check the fanout:
        let files2 = [parsed(
            "crates/core/src/x.rs",
            "trait Game { fn play(&mut self); }\n\
             struct A { v: u8 }\n\
             impl Game for A { fn play(&mut self) { self.grow(); } }\n\
             impl A { fn grow(&mut self) { let v: Vec<u8> = Vec::new(); } }\n\
             // nmcs-lint: hot-entry\n\
             fn hot(g: &mut G) { g.play(); }\n",
        )];
        let (f1, _) = analyze(&files);
        assert!(f1.is_empty(), "{f1:?}");
        let (f2, _) = analyze(&files2);
        assert_eq!(f2.len(), 1, "{f2:?}");
        assert!(f2[0].message.contains("Vec::new"));
    }

    #[test]
    fn clone_on_non_copy_workspace_type_is_denied_copy_is_not() {
        let files = [parsed(
            "crates/core/src/x.rs",
            "#[derive(Clone)] struct Big { v: u8 }\n\
             #[derive(Clone, Copy)] struct Small { v: u8 }\n\
             impl Big { // nmcs-lint: hot-entry\n\
               fn dup(&self) -> Big { self.clone() } }\n\
             impl Small { // nmcs-lint: hot-entry\n\
               fn dup(&self) -> Small { self.clone() } }\n",
        )];
        let (findings, _) = analyze(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Big"));
    }

    #[test]
    fn locks_clocks_and_prints_are_denied() {
        let files = [parsed(
            "crates/core/src/x.rs",
            "// nmcs-lint: hot-entry\n\
             fn hot(m: &M) { m.lock(); let t = Instant::now(); println!(\"x\"); }\n",
        )];
        let (findings, _) = analyze(&files);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("lock acquisition")));
        assert!(msgs.iter().any(|m| m.contains("clock read")));
        assert!(msgs.iter().any(|m| m.contains("println")));
    }

    #[test]
    fn required_entries_fire_when_absent() {
        let files = [parsed("crates/core/src/x.rs", "fn unrelated() {}\n")];
        let missing = required_entry_findings(&files);
        assert_eq!(missing.len(), REQUIRED_ENTRIES.len());
        assert!(missing.iter().all(|f| !f.waived));
    }

    #[test]
    fn test_fns_are_neither_entries_nor_targets() {
        let files = [parsed(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n\
               // nmcs-lint: hot-entry\n\
               fn fake_entry() { let b = Box::new(1); }\n\
             }\n\
             // nmcs-lint: hot-entry\n\
             fn hot(h: &H) { h.helper(); }\n\
             #[cfg(test)]\nmod more { struct H2; impl H2 { fn helper(&self) { let b = Box::new(2); } } }\n",
        )];
        let (findings, report) = analyze(&files);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(report.len(), 1);
    }
}
