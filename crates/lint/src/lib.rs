//! `nmcs-lint`: the workspace invariant checker.
//!
//! The determinism contracts this repo is built on (seeds from logical
//! coordinates, budget polls never touching RNG, one sanctioned spawn
//! site, `tag()` as the identity of a result) are easy to uphold in the
//! module that defines them and easy to erode one call site at a time
//! everywhere else. This crate freezes them as deny-by-default token
//! rules — see [`rules::RULES`] for the catalog.
//!
//! Design constraints:
//!
//! * **Self-contained.** No `syn`/`proc-macro2` in the vendor set, so
//!   [`lexer`] is a hand-rolled Rust lexer that is exact about strings,
//!   raw strings, chars, lifetimes, and nested comments — a rule must
//!   never fire on the *text* of a log message or doc comment.
//! * **Deny by default, waive with a reason.** A finding is silenced
//!   only by a same-or-previous-line comment of the form
//!   `nmcs-lint: allow(rule-id) reason="why this site is sound"`
//!   (written as a `//` comment). A waiver that no longer matches a
//!   finding is itself an error (`stale-waiver`), so waivers cannot
//!   outlive the code they excuse.
//! * **Tests are exempt.** `#[cfg(test)]` regions and test-context
//!   paths may spawn, unwrap, and read clocks freely.

pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use hotpath::HotFnInfo;
use lexer::{lex, TokKind, Token};
use rules::FileCtx;
pub use rules::{is_waivable_rule, RuleInfo, RULES};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One rule violation (or waiver diagnostic) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// True when an in-source waiver covers this finding.
    pub waived: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}{}] {}",
            self.file,
            self.line,
            self.rule,
            if self.waived { ", waived" } else { "" },
            self.message
        )
    }
}

/// A parsed `nmcs-lint: allow(…)` comment.
struct Waiver {
    rule: String,
    line: u32,
    used: bool,
}

/// Path-level test context: anything under a test/bench/example/fixture
/// directory is allowed to break the rules.
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "fixtures"))
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i)?.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match &toks.get(i)?.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Flags every token belonging to a `#[cfg(test)]`-gated item.
///
/// Conservative by construction: an attribute whose argument list
/// mentions `not` anywhere (e.g. `#[cfg(not(test))]`) is *not* treated
/// as a test gate, so release-only code stays under the rules.
pub(crate) fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if punct_at(toks, i) != Some('#')
            || punct_at(toks, i + 1) != Some('[')
            || ident_at(toks, i + 2) != Some("cfg")
            || punct_at(toks, i + 3) != Some('(')
        {
            i += 1;
            continue;
        }
        // Walk the balanced cfg(...) argument list.
        let mut depth = 0usize;
        let mut has_test = false;
        let mut has_not = false;
        let mut close = None;
        for j in (i + 3)..toks.len() {
            match punct_at(toks, j) {
                Some('(') => depth += 1,
                Some(')') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            match ident_at(toks, j) {
                Some("test") => has_test = true,
                Some("not") => has_not = true,
                _ => {}
            }
        }
        let Some(close) = close else { break };
        if !has_test || has_not || punct_at(toks, close + 1) != Some(']') {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between the gate and the item.
        let mut k = close + 2;
        while punct_at(toks, k) == Some('#') && punct_at(toks, k + 1) == Some('[') {
            let mut bd = 0usize;
            let mut m = k + 1;
            while m < toks.len() {
                match punct_at(toks, m) {
                    Some('[') => bd += 1,
                    Some(']') => {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        // The gated item ends at its balanced `{…}` body, or at `;` for
        // bodiless items (`#[cfg(test)] mod tests;`).
        let mut end = toks.len().saturating_sub(1);
        let mut m = k;
        while m < toks.len() {
            match punct_at(toks, m) {
                Some(';') => {
                    end = m;
                    break;
                }
                Some('{') => {
                    let mut bd = 0usize;
                    while m < toks.len() {
                        match punct_at(toks, m) {
                            Some('{') => bd += 1,
                            Some('}') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    end = m.min(toks.len() - 1);
                    break;
                }
                _ => m += 1,
            }
        }
        for f in flags.iter_mut().take(end + 1).skip(i) {
            *f = true;
        }
        i = end + 1;
    }
    flags
}

/// Parses waivers out of the file's `//` comments. Malformed waivers
/// become `waiver-syntax` findings immediately.
fn parse_waivers(all_toks: &[Token], rel: &str, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for t in all_toks {
        let TokKind::LineComment(content) = &t.kind else {
            continue;
        };
        let body = content.trim_start();
        // Doc comments (`///…` lexes as a line comment starting with
        // `/`) and ordinary prose never start with the marker.
        let Some(rest) = body.strip_prefix("nmcs-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        // `nmcs-lint: hot-entry` is the hot-path pass's entry-point
        // annotation (see `parser::HOT_ENTRY_MARKER`), not a waiver.
        if rest.starts_with(parser::HOT_ENTRY_MARKER) {
            continue;
        }
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(rule, tail)| (rule.trim().to_string(), tail.trim_start()));
        let Some((rule, tail)) = parsed else {
            findings.push(Finding {
                rule: "waiver-syntax",
                file: rel.to_string(),
                line: t.line,
                message: "malformed waiver: expected `nmcs-lint: allow(rule-id) \
                          reason=\"…\"`"
                    .to_string(),
                waived: false,
            });
            continue;
        };
        if !is_waivable_rule(&rule) {
            findings.push(Finding {
                rule: "waiver-syntax",
                file: rel.to_string(),
                line: t.line,
                message: format!("waiver names unknown or unwaivable rule `{rule}`"),
                waived: false,
            });
            continue;
        }
        let reason_ok = tail
            .strip_prefix("reason=\"")
            .and_then(|r| r.find('"'))
            .map(|end| end > 0)
            .unwrap_or(false);
        if !reason_ok {
            findings.push(Finding {
                rule: "waiver-syntax",
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "waiver for `{rule}` has no non-empty reason=\"…\" — every \
                     exception must say why the site is sound"
                ),
                waived: false,
            });
            continue;
        }
        waivers.push(Waiver {
            rule,
            line: t.line,
            used: false,
        });
    }
    waivers
}

/// One file mid-lint: rule findings gathered, waivers not yet applied.
/// Cross-file passes (hot-path) append their findings between the two
/// phases so waivers and stale-waiver detection see the full set.
struct FileAnalysis {
    rel: String,
    all_toks: Vec<Token>,
    findings: Vec<Finding>,
    parsed: parser::ParsedFile,
}

/// Phase 1: lex, run the per-file token rules, and parse items for the
/// call-graph pass.
fn analyze_source(rel: &str, src: &str) -> FileAnalysis {
    let all_toks = lex(src);
    // Rules see only significant tokens; comments carry waivers and
    // hot-entry annotations.
    let toks: Vec<Token> = all_toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment(_) | TokKind::BlockComment(_)))
        .cloned()
        .collect();
    let in_test = test_regions(&toks);
    let ctx = FileCtx {
        rel,
        toks: &toks,
        in_test: &in_test,
        is_test_path: is_test_path(rel),
    };
    let findings = rules::run_all(&ctx);
    let hot_lines = parser::hot_entry_lines(&all_toks);
    let parsed = parser::parse_file(rel, &toks, &in_test, &hot_lines, ctx.is_test_path);
    FileAnalysis {
        rel: rel.to_string(),
        all_toks,
        findings,
        parsed,
    }
}

/// Phase 2: waiver application and stale-waiver detection over the full
/// finding set for one file.
///
/// `stale_hot_ok`: in single-file mode a `hot-path` waiver may be
/// justified by an entry point in *another* file (e.g. the waived clock
/// read in `ctx.rs` is hot via `search.rs`), so an unmatched hot-path
/// waiver only counts as stale when the file declares its own entries
/// or the whole workspace was analysed.
fn apply_waivers(fa: FileAnalysis, stale_hot_ok: bool) -> Vec<Finding> {
    let FileAnalysis {
        rel,
        all_toks,
        mut findings,
        ..
    } = fa;
    // Test-context paths carry no findings, so a waiver there could
    // only ever be stale noise — the machinery skips them entirely.
    let mut waivers = if is_test_path(&rel) {
        Vec::new()
    } else {
        parse_waivers(&all_toks, &rel, &mut findings)
    };

    // A waiver on line W covers matching findings on W (trailing
    // comment) or W + 1 (comment on its own line above the site).
    for f in findings.iter_mut() {
        if f.rule == "waiver-syntax" || f.rule == "stale-waiver" {
            continue;
        }
        for w in waivers.iter_mut() {
            if w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line) {
                f.waived = true;
                w.used = true;
            }
        }
    }
    for w in &waivers {
        if !w.used && (w.rule != "hot-path" || stale_hot_ok) {
            findings.push(Finding {
                rule: "stale-waiver",
                file: rel.to_string(),
                line: w.line,
                message: format!(
                    "waiver for `{}` matches no finding on this or the next line — \
                     delete it (waivers must not outlive the code they excuse)",
                    w.rule
                ),
                waived: false,
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lints one file's source. `rel` is the workspace-relative path with
/// forward slashes; rules use it for allowlists and test context.
///
/// The hot-path pass runs over this file alone: entry annotations and
/// their reachable callees are analysed within the file, which is the
/// whole story for fixtures and self-contained modules. Workspace-wide
/// reachability needs [`lint_workspace`].
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let mut fa = analyze_source(rel, src);
    let files = std::slice::from_ref(&fa.parsed);
    let (hot_findings, _) = hotpath::analyze(files);
    let has_local_entries = fa.parsed.fns.iter().any(|f| f.hot_entry);
    fa.findings.extend(hot_findings);
    apply_waivers(fa, has_local_entries)
}

/// Directories the walker never descends into: build output, the
/// vendored third-party set (not ours to lint), VCS metadata, hidden
/// dirs, and fixture corpora (this crate's is deliberately bad).
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.')
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(
                path.strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/"),
            );
        }
    }
    Ok(())
}

/// Reads every first-party `.rs` file under `root` in sorted order,
/// returning `(workspace-relative path, source)` pairs.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    files
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel))?;
            Ok((rel, src))
        })
        .collect()
}

/// Workspace-mode core: per-file rules, then the cross-file hot-path
/// pass, then waivers — so a waiver can cover a finding whose cause
/// (a hot entry point) lives in another file. Also returns the
/// hot-reachable function report.
fn lint_sources_full(sources: &[(String, String)]) -> (Vec<Finding>, Vec<HotFnInfo>) {
    let mut analyses: Vec<FileAnalysis> = sources
        .iter()
        .map(|(rel, src)| analyze_source(rel, src))
        .collect();
    let parsed: Vec<parser::ParsedFile> = analyses.iter().map(|fa| fa.parsed.clone()).collect();
    let (hot_findings, report) = hotpath::analyze(&parsed);
    for f in hot_findings {
        if let Some(fa) = analyses.iter_mut().find(|fa| fa.rel == f.file) {
            fa.findings.push(f);
        }
    }
    let mut findings: Vec<Finding> = Vec::new();
    for fa in analyses {
        findings.extend(apply_waivers(fa, true));
    }
    // The entry registry must be intact whenever the whole workspace is
    // on the table; these are unwaivable by construction (no source
    // line to attach a waiver to).
    findings.extend(hotpath::required_entry_findings(&parsed));
    (findings, report)
}

/// Lints a pre-read set of workspace sources (see [`workspace_sources`]).
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Finding> {
    lint_sources_full(sources).0
}

/// Lints every first-party `.rs` file under `root` in sorted order,
/// including the workspace-wide hot-path reachability pass.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_sources(&workspace_sources(root)?))
}

/// The hot-path report for `tables --lint --hot`: every hot-reachable
/// function with its provenance chain and per-function verdict
/// (unwaived/waived hot-path finding counts, resolved against the
/// in-source waivers).
pub fn hot_report(root: &Path) -> io::Result<(Vec<HotFnInfo>, Vec<Finding>)> {
    let sources = workspace_sources(root)?;
    let (findings, report) = lint_sources_full(&sources);
    let hot: Vec<Finding> = findings
        .into_iter()
        .filter(|f| f.rule == "hot-path")
        .collect();
    Ok((report, hot))
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialises findings as a JSON array of
/// `{"file","line","rule","waived","message"}` objects — the one
/// machine-readable shape shared by `nmcs-lint --format json` and
/// `tables --lint`, so CI and the report tool cannot drift apart.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"file\":\"");
        json_escape(&f.file, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"rule\":\"");
        json_escape(f.rule, &mut out);
        out.push_str("\",\"waived\":");
        out.push_str(if f.waived { "true" } else { "false" });
        out.push_str(",\"message\":\"");
        json_escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str("\n]");
    out
}

/// Per-rule `(unwaived, waived)` counts, sorted by rule id.
pub fn rule_counts(findings: &[Finding]) -> BTreeMap<&'static str, (usize, usize)> {
    let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for f in findings {
        let e = counts.entry(f.rule).or_default();
        if f.waived {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwaived(fs: &[Finding]) -> Vec<&Finding> {
        fs.iter().filter(|f| !f.waived).collect()
    }

    #[test]
    fn clock_rule_fires_outside_the_allowlist_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let hits = lint_source("crates/core/src/search.rs", src);
        assert_eq!(unwaived(&hits).len(), 1);
        assert_eq!(hits[0].rule, "clock-discipline");
        assert_eq!(hits[0].line, 1);
        assert!(lint_source("crates/core/src/metrics.rs", src).is_empty());
        assert!(lint_source("crates/core/src/ctx.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/report.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_but_not_cfg_not_test() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let t = Instant::now(); }\n}\n\
                   #[cfg(not(test))]\nfn g() { let t = Instant::now(); }\n";
        let hits = lint_source("crates/core/src/search.rs", src);
        assert_eq!(unwaived(&hits).len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 6);
    }

    #[test]
    fn waiver_on_previous_or_same_line_silences_and_is_consumed() {
        let trailing = "fn f() { std::thread::spawn(|| {}); } \
                        // nmcs-lint: allow(spawn-discipline) reason=\"demo\"\n";
        let hits = lint_source("crates/core/src/search.rs", trailing);
        assert_eq!(unwaived(&hits).len(), 0, "{hits:?}");
        assert!(hits.iter().any(|f| f.waived));

        let above = "// nmcs-lint: allow(spawn-discipline) reason=\"demo\"\n\
                     fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            unwaived(&lint_source("crates/core/src/search.rs", above)).len(),
            0
        );
    }

    #[test]
    fn stale_and_malformed_waivers_are_findings() {
        let stale = "// nmcs-lint: allow(spawn-discipline) reason=\"nothing here\"\n\
                     fn f() {}\n";
        let hits = lint_source("crates/core/src/search.rs", stale);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "stale-waiver");

        let no_reason = "// nmcs-lint: allow(spawn-discipline)\nfn f() {}\n";
        let hits = lint_source("crates/core/src/search.rs", no_reason);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "waiver-syntax");

        let unknown = "// nmcs-lint: allow(made-up) reason=\"x\"\nfn f() {}\n";
        let hits = lint_source("crates/core/src/search.rs", unknown);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "waiver-syntax");
    }

    #[test]
    fn rule_counts_split_waived_from_unwaived() {
        let src = "fn f() { let a = Instant::now(); } \
                   // nmcs-lint: allow(clock-discipline) reason=\"demo\"\n\n\
                   fn g() { let b = Instant::now(); }\n";
        let counts = rule_counts(&lint_source("crates/core/src/search.rs", src));
        assert_eq!(counts.get("clock-discipline"), Some(&(1, 1)));
    }

    #[test]
    fn test_paths_are_fully_exempt() {
        let src = "fn f() { std::thread::spawn(|| Instant::now()); }\n";
        assert!(lint_source("crates/core/tests/conformance.rs", src).is_empty());
        assert!(lint_source("crates/core/benches/throughput.rs", src).is_empty());
    }
}
