//! The invariant catalog, as deny-by-default token-sequence rules.
//!
//! Each rule documents the contract it guards (see ROADMAP "Standing
//! facts"), the paths it applies to, and where it deliberately stays
//! quiet. All rules skip `#[cfg(test)]` regions and test-context paths
//! (`tests/`, `benches/`, `examples/`, fixtures) unless noted — tests
//! are allowed to spawn threads, read clocks, and unwrap.

use crate::lexer::{TokKind, Token};
use crate::Finding;

/// One catalog entry (for `--list-rules` and the README table).
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// The enforced catalog. `stale-waiver` and `waiver-syntax` are the
/// waiver machinery's own diagnostics: they cannot be waived.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "clock-discipline",
        summary: "Instant::now()/SystemTime only in ctx.rs, metrics.rs (monotonic_now), \
                  exec/pool.rs, and bench — wall clocks feed observability, never results",
    },
    RuleInfo {
        id: "spawn-discipline",
        summary: "no thread::spawn/Builder outside core exec/ and the engine worker pool — \
                  all parallelism flows through ExecutorPool",
    },
    RuleInfo {
        id: "seed-discipline",
        summary: "no entropy sources, no ad-hoc seed arithmetic — seeds derive only from \
                  logical coordinates via the seeds modules",
    },
    RuleInfo {
        id: "panic-discipline",
        summary: "no .unwrap()/.expect() on engine worker/queue/scheduler or executor \
                  paths — a panic there takes a worker (or the pool) down",
    },
    RuleInfo {
        id: "deprecated-shim",
        summary: "internal code never calls the #[deprecated] PR-3 free functions — the \
                  unified SearchSpec API is the only internal entry point",
    },
    RuleInfo {
        id: "tag-identity",
        summary: "every AlgorithmSpec variant field must be mentioned in tag() — \
                  result-affecting knobs are identity bits",
    },
    RuleInfo {
        id: "hot-path",
        summary: "functions reachable from `nmcs-lint: hot-entry` roots (playout/rollout \
                  core) must not allocate, take locks, read clocks, or print — the \
                  call-graph pass in hotpath.rs, dynamically cross-checked by the \
                  counting allocator in tests/alloc_playout.rs",
    },
    RuleInfo {
        id: "socket-discipline",
        summary: "no std::net sockets anywhere — network I/O exists only at the serve \
                  crate's HTTP edge, and even there every site carries a waiver naming \
                  the boundary it implements",
    },
    RuleInfo {
        id: "lock-discipline",
        summary: "no std::sync::{Mutex,RwLock,Condvar} outside tests — locks go through \
                  vendored parking_lot so the lock-order detector sees them",
    },
    RuleInfo {
        id: "stale-waiver",
        summary: "a waiver whose finding no longer exists is itself an error (not waivable)",
    },
    RuleInfo {
        id: "waiver-syntax",
        summary: "malformed waiver: unknown rule id or missing reason=\"…\" (not waivable)",
    },
];

/// True when `id` names a waivable catalog rule.
pub fn is_waivable_rule(id: &str) -> bool {
    RULES
        .iter()
        .any(|r| r.id == id && r.id != "stale-waiver" && r.id != "waiver-syntax")
}

/// Everything a rule needs about one file.
pub(crate) struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Significant tokens (comments stripped).
    pub toks: &'a [Token],
    /// Parallel to `toks`: inside a `#[cfg(test)]` item.
    pub in_test: &'a [bool],
    /// Path-level test context (tests/, benches/, examples/, fixtures).
    pub is_test_path: bool,
}

impl FileCtx<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match &self.toks.get(i)?.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i)?.kind {
            TokKind::Punct(c) => Some(c),
            _ => None,
        }
    }

    /// `::` at positions i, i+1.
    fn path_sep(&self, i: usize) -> bool {
        self.punct(i) == Some(':') && self.punct(i + 1) == Some(':')
    }

    fn line(&self, i: usize) -> u32 {
        self.toks[i].line
    }
}

fn starts_with_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

fn finding(ctx: &FileCtx, rule: &'static str, i: usize, message: String) -> Finding {
    Finding {
        rule,
        file: ctx.rel.to_string(),
        line: ctx.line(i),
        message,
        waived: false,
    }
}

/// Runs every catalog rule over one file.
pub(crate) fn run_all(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    clock_discipline(ctx, &mut out);
    spawn_discipline(ctx, &mut out);
    seed_discipline(ctx, &mut out);
    panic_discipline(ctx, &mut out);
    deprecated_shim(ctx, &mut out);
    tag_identity(ctx, &mut out);
    socket_discipline(ctx, &mut out);
    lock_discipline(ctx, &mut out);
    out
}

// ---------------------------------------------------------------------
// R1: clock discipline
// ---------------------------------------------------------------------

/// Modules allowed to read the wall clock directly: the budget machinery
/// (`ctx.rs`), the metrics registry (which exports `monotonic_now` as
/// the sanctioned accessor for everyone else), the executor pool's
/// busy/idle clocks, and the bench crate (timing is its whole job).
const CLOCK_ALLOWED: &[&str] = &[
    "crates/core/src/ctx.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/exec/pool.rs",
    "crates/bench/",
];

fn clock_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path || starts_with_any(ctx.rel, CLOCK_ALLOWED) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.ident(i) == Some("Instant") && ctx.path_sep(i + 1) && ctx.ident(i + 3) == Some("now")
        {
            out.push(finding(
                ctx,
                "clock-discipline",
                i,
                "raw `Instant::now()` outside the clock-allowlisted modules; use \
                 `nmcs_core::metrics::monotonic_now()` so the call site is visibly \
                 observability-only"
                    .to_string(),
            ));
        }
        if ctx.ident(i) == Some("SystemTime") {
            out.push(finding(
                ctx,
                "clock-discipline",
                i,
                "`SystemTime` is banned everywhere outside bench/tests: wall-clock time \
                 must never influence a search"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R2: spawn discipline
// ---------------------------------------------------------------------

/// The two sanctioned spawn sites: the core executor pool and the engine
/// worker pool. Everything else inherits parallelism from them.
const SPAWN_ALLOWED: &[&str] = &["crates/core/src/exec", "crates/engine/src/pool.rs"];

fn spawn_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path || starts_with_any(ctx.rel, SPAWN_ALLOWED) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.ident(i) == Some("thread")
            && ctx.path_sep(i + 1)
            && matches!(ctx.ident(i + 3), Some("spawn") | Some("Builder"))
        {
            out.push(finding(
                ctx,
                "spawn-discipline",
                i,
                format!(
                    "`thread::{}` outside the executor/engine pools; route the work \
                     through `ExecutorPool` so it shares the warm workers and the \
                     determinism contracts",
                    ctx.ident(i + 3).unwrap_or_default()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R3: seed discipline
// ---------------------------------------------------------------------

/// The modules that define seed derivations (and the deterministic RNG).
const SEED_ALLOWED: &[&str] = &[
    "crates/core/src/seeds.rs",
    "crates/core/src/rng.rs",
    "crates/parallel/src/seeds.rs",
];

/// Identifiers that smuggle entropy into a run.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
    "from_os_rng",
];

/// Methods that mark ad-hoc seed arithmetic when called on a seed-named
/// value (`seed.wrapping_add(i)` instead of `seeds::median_seed(...)`).
const SEED_MIX_METHODS: &[&str] = &[
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "rotate_left",
    "rotate_right",
];

fn seed_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path || starts_with_any(ctx.rel, SEED_ALLOWED) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(id) = ctx.ident(i) else { continue };
        if ENTROPY_IDENTS.contains(&id) {
            out.push(finding(
                ctx,
                "seed-discipline",
                i,
                format!(
                    "entropy source `{id}`: seeds must derive from logical coordinates \
                     (`seeds::*`), never from the environment"
                ),
            ));
            continue;
        }
        let seedish = id.to_ascii_lowercase().contains("seed");
        if !seedish {
            continue;
        }
        if ctx.punct(i + 1) == Some('.') {
            if let Some(m) = ctx.ident(i + 2) {
                if SEED_MIX_METHODS.contains(&m) {
                    out.push(finding(
                        ctx,
                        "seed-discipline",
                        i,
                        format!(
                            "ad-hoc seed arithmetic `{id}.{m}(…)`: derive the seed from \
                             its logical coordinates via the `seeds` module instead"
                        ),
                    ));
                }
            }
        } else if ctx.punct(i + 1) == Some('^') {
            out.push(finding(
                ctx,
                "seed-discipline",
                i,
                format!(
                    "ad-hoc seed arithmetic `{id} ^ …`: derive the seed from its logical \
                     coordinates via the `seeds` module instead"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R4: panic discipline
// ---------------------------------------------------------------------

/// Paths where a panic takes down a worker thread (or wedges a joiner):
/// the whole engine service layer and the core executor. Only these
/// paths are checked — library code returning `Result` may unwrap at
/// API boundaries documented to do so.
const PANIC_CHECKED: &[&str] = &["crates/engine/src/", "crates/core/src/exec"];

fn panic_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path || !starts_with_any(ctx.rel, PANIC_CHECKED) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.punct(i) != Some('.') {
            continue;
        }
        if let Some(m @ ("unwrap" | "expect")) = ctx.ident(i + 1) {
            if ctx.punct(i + 2) == Some('(') {
                out.push(finding(
                    ctx,
                    "panic-discipline",
                    i + 1,
                    format!(
                        "`.{m}()` on an engine/executor path: return a typed error, or \
                         fence it and waive with the reason the panic is impossible"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// R5: deprecated-shim purity
// ---------------------------------------------------------------------

/// The PR-3 `#[deprecated]` free functions (legacy pre-SearchSpec API).
const DEPRECATED_FNS: &[&str] = &[
    "nested",
    "nrpa",
    "uct",
    "flat_monte_carlo",
    "iterated_sampling",
    "simulated_annealing",
    "beam_search",
    "run_threads",
    "leaf_nested",
];

/// Qualifiers under which a call to one of those names is the deprecated
/// free function (e.g. `nmcs_core::nested(...)`). `SearchSpec::nested`
/// and `AlgorithmSpec::nested` are the *new* API constructors and share
/// the name, so an unknown qualifier is presumed fine.
const SHIM_QUALIFIERS: &[&str] = &[
    "nmcs_core",
    "core",
    "crate",
    "search",
    "nrpa",
    "uct",
    "baselines",
    "runner",
    "leaf",
    "parallel_nmcs",
    "self",
    "super",
];

fn deprecated_shim(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(id) = ctx.ident(i) else { continue };
        if !DEPRECATED_FNS.contains(&id) || ctx.punct(i + 1) != Some('(') {
            continue;
        }
        // Skip definitions (`fn nested(`) and method calls (`.uct(`).
        if i >= 1 && (ctx.ident(i - 1) == Some("fn") || ctx.punct(i - 1) == Some('.')) {
            continue;
        }
        // Qualified call: only the shim modules count.
        if i >= 2 && ctx.path_sep(i - 2) {
            let qualified_bad =
                i >= 3 && matches!(ctx.ident(i - 3), Some(q) if SHIM_QUALIFIERS.contains(&q));
            if !qualified_bad {
                continue;
            }
        }
        out.push(finding(
            ctx,
            "deprecated-shim",
            i,
            format!(
                "call to deprecated shim `{id}(…)`: internal code goes through the \
                 unified `SearchSpec` API (shims exist only for external compatibility)"
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// R6: tag-identity consistency
// ---------------------------------------------------------------------

/// Returns the index range of the balanced `{ … }` group whose opening
/// brace is the first `{` at or after `start`. Range excludes braces.
fn brace_group(ctx: &FileCtx, start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    while ctx.punct(i) != Some('{') {
        if i >= ctx.toks.len() {
            return None;
        }
        i += 1;
    }
    let open = i;
    let mut depth = 0usize;
    for j in open..ctx.toks.len() {
        match ctx.punct(j) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, j));
                }
            }
            _ => {}
        }
    }
    None
}

fn tag_identity(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel != "crates/core/src/spec.rs" {
        return;
    }
    // Locate `enum AlgorithmSpec { … }`.
    let enum_range = (0..ctx.toks.len()).find_map(|i| {
        (ctx.ident(i) == Some("enum") && ctx.ident(i + 1) == Some("AlgorithmSpec"))
            .then(|| brace_group(ctx, i + 2))
            .flatten()
    });
    // Locate `fn tag … { … }`.
    let tag_range = (0..ctx.toks.len()).find_map(|i| {
        (ctx.ident(i) == Some("fn") && ctx.ident(i + 1) == Some("tag"))
            .then(|| brace_group(ctx, i + 2))
            .flatten()
    });
    let (Some((es, ee)), Some((ts, te))) = (enum_range, tag_range) else {
        out.push(Finding {
            rule: "tag-identity",
            file: ctx.rel.to_string(),
            line: 1,
            message: "could not locate `enum AlgorithmSpec` and `fn tag` — the \
                      tag-identity cross-reference cannot run; fix the rule or the code"
                .to_string(),
            waived: false,
        });
        return;
    };
    let tag_idents: std::collections::HashSet<&str> =
        (ts..te).filter_map(|i| ctx.ident(i)).collect();

    // (a) Every variant field ident must be mentioned in tag(). Fields
    // are idents directly followed by `:` (not `::`) at depth 1 inside a
    // variant's brace group (depth 1 relative to the enum body).
    let mut depth = 0usize;
    for i in es..ee {
        match ctx.punct(i) {
            Some('{') => depth += 1,
            Some('}') => depth = depth.saturating_sub(1),
            _ => {}
        }
        if depth != 1 {
            continue;
        }
        let Some(field) = ctx.ident(i) else { continue };
        if ctx.punct(i + 1) != Some(':') || ctx.punct(i + 2) == Some(':') {
            continue;
        }
        if !tag_idents.contains(field) {
            out.push(finding(
                ctx,
                "tag-identity",
                i,
                format!(
                    "`AlgorithmSpec` field `{field}` is never mentioned in `tag()`: every \
                     result-affecting knob must be an identity bit (bind it `_` with a \
                     comment only if provably identity-free)"
                ),
            ));
        }
    }

    // (b) Every serde field key in `impl Serialize for AlgorithmSpec`
    // must be mentioned in tag() — catches a knob serialised for replay
    // but forgotten in the identity digest.
    let ser_range = (0..ctx.toks.len()).find_map(|i| {
        (ctx.ident(i) == Some("impl")
            && ctx.ident(i + 1) == Some("Serialize")
            && ctx.ident(i + 2) == Some("for")
            && ctx.ident(i + 3) == Some("AlgorithmSpec"))
        .then(|| brace_group(ctx, i + 4))
        .flatten()
    });
    if let Some((ss, se)) = ser_range {
        for i in ss..se {
            let TokKind::Str(key) = &ctx.toks[i].kind else {
                continue;
            };
            if ctx.punct(i + 1) != Some('.') || ctx.ident(i + 2) != Some("to_string") {
                continue;
            }
            if key == "kind" || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                continue;
            }
            if !tag_idents.contains(key.as_str()) {
                out.push(finding(
                    ctx,
                    "tag-identity",
                    i,
                    format!(
                        "serde field \"{key}\" of `AlgorithmSpec` is never mentioned in \
                         `tag()`: a knob that round-trips for replay must be an identity bit"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// R7: socket discipline
// ---------------------------------------------------------------------

/// Socket types whose mere mention (as `net::…`) marks network I/O. No
/// path is allowlisted: the serve crate's HTTP edge waives each site
/// individually, so every socket in the workspace is accounted for by a
/// written reason rather than a directory exemption.
const SOCKET_TYPES: &[&str] = &[
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "UnixListener",
    "UnixStream",
    "UnixDatagram",
];

fn socket_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.ident(i) != Some("net") || !ctx.path_sep(i + 1) {
            continue;
        }
        let report = |out: &mut Vec<Finding>, at: usize, t: &str| {
            out.push(finding(
                ctx,
                "socket-discipline",
                at,
                format!(
                    "raw socket `{t}`: network I/O lives only at the serve crate's HTTP \
                     edge, and each site there must carry a waiver naming the boundary \
                     it implements"
                ),
            ));
        };
        // Grouped import: `use std::net::{SocketAddr, TcpStream, …};`
        if ctx.punct(i + 3) == Some('{') {
            let mut j = i + 4;
            while j < ctx.toks.len() && ctx.punct(j) != Some('}') {
                if let Some(t) = ctx.ident(j) {
                    if SOCKET_TYPES.contains(&t) {
                        report(out, j, t);
                    }
                }
                j += 1;
            }
        } else if let Some(t) = ctx.ident(i + 3) {
            // Single import or qualified use: `std::net::TcpStream`.
            if SOCKET_TYPES.contains(&t) {
                report(out, i + 3, t);
            }
        }
    }
}

// ---------------------------------------------------------------------
// R8: lock discipline
// ---------------------------------------------------------------------

/// Lock types that must come from vendored `parking_lot`, where the
/// debug-build lock-order detector can see every acquisition.
const STD_LOCKS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

fn lock_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_path {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        // Qualified use: `… sync :: Mutex`.
        if ctx.ident(i) == Some("sync") && ctx.path_sep(i + 1) {
            if let Some(t) = ctx.ident(i + 3) {
                if STD_LOCKS.contains(&t) {
                    out.push(finding(
                        ctx,
                        "lock-discipline",
                        i + 3,
                        format!(
                            "`std::sync::{t}` bypasses the lock-order deadlock detector; \
                             use vendored `parking_lot::{t}`"
                        ),
                    ));
                }
            }
        }
        // Import: `use std :: sync :: { …, Mutex, … };`
        if ctx.ident(i) == Some("use")
            && ctx.ident(i + 1) == Some("std")
            && ctx.path_sep(i + 2)
            && ctx.ident(i + 4) == Some("sync")
        {
            let mut j = i + 5;
            while j < ctx.toks.len() && ctx.punct(j) != Some(';') {
                if let Some(t) = ctx.ident(j) {
                    // Skip the `sync::Mutex` shape already reported above.
                    if STD_LOCKS.contains(&t) && !(j == i + 7 && ctx.path_sep(i + 5)) {
                        out.push(finding(
                            ctx,
                            "lock-discipline",
                            j,
                            format!(
                                "importing `std::sync::{t}` bypasses the lock-order \
                                 deadlock detector; import it from vendored `parking_lot`"
                            ),
                        ));
                    }
                }
                j += 1;
            }
        }
    }
}
