//! The unified search API: one front door for every backend.
//!
//! A [`SearchSpec`] names a strategy ([`AlgorithmSpec`]: NMCS, NRPA, UCT,
//! the Monte-Carlo baselines, leaf-parallel batching, root-parallel
//! fan-out), its per-algorithm configuration, a [`Budget`] (wall-clock
//! deadline, playout cap, node cap), and a seed — everything needed to
//! say *"run X on game G for at most 200 ms with this seed"* uniformly
//! across backends. Specs are plain serde-able data, so any sweep row or
//! service job is reproducible from one pasted JSON string.
//!
//! ```
//! use nmcs_core::spec::SearchSpec;
//! use nmcs_core::{CodedGame, Game, Score};
//!
//! #[derive(Clone)]
//! struct Walk(Vec<u8>);
//! impl Game for Walk {
//!     type Move = u8;
//!     fn legal_moves(&self, out: &mut Vec<u8>) {
//!         if self.0.len() < 4 { out.extend_from_slice(&[0, 1]); }
//!     }
//!     fn play(&mut self, mv: &u8) { self.0.push(*mv); }
//!     fn score(&self) -> Score { self.0.iter().map(|&m| m as Score).sum() }
//!     fn moves_played(&self) -> usize { self.0.len() }
//! }
//! impl CodedGame for Walk {
//!     fn move_code(&self, mv: &u8) -> u64 { *mv as u64 }
//! }
//!
//! let report = SearchSpec::nested(1).deadline_ms(200).seed(42).run(&Walk(vec![]));
//! assert_eq!(report.score, 4); // level-1 NMCS solves the toy walk
//! assert!(report.interrupted.is_none());
//! ```
//!
//! Determinism contract: for any spec whose budget is never hit, the
//! result is **bit-identical** to the historical direct call with the
//! same seed (`nested`, `nrpa`, `uct`, the baselines, `leaf_nested`,
//! `run_threads`/`run_reference`) — budget and cancellation polls never
//! touch the RNG stream. `tests/budget_props.rs` and
//! `tests/spec_api.rs` assert both halves of the contract.

use crate::baselines::{
    beam_search_with, flat_monte_carlo_with, iterated_sampling_with, simulated_annealing_with,
    AnnealingConfig,
};
use crate::ctx::SearchCtx;
use crate::exec;
use crate::game::Game;
use crate::nrpa::{nrpa_with, CodedGame, NrpaConfig};
use crate::report::SearchReport;
use crate::rng::Rng;
use crate::search::{nested_with, MemoryPolicy, NestedConfig, PlayoutScratch};
use crate::uct::{
    uct_tree_parallel_on, uct_with, LockStrategy, StatsMode, TpTree, TreeParallelOpts, UctConfig,
    DEFAULT_TT_BYTES,
};
use serde::{Deserialize, Error, Serialize, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

/// A cooperative cancellation handle usable with any backend (not just
/// the engine): clone it, hand one clone to the search via
/// [`SearchSpec::run_cancellable`] or [`SearchBuilder::cancel`], keep the
/// other, and call [`CancelToken::cancel`] from any thread. Every search
/// loop polls the token (at playout-move granularity), so even a deep
/// nested search unwinds within microseconds, returning its best-so-far
/// result with [`SearchReport::interrupted`] set to
/// [`crate::report::Interruption::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------

/// Stopping limits enforced uniformly across every backend. All fields
/// are optional; an all-`None` budget never stops a search.
///
/// Checks happen in the shared playout/evaluation loops (see
/// [`crate::ctx::SearchCtx`]), so a deadline or playout cap behaves the
/// same whether the spec runs serially, leaf-parallel, or root-parallel
/// — and the checks never perturb the RNG stream, so an *unhit* budget
/// leaves results bit-identical to an unbudgeted run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Budget {
    /// Wall-clock limit, measured from the start of the run.
    pub deadline: Option<Duration>,
    /// Maximum completed random playouts (summed across workers).
    pub max_playouts: Option<u64>,
    /// Maximum candidate expansions / tree nodes (summed across workers).
    pub max_nodes: Option<u64>,
}

impl Budget {
    /// No limits.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_playouts.is_some() || self.max_nodes.is_some()
    }

    /// Chainable wall-clock limit.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Chainable playout cap.
    pub fn with_max_playouts(mut self, n: u64) -> Self {
        self.max_playouts = Some(n);
        self
    }

    /// Chainable node (expansion) cap.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }
}

impl Serialize for Budget {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "deadline_ms".to_string(),
                self.deadline.map(|d| d.as_secs_f64() * 1e3).to_value(),
            ),
            ("max_playouts".to_string(), self.max_playouts.to_value()),
            ("max_nodes".to_string(), self.max_nodes.to_value()),
        ])
    }
}

impl Deserialize for Budget {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let opt = |name: &str| v.get_field(name).cloned().unwrap_or(Value::Null);
        let deadline_ms: Option<f64> = Option::from_value(&opt("deadline_ms"))?;
        Ok(Budget {
            deadline: deadline_ms.map(|ms| Duration::from_secs_f64((ms / 1e3).max(0.0))),
            max_playouts: Option::from_value(&opt("max_playouts"))?,
            max_nodes: Option::from_value(&opt("max_nodes"))?,
        })
    }
}

// ---------------------------------------------------------------------
// AlgorithmSpec
// ---------------------------------------------------------------------

/// Which search strategy to run, with its per-algorithm configuration.
/// Every variant maps to exactly one historical entry point, so a spec
/// run is reproducible as a direct library call with the same seed.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmSpec {
    /// Nested Monte-Carlo Search at `level` ([`crate::search::nested_with`]).
    Nested { level: u32, config: NestedConfig },
    /// Nested Rollout Policy Adaptation at `level` ([`crate::nrpa::nrpa_with`]).
    Nrpa { level: u32, config: NrpaConfig },
    /// Single-agent UCT ([`crate::uct::uct_with`]).
    Uct {
        config: UctConfig,
        /// Warm-tree mode: the search runs on a re-rootable shared tree
        /// with a bounded transposition table keyed by
        /// [`Game::state_hash`], so transposed move orders share
        /// statistics and `SearchSession` can keep the tree across
        /// steps. **Off** (the default): bit-identical to the pre-knob
        /// behaviour per seed. **On**: a different (table-backed)
        /// search — run-to-run deterministic, but *not* bit-identical
        /// to reuse-off. Part of [`AlgorithmSpec::tag`] identity.
        tree_reuse: bool,
    },
    /// Flat Monte-Carlo: best of `playouts` random playouts
    /// ([`crate::baselines::flat_monte_carlo_with`]).
    FlatMc { playouts: usize },
    /// Iterated sampling with `samples` playouts per candidate move
    /// ([`crate::baselines::iterated_sampling_with`]).
    IteratedSampling { samples: usize },
    /// Beam search of `width` with `samples` playouts per candidate
    /// ([`crate::baselines::beam_search_with`]).
    Beam { width: usize, samples: usize },
    /// A single random playout (the paper's `sample`).
    Sample,
    /// Leaf-parallel batched NMCS: each candidate move evaluated by a
    /// batch of seeded `level − 1` evaluations on a worker pool
    /// (the strategy of `parallel_nmcs::leaf_nested`).
    LeafParallel {
        level: u32,
        batch: usize,
        threads: usize,
        playout_cap: Option<usize>,
        /// Evaluate and play only the first move (paper Tables I–II mode).
        first_move: bool,
    },
    /// Root-parallel NMCS: the paper's root/median/client hierarchy,
    /// one median game per root move on a worker pool (the strategy of
    /// `parallel_nmcs::run_threads`; `level ≥ 2`, clients run
    /// `level − 2`).
    RootParallel {
        level: u32,
        threads: usize,
        playout_cap: Option<usize>,
        /// Evaluate and play only the first move (paper Tables I–II mode).
        first_move: bool,
    },
    /// Tree-parallel UCT ([`crate::uct::uct_tree_parallel`]): `threads`
    /// workers share one tree, with three execution knobs — the
    /// [`LockStrategy`] (sharded per-node locks vs the global arena
    /// mutex), the [`StatsMode`] (WU-UCT unobserved-sample statistics
    /// vs plain virtual loss), and `leaf_batch` (≥ 2 hands each
    /// worker's pending rollouts to the executor pool in slabs). The
    /// one backend whose multi-worker results are schedule-dependent;
    /// `threads == 1` is deterministic at any knob setting and (with
    /// `leaf_batch < 2`) bit-identical to [`AlgorithmSpec::Uct`] per
    /// seed.
    TreeParallel {
        config: UctConfig,
        threads: usize,
        lock: LockStrategy,
        stats: StatsMode,
        leaf_batch: usize,
        /// With `leaf_batch ≥ 2`: hand a filled slab to the executor
        /// pool only when its idle-workers gauge shows someone free to
        /// help; otherwise run the same slots, in the same order with
        /// the same per-iteration seeds, on the collecting worker
        /// itself. Purely a placement heuristic: every rollout keeps
        /// its iteration-derived seed, so the deterministic
        /// (single-worker) form is bit-identical to the static slab
        /// path, and multi-worker runs stay within the backend's usual
        /// schedule-dependence.
        leaf_batch_dynamic: bool,
        /// Warm-tree mode, as on [`AlgorithmSpec::Uct`]: expansions
        /// intern their position's [`Game::state_hash`] in a bounded
        /// transposition table so transposed lines share statistics.
        /// Off (default): bit-identical to the pre-knob behaviour.
        /// On at `threads == 1`: run-to-run deterministic. Part of
        /// [`AlgorithmSpec::tag`] identity.
        tree_reuse: bool,
    },
    /// Simulated annealing over decision vectors
    /// ([`crate::baselines::simulated_annealing_with`]), the last
    /// pre-paper baseline (Hyyrö & Poranen's Morpion record holder).
    SimulatedAnnealing { config: AnnealingConfig },
}

impl AlgorithmSpec {
    /// Paper-faithful NMCS at `level`.
    pub fn nested(level: u32) -> Self {
        AlgorithmSpec::Nested {
            level,
            config: NestedConfig::paper(),
        }
    }

    /// NRPA at `level` with `iterations` recursive calls per level and
    /// the paper defaults for everything else (routed through
    /// [`NrpaConfig::paper`], so tunables are never hardcoded at call
    /// sites).
    pub fn nrpa(level: u32, iterations: usize) -> Self {
        AlgorithmSpec::Nrpa {
            level,
            config: NrpaConfig::with_iterations(iterations),
        }
    }

    /// Tree-parallel UCT on `threads` workers with default tunables
    /// (sharded locks, WU-UCT statistics, inline rollouts).
    pub fn tree_parallel(threads: usize) -> Self {
        AlgorithmSpec::TreeParallel {
            config: UctConfig::default(),
            threads,
            lock: LockStrategy::default(),
            stats: StatsMode::default(),
            leaf_batch: 0,
            leaf_batch_dynamic: false,
            tree_reuse: false,
        }
    }

    /// Simulated annealing with the default schedule.
    pub fn simulated_annealing() -> Self {
        AlgorithmSpec::SimulatedAnnealing {
            config: AnnealingConfig::default(),
        }
    }

    /// Short label for logs, tables, and progress lines.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmSpec::Nested { .. } => "nested",
            AlgorithmSpec::Nrpa { .. } => "nrpa",
            AlgorithmSpec::Uct { .. } => "uct",
            AlgorithmSpec::FlatMc { .. } => "flat-mc",
            AlgorithmSpec::IteratedSampling { .. } => "iterated-sampling",
            AlgorithmSpec::Beam { .. } => "beam",
            AlgorithmSpec::Sample => "sample",
            AlgorithmSpec::LeafParallel { .. } => "leaf-parallel",
            AlgorithmSpec::RootParallel { .. } => "root-parallel",
            AlgorithmSpec::TreeParallel { .. } => "tree-parallel",
            AlgorithmSpec::SimulatedAnnealing { .. } => "simulated-annealing",
        }
    }

    /// Whether this strategy promises bit-identical results regardless
    /// of how many workers execute it (given the same seed and an unhit
    /// budget). True for everything except tree-parallel UCT above one
    /// worker: leaf- and root-parallel derive every evaluation's seed
    /// from its logical coordinates, but tree-parallel workers race on
    /// one shared tree, so their interleaving shapes the search itself.
    /// A *single* tree worker stays deterministic even in batched-leaf
    /// mode — slab rollouts are seeded by iteration index, so pool
    /// placement cannot change them.
    pub fn worker_count_deterministic(&self) -> bool {
        !matches!(
            self,
            AlgorithmSpec::TreeParallel { threads, .. } if *threads > 1
        )
    }

    /// Stable digest of the variant *and* its configuration (used by the
    /// engine's duplicate detection). Two algorithms with the same shape
    /// but different tunables must not look alike.
    pub fn tag(&self) -> u64 {
        let words: [u64; 6] = match self {
            AlgorithmSpec::Nested { level, config } => [
                0x100 + *level as u64,
                config.memory as u64,
                config.playout_cap.map_or(u64::MAX, |c| c as u64),
                0,
                0,
                0,
            ],
            AlgorithmSpec::Nrpa { level, config } => [
                0x200 + *level as u64,
                config.iterations as u64,
                config.alpha.to_bits(),
                0,
                0,
                0,
            ],
            AlgorithmSpec::Uct { config, tree_reuse } => [
                0x300,
                config.iterations as u64,
                config.exploration.to_bits(),
                config.max_bias.to_bits(),
                // Reuse changes the search (table-backed tree), so it
                // is identity; `false` keeps the pre-knob tag.
                *tree_reuse as u64,
                0,
            ],
            AlgorithmSpec::FlatMc { playouts } => [0x400, *playouts as u64, 0, 0, 0, 0],
            AlgorithmSpec::Sample => [0x500, 0, 0, 0, 0, 0],
            AlgorithmSpec::IteratedSampling { samples } => [0x600, *samples as u64, 0, 0, 0, 0],
            AlgorithmSpec::Beam { width, samples } => {
                [0x700, *width as u64, *samples as u64, 0, 0, 0]
            }
            AlgorithmSpec::LeafParallel {
                level,
                batch,
                threads: _,
                playout_cap,
                first_move,
            } => [
                0x800 + *level as u64,
                *batch as u64,
                playout_cap.map_or(u64::MAX, |c| c as u64),
                *first_move as u64,
                0,
                0,
            ],
            AlgorithmSpec::RootParallel {
                level,
                threads: _,
                playout_cap,
                first_move,
            } => [
                0x900 + *level as u64,
                playout_cap.map_or(u64::MAX, |c| c as u64),
                *first_move as u64,
                0,
                0,
                0,
            ],
            // Unlike leaf/root, the thread count IS part of a
            // tree-parallel identity: the workers race on one shared
            // tree, so different counts genuinely produce different
            // searches — and so are the lock/stats/batch knobs, which
            // change which search the racing workers perform.
            AlgorithmSpec::TreeParallel {
                config,
                threads,
                lock,
                stats,
                leaf_batch,
                leaf_batch_dynamic,
                tree_reuse,
            } => [
                0xA00,
                config.iterations as u64,
                config.exploration.to_bits(),
                config.max_bias.to_bits(),
                *threads as u64,
                {
                    let lock_code = match lock {
                        LockStrategy::Global => 0u64,
                        LockStrategy::Sharded => 1,
                    };
                    let stats_code = match stats {
                        StatsMode::VirtualLoss => 0u64,
                        StatsMode::WuUct => 1,
                    };
                    lock_code
                        | (stats_code << 8)
                        | ((*leaf_batch_dynamic as u64) << 9)
                        | ((*tree_reuse as u64) << 10)
                        | ((*leaf_batch as u64) << 16)
                },
            ],
            AlgorithmSpec::SimulatedAnnealing { config } => [
                0xB00,
                config.iterations as u64,
                config.t_initial.to_bits(),
                config.t_final.to_bits(),
                0,
                0,
            ],
        };
        let mut h = crate::rng::Fnv1a::new();
        for w in words {
            h.write_u64(w);
        }
        h.finish()
    }
}

// The serde representation tags each variant with a `kind` string and
// inlines its configuration; hand-written because the vendored derive
// does not handle data-carrying enums.
impl Serialize for AlgorithmSpec {
    fn to_value(&self) -> Value {
        let kind = |k: &str| ("kind".to_string(), Value::Str(k.to_string()));
        let fields = match self {
            AlgorithmSpec::Nested { level, config } => vec![
                kind("nested"),
                ("level".to_string(), level.to_value()),
                ("config".to_string(), config.to_value()),
            ],
            AlgorithmSpec::Nrpa { level, config } => vec![
                kind("nrpa"),
                ("level".to_string(), level.to_value()),
                ("config".to_string(), config.to_value()),
            ],
            AlgorithmSpec::Uct { config, tree_reuse } => vec![
                kind("uct"),
                ("config".to_string(), config.to_value()),
                ("tree_reuse".to_string(), tree_reuse.to_value()),
            ],
            AlgorithmSpec::FlatMc { playouts } => vec![
                kind("flat_mc"),
                ("playouts".to_string(), playouts.to_value()),
            ],
            AlgorithmSpec::IteratedSampling { samples } => vec![
                kind("iterated_sampling"),
                ("samples".to_string(), samples.to_value()),
            ],
            AlgorithmSpec::Beam { width, samples } => vec![
                kind("beam"),
                ("width".to_string(), width.to_value()),
                ("samples".to_string(), samples.to_value()),
            ],
            AlgorithmSpec::Sample => vec![kind("sample")],
            AlgorithmSpec::LeafParallel {
                level,
                batch,
                threads,
                playout_cap,
                first_move,
            } => vec![
                kind("leaf_parallel"),
                ("level".to_string(), level.to_value()),
                ("batch".to_string(), batch.to_value()),
                ("threads".to_string(), threads.to_value()),
                ("playout_cap".to_string(), playout_cap.to_value()),
                ("first_move".to_string(), first_move.to_value()),
            ],
            AlgorithmSpec::RootParallel {
                level,
                threads,
                playout_cap,
                first_move,
            } => vec![
                kind("root_parallel"),
                ("level".to_string(), level.to_value()),
                ("threads".to_string(), threads.to_value()),
                ("playout_cap".to_string(), playout_cap.to_value()),
                ("first_move".to_string(), first_move.to_value()),
            ],
            AlgorithmSpec::TreeParallel {
                config,
                threads,
                lock,
                stats,
                leaf_batch,
                leaf_batch_dynamic,
                tree_reuse,
            } => vec![
                kind("tree_parallel"),
                ("config".to_string(), config.to_value()),
                ("threads".to_string(), threads.to_value()),
                ("lock".to_string(), lock.to_value()),
                ("stats".to_string(), stats.to_value()),
                ("leaf_batch".to_string(), leaf_batch.to_value()),
                (
                    "leaf_batch_dynamic".to_string(),
                    leaf_batch_dynamic.to_value(),
                ),
                ("tree_reuse".to_string(), tree_reuse.to_value()),
            ],
            AlgorithmSpec::SimulatedAnnealing { config } => vec![
                kind("simulated_annealing"),
                ("config".to_string(), config.to_value()),
            ],
        };
        Value::Object(fields)
    }
}

impl Deserialize for AlgorithmSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| -> Result<&Value, Error> {
            v.get_field(name).ok_or_else(|| Error::missing_field(name))
        };
        let opt = |name: &str| v.get_field(name).cloned().unwrap_or(Value::Null);
        let kind = String::from_value(field("kind")?)?;
        match kind.as_str() {
            "nested" => Ok(AlgorithmSpec::Nested {
                level: u32::from_value(field("level")?)?,
                config: match v.get_field("config") {
                    Some(c) => NestedConfig::from_value(c)?,
                    None => NestedConfig::paper(),
                },
            }),
            "nrpa" => Ok(AlgorithmSpec::Nrpa {
                level: u32::from_value(field("level")?)?,
                config: match v.get_field("config") {
                    Some(c) => NrpaConfig::from_value(c)?,
                    None => NrpaConfig::paper(),
                },
            }),
            "uct" => Ok(AlgorithmSpec::Uct {
                config: match v.get_field("config") {
                    Some(c) => UctConfig::from_value(c)?,
                    None => UctConfig::default(),
                },
                // Pre-knob (PR-9) rows carry no `tree_reuse`; legacy
                // JSON replays with reuse off — the bit-identical path.
                tree_reuse: match v.get_field("tree_reuse") {
                    Some(b) => bool::from_value(b)?,
                    None => false,
                },
            }),
            "flat_mc" => Ok(AlgorithmSpec::FlatMc {
                playouts: usize::from_value(field("playouts")?)?,
            }),
            "iterated_sampling" => Ok(AlgorithmSpec::IteratedSampling {
                samples: usize::from_value(field("samples")?)?,
            }),
            "beam" => Ok(AlgorithmSpec::Beam {
                width: usize::from_value(field("width")?)?,
                samples: usize::from_value(field("samples")?)?,
            }),
            "sample" => Ok(AlgorithmSpec::Sample),
            "leaf_parallel" => Ok(AlgorithmSpec::LeafParallel {
                level: u32::from_value(field("level")?)?,
                batch: usize::from_value(field("batch")?)?,
                threads: usize::from_value(field("threads")?)?,
                playout_cap: Option::from_value(&opt("playout_cap"))?,
                first_move: bool::from_value(&opt("first_move")).unwrap_or(false),
            }),
            "root_parallel" => Ok(AlgorithmSpec::RootParallel {
                level: u32::from_value(field("level")?)?,
                threads: usize::from_value(field("threads")?)?,
                playout_cap: Option::from_value(&opt("playout_cap"))?,
                first_move: bool::from_value(&opt("first_move")).unwrap_or(false),
            }),
            "tree_parallel" => Ok(AlgorithmSpec::TreeParallel {
                config: match v.get_field("config") {
                    Some(c) => UctConfig::from_value(c)?,
                    None => UctConfig::default(),
                },
                threads: usize::from_value(field("threads")?)?,
                // Pre-knob (PR-4) rows carry none of these fields; they
                // replay on the current defaults.
                lock: match v.get_field("lock") {
                    Some(l) => LockStrategy::from_value(l)?,
                    None => LockStrategy::default(),
                },
                stats: match v.get_field("stats") {
                    Some(s) => StatsMode::from_value(s)?,
                    None => StatsMode::default(),
                },
                leaf_batch: match v.get_field("leaf_batch") {
                    Some(b) => usize::from_value(b)?,
                    None => 0,
                },
                leaf_batch_dynamic: match v.get_field("leaf_batch_dynamic") {
                    Some(b) => bool::from_value(b)?,
                    None => false,
                },
                tree_reuse: match v.get_field("tree_reuse") {
                    Some(b) => bool::from_value(b)?,
                    None => false,
                },
            }),
            "simulated_annealing" => Ok(AlgorithmSpec::SimulatedAnnealing {
                config: match v.get_field("config") {
                    Some(c) => AnnealingConfig::from_value(c)?,
                    None => AnnealingConfig::default(),
                },
            }),
            other => Err(Error::custom(format!("unknown algorithm kind `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------
// SearchSpec
// ---------------------------------------------------------------------

/// A complete, serde-able description of one search run: strategy +
/// configuration + [`Budget`] + seed. Build one fluently via the
/// constructors (which return a [`SearchBuilder`]) and run it with
/// [`SearchSpec::run`] / [`Searcher::search`]:
///
/// ```
/// use nmcs_core::spec::SearchSpec;
/// # use nmcs_core::{CodedGame, Game, Score};
/// # #[derive(Clone)]
/// # struct Walk(Vec<u8>);
/// # impl Game for Walk {
/// #     type Move = u8;
/// #     fn legal_moves(&self, out: &mut Vec<u8>) {
/// #         if self.0.len() < 3 { out.extend_from_slice(&[0, 1]); }
/// #     }
/// #     fn play(&mut self, mv: &u8) { self.0.push(*mv); }
/// #     fn score(&self) -> Score { self.0.iter().map(|&m| m as Score).sum() }
/// #     fn moves_played(&self) -> usize { self.0.len() }
/// # }
/// # impl CodedGame for Walk { fn move_code(&self, mv: &u8) -> u64 { *mv as u64 } }
/// let spec = SearchSpec::nested(1).seed(7).max_playouts(10_000).build();
/// let json = serde_json::to_string(&spec).unwrap();          // persist …
/// let again: SearchSpec = serde_json::from_str(&json).unwrap(); // … replay
/// assert_eq!(spec, again);
/// assert_eq!(spec.run(&Walk(vec![])).score, again.run(&Walk(vec![])).score);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// The strategy and its configuration.
    pub algorithm: AlgorithmSpec,
    /// Stopping limits (all optional).
    pub budget: Budget,
    /// Root seed; every random draw of the run derives from it.
    pub seed: u64,
}

impl SearchSpec {
    /// A spec from parts (the fluent constructors below are usually
    /// nicer).
    pub fn new(algorithm: AlgorithmSpec) -> Self {
        SearchSpec {
            algorithm,
            budget: Budget::none(),
            seed: 0,
        }
    }

    /// Paper-faithful NMCS at `level`.
    pub fn nested(level: u32) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::nested(level))
    }

    /// NMCS at `level` with an explicit [`NestedConfig`].
    pub fn nested_with(level: u32, config: NestedConfig) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Nested { level, config })
    }

    /// NRPA at `level` with the paper defaults ([`NrpaConfig::paper`]).
    pub fn nrpa(level: u32) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Nrpa {
            level,
            config: NrpaConfig::paper(),
        })
    }

    /// NRPA at `level` with an explicit [`NrpaConfig`].
    pub fn nrpa_with(level: u32, config: NrpaConfig) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Nrpa { level, config })
    }

    /// Single-agent UCT with default tunables.
    pub fn uct() -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Uct {
            config: UctConfig::default(),
            tree_reuse: false,
        })
    }

    /// UCT with an explicit [`UctConfig`].
    pub fn uct_with(config: UctConfig) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Uct {
            config,
            tree_reuse: false,
        })
    }

    /// Flat Monte-Carlo with `playouts` samples.
    pub fn flat_mc(playouts: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::FlatMc { playouts })
    }

    /// Iterated sampling with `samples` playouts per candidate move.
    pub fn iterated_sampling(samples: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::IteratedSampling { samples })
    }

    /// Beam search of `width` with `samples` playouts per candidate.
    pub fn beam(width: usize, samples: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Beam { width, samples })
    }

    /// A single random playout.
    pub fn sample() -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::Sample)
    }

    /// Leaf-parallel batched NMCS: `batch` evaluations per candidate
    /// move on `threads` workers.
    pub fn leaf(level: u32, batch: usize, threads: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::LeafParallel {
            level,
            batch,
            threads,
            playout_cap: None,
            first_move: false,
        })
    }

    /// Root-parallel NMCS (`level ≥ 2`) on `threads` workers.
    pub fn root_parallel(level: u32, threads: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::RootParallel {
            level,
            threads,
            playout_cap: None,
            first_move: false,
        })
    }

    /// Tree-parallel UCT on `threads` workers (default tunables:
    /// sharded locks, WU-UCT statistics, inline rollouts — tune with
    /// [`SearchBuilder::lock_strategy`], [`SearchBuilder::stats_mode`],
    /// and [`SearchBuilder::leaf_batch`]). With `threads == 1` this is
    /// bit-identical to [`SearchSpec::uct`] per seed; with more
    /// workers, results are schedule-dependent (see
    /// [`AlgorithmSpec::worker_count_deterministic`]).
    pub fn tree_parallel(threads: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::tree_parallel(threads))
    }

    /// Tree-parallel UCT with an explicit [`UctConfig`] (default
    /// execution knobs; tune with the builder methods).
    pub fn tree_parallel_with(config: UctConfig, threads: usize) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::TreeParallel {
            config,
            threads,
            lock: LockStrategy::default(),
            stats: StatsMode::default(),
            leaf_batch: 0,
            leaf_batch_dynamic: false,
            tree_reuse: false,
        })
    }

    /// Simulated annealing with the default schedule.
    pub fn simulated_annealing() -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::simulated_annealing())
    }

    /// Simulated annealing with an explicit [`AnnealingConfig`].
    pub fn simulated_annealing_with(config: AnnealingConfig) -> SearchBuilder {
        SearchBuilder::new(AlgorithmSpec::SimulatedAnnealing { config })
    }

    /// Runs the spec on `game`. See [`Searcher::search`] for the full
    /// contract.
    pub fn run<G>(&self, game: &G) -> SearchReport<G::Move>
    where
        G: CodedGame + Send + Sync,
        G::Move: Send + Sync,
    {
        self.search(game, None)
    }

    /// Runs the spec on `game`, observing `cancel` cooperatively: every
    /// backend polls the token at playout-move granularity and returns
    /// its best-so-far result with `interrupted` set when cancelled.
    pub fn run_cancellable<G>(&self, game: &G, cancel: &CancelToken) -> SearchReport<G::Move>
    where
        G: CodedGame + Send + Sync,
        G::Move: Send + Sync,
    {
        self.search(game, Some(cancel))
    }
}

impl Serialize for SearchSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("budget".to_string(), self.budget.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }
}

impl Deserialize for SearchSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(SearchSpec {
            algorithm: AlgorithmSpec::from_value(
                v.get_field("algorithm")
                    .ok_or_else(|| Error::missing_field("algorithm"))?,
            )?,
            budget: match v.get_field("budget") {
                Some(b) => Budget::from_value(b)?,
                None => Budget::none(),
            },
            seed: match v.get_field("seed") {
                Some(s) => u64::from_value(s)?,
                None => 0,
            },
        })
    }
}

// ---------------------------------------------------------------------
// Searcher
// ---------------------------------------------------------------------

/// A strategy that can search a game under a budget. Implemented by
/// [`SearchSpec`] for every coded game; future backends (tree-parallel,
/// cluster, async) plug in by implementing this trait. The object-safe
/// erased twin for heterogeneous collections is
/// [`crate::erased::AnySearcher`].
pub trait Searcher<G: Game> {
    /// Runs the search on `game`, optionally observing a cancel token.
    ///
    /// Contract: the returned report's `sequence` replays from `game` to
    /// a position whose score is `score` (one exception: a parallel
    /// strategy in `first_move` mode reports the best *evaluation* score
    /// of the single move it plays, the paper's Tables I–II semantics);
    /// `interrupted` is `Some` iff the run stopped on a budget limit or
    /// cancellation; and when the budget is not hit, the result is
    /// bit-identical to the same strategy run without any budget.
    fn search(&self, game: &G, cancel: Option<&CancelToken>) -> SearchReport<G::Move>;
}

impl<G> Searcher<G> for SearchSpec
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    fn search(&self, game: &G, cancel: Option<&CancelToken>) -> SearchReport<G::Move> {
        let started = crate::metrics::monotonic_now();
        let mut ctx = SearchCtx::new(&self.budget, cancel);
        let mut client_jobs = 0u64;
        let (score, sequence) = match &self.algorithm {
            AlgorithmSpec::Nested { level, config } => {
                let mut rng = Rng::seeded(self.seed);
                nested_with(game, *level, config, &mut rng, &mut ctx)
            }
            AlgorithmSpec::Nrpa { level, config } => {
                let mut rng = Rng::seeded(self.seed);
                nrpa_with(game, *level, config, &mut rng, &mut ctx)
            }
            AlgorithmSpec::Uct { config, tree_reuse } => {
                if *tree_reuse {
                    // Reuse-on routes through the width-1 shared tree
                    // with a transposition table. A single unbatched
                    // tree worker is bit-identical to `uct_with` when
                    // no table intervenes, so the *only* behavioural
                    // delta of the knob is the statistics sharing it
                    // exists to provide.
                    let opts = TreeParallelOpts::new(1);
                    let tree = TpTree::with_table(config, opts.lock, opts.stats, DEFAULT_TT_BYTES);
                    uct_tree_parallel_on(game, &tree, config, &opts, self.seed, &mut ctx)
                } else {
                    let mut rng = Rng::seeded(self.seed);
                    uct_with(game, config, &mut rng, &mut ctx)
                }
            }
            AlgorithmSpec::FlatMc { playouts } => {
                let mut rng = Rng::seeded(self.seed);
                flat_monte_carlo_with(game, *playouts, &mut rng, &mut ctx)
            }
            AlgorithmSpec::IteratedSampling { samples } => {
                let mut rng = Rng::seeded(self.seed);
                iterated_sampling_with(game, *samples, &mut rng, &mut ctx)
            }
            AlgorithmSpec::Beam { width, samples } => {
                let mut rng = Rng::seeded(self.seed);
                beam_search_with(game, *width, *samples, &mut rng, &mut ctx)
            }
            AlgorithmSpec::Sample => {
                // Draw-for-draw identical to the paper's `sample` (the
                // scratch runner is asserted equivalent by unit tests).
                let mut rng = Rng::seeded(self.seed);
                let mut pos = game.clone();
                let mut seq = Vec::new();
                let mut scratch = PlayoutScratch::new();
                let score = scratch.run(&mut pos, &mut rng, None, &mut seq, &mut ctx);
                (score, seq)
            }
            AlgorithmSpec::LeafParallel {
                level,
                batch,
                threads,
                playout_cap,
                first_move,
            } => {
                let run = exec::leaf_parallel(
                    game,
                    *level,
                    *batch,
                    *threads,
                    *playout_cap,
                    *first_move,
                    self.seed,
                    &mut ctx,
                );
                client_jobs = run.client_jobs;
                (run.score, run.sequence)
            }
            AlgorithmSpec::RootParallel {
                level,
                threads,
                playout_cap,
                first_move,
            } => {
                let run = exec::root_parallel(
                    game,
                    *level,
                    *threads,
                    *playout_cap,
                    *first_move,
                    self.seed,
                    &mut ctx,
                );
                client_jobs = run.client_jobs;
                (run.score, run.sequence)
            }
            AlgorithmSpec::TreeParallel {
                config,
                threads,
                lock,
                stats,
                leaf_batch,
                leaf_batch_dynamic,
                tree_reuse,
            } => {
                let opts = TreeParallelOpts {
                    threads: *threads,
                    lock: *lock,
                    stats: *stats,
                    leaf_batch: *leaf_batch,
                    leaf_batch_dynamic: *leaf_batch_dynamic,
                };
                let tree = if *tree_reuse {
                    TpTree::with_table(config, opts.lock, opts.stats, DEFAULT_TT_BYTES)
                } else {
                    TpTree::new(config, opts.lock, opts.stats)
                };
                uct_tree_parallel_on(game, &tree, config, &opts, self.seed, &mut ctx)
            }
            AlgorithmSpec::SimulatedAnnealing { config } => {
                let mut rng = Rng::seeded(self.seed);
                simulated_annealing_with(game, config, &mut rng, &mut ctx)
            }
        };
        let interrupted = ctx.interruption();
        let elapsed = started.elapsed();
        let stats = ctx.into_stats();
        // Metrics are recorded once per *completed search*, after the
        // backend returned — never inside a rollout loop, and never
        // touching the RNG, so enabling them cannot change any result
        // (asserted by `tests/metrics_props.rs`).
        if crate::metrics::metrics_enabled() {
            let reg = crate::metrics::search_metrics();
            reg.searches.incr();
            reg.playouts.add(stats.playouts);
            reg.playout_moves.add(stats.playout_moves);
            match interrupted {
                Some(crate::report::Interruption::Deadline) => reg.deadline_trips.incr(),
                Some(crate::report::Interruption::PlayoutBudget) => reg.playout_trips.incr(),
                Some(crate::report::Interruption::NodeBudget) => reg.node_trips.incr(),
                Some(crate::report::Interruption::Cancelled) => reg.cancellations.incr(),
                None => {}
            }
            reg.wall.record(
                self.algorithm.tag(),
                self.algorithm.label(),
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            );
        }
        SearchReport {
            score,
            sequence,
            stats,
            elapsed,
            client_jobs,
            interrupted,
            seed: self.seed,
        }
    }
}

// ---------------------------------------------------------------------
// SearchBuilder
// ---------------------------------------------------------------------

/// Fluent builder returned by the [`SearchSpec`] constructors. Every
/// method is chainable; finish with [`SearchBuilder::build`] (to get the
/// serde-able spec) or [`SearchBuilder::run`] (to search immediately):
///
/// `SearchSpec::nested(2).deadline_ms(200).seed(42).run(&game)`
#[derive(Debug, Clone)]
pub struct SearchBuilder {
    spec: SearchSpec,
    cancel: Option<CancelToken>,
}

impl SearchBuilder {
    fn new(algorithm: AlgorithmSpec) -> Self {
        SearchBuilder {
            spec: SearchSpec::new(algorithm),
            cancel: None,
        }
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Replaces the whole budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.spec.budget = budget;
        self
    }

    /// Wall-clock limit.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.spec.budget.deadline = Some(d);
        self
    }

    /// Wall-clock limit in milliseconds.
    pub fn deadline_ms(self, ms: u64) -> Self {
        self.deadline(Duration::from_millis(ms))
    }

    /// Playout cap (completed playouts, summed across workers).
    pub fn max_playouts(mut self, n: u64) -> Self {
        self.spec.budget.max_playouts = Some(n);
        self
    }

    /// Node/expansion cap (summed across workers).
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.spec.budget.max_nodes = Some(n);
        self
    }

    /// Cross-step memory policy (NMCS variants only; ignored by other
    /// strategies).
    pub fn memory(mut self, memory: MemoryPolicy) -> Self {
        if let AlgorithmSpec::Nested { config, .. } = &mut self.spec.algorithm {
            config.memory = memory;
        }
        self
    }

    /// Per-playout move cap (NMCS and parallel variants; ignored by
    /// strategies without one).
    pub fn playout_cap(mut self, cap: usize) -> Self {
        match &mut self.spec.algorithm {
            AlgorithmSpec::Nested { config, .. } => config.playout_cap = Some(cap),
            AlgorithmSpec::LeafParallel { playout_cap, .. }
            | AlgorithmSpec::RootParallel { playout_cap, .. } => *playout_cap = Some(cap),
            _ => {}
        }
        self
    }

    /// Evaluate and play only the first move (parallel variants; the
    /// paper's Tables I–II mode).
    pub fn first_move_only(mut self) -> Self {
        match &mut self.spec.algorithm {
            AlgorithmSpec::LeafParallel { first_move, .. }
            | AlgorithmSpec::RootParallel { first_move, .. } => *first_move = true,
            _ => {}
        }
        self
    }

    /// How tree-parallel descents lock the shared tree (tree-parallel
    /// only; ignored by other strategies).
    pub fn lock_strategy(mut self, strategy: LockStrategy) -> Self {
        if let AlgorithmSpec::TreeParallel { lock, .. } = &mut self.spec.algorithm {
            *lock = strategy;
        }
        self
    }

    /// How in-flight tree-parallel descents bias selection
    /// (tree-parallel only; ignored by other strategies).
    pub fn stats_mode(mut self, mode: StatsMode) -> Self {
        if let AlgorithmSpec::TreeParallel { stats, .. } = &mut self.spec.algorithm {
            *stats = mode;
        }
        self
    }

    /// Slab size for batched leaf evaluation — `0`/`1` runs rollouts
    /// inline on the descending worker, `≥ 2` hands each worker's
    /// pending rollouts to the executor pool in slabs (tree-parallel
    /// only; ignored by other strategies).
    pub fn leaf_batch(mut self, batch: usize) -> Self {
        if let AlgorithmSpec::TreeParallel { leaf_batch, .. } = &mut self.spec.algorithm {
            *leaf_batch = batch;
        }
        self
    }

    /// Gates slab hand-off on the pool's idle-workers gauge: a filled
    /// slab goes to the executor pool only when an idle worker could
    /// actually pick slots up, and otherwise runs on the collecting
    /// worker with identical per-iteration seeds — a placement-only
    /// heuristic that leaves the deterministic single-worker form
    /// bit-identical to the static slab path (tree-parallel with
    /// `leaf_batch ≥ 2` only; ignored by other strategies). Part of
    /// [`AlgorithmSpec::tag`] identity.
    pub fn leaf_batch_dynamic(mut self, dynamic: bool) -> Self {
        if let AlgorithmSpec::TreeParallel {
            leaf_batch_dynamic, ..
        } = &mut self.spec.algorithm
        {
            *leaf_batch_dynamic = dynamic;
        }
        self
    }

    /// Warm-tree mode (UCT and tree-parallel only; ignored by other
    /// strategies): the search runs on a re-rootable shared tree with a
    /// bounded transposition table keyed by [`Game::state_hash`], so
    /// transposed move orders share node statistics and sessions can
    /// keep the tree warm between steps.
    ///
    /// Determinism contract, stated explicitly: **reuse-off is
    /// bit-identical to the pre-knob behaviour** (the legacy code path
    /// runs verbatim, and legacy JSON without the field deserialises to
    /// off); **reuse-on is run-to-run deterministic at width 1** (same
    /// spec + seed → same result on every run), but is a different
    /// search from reuse-off — table sharing is the point. Part of
    /// [`AlgorithmSpec::tag`] identity.
    pub fn tree_reuse(mut self, reuse: bool) -> Self {
        match &mut self.spec.algorithm {
            AlgorithmSpec::Uct { tree_reuse, .. }
            | AlgorithmSpec::TreeParallel { tree_reuse, .. } => *tree_reuse = reuse,
            _ => {}
        }
        self
    }

    /// Attaches a cancel token observed by [`SearchBuilder::run`].
    pub fn cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Finishes the builder, returning the plain serde-able spec.
    pub fn build(self) -> SearchSpec {
        self.spec
    }

    /// Builds and immediately runs on `game`.
    pub fn run<G>(self, game: &G) -> SearchReport<G::Move>
    where
        G: CodedGame + Send + Sync,
        G::Move: Send + Sync,
    {
        self.spec.search(game, self.cancel.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Score;
    use crate::report::Interruption;

    /// Ternary toy with a unique optimum at all-2s, coded for NRPA.
    #[derive(Clone, Debug)]
    struct Ternary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Ternary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    impl CodedGame for Ternary {
        fn move_code(&self, mv: &u8) -> u64 {
            (self.taken.len() as u64) << 2 | *mv as u64
        }
    }

    fn game() -> Ternary {
        Ternary {
            depth: 4,
            taken: vec![],
        }
    }

    #[test]
    fn builder_produces_the_expected_spec() {
        let spec = SearchSpec::nested(2)
            .deadline_ms(200)
            .seed(42)
            .max_playouts(1_000)
            .build();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.budget.deadline, Some(Duration::from_millis(200)));
        assert_eq!(spec.budget.max_playouts, Some(1_000));
        assert!(matches!(
            spec.algorithm,
            AlgorithmSpec::Nested { level: 2, .. }
        ));
    }

    #[allow(deprecated)]
    #[test]
    fn every_serial_strategy_matches_its_legacy_entry_point() {
        use crate::baselines::{beam_search, flat_monte_carlo, iterated_sampling};
        use crate::nrpa::nrpa;
        use crate::search::{nested, sample};
        use crate::uct::uct;

        let g = game();
        for seed in [1u64, 7, 42] {
            let r = SearchSpec::nested(2).seed(seed).run(&g);
            let d = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let cfg = NrpaConfig::with_iterations(8);
            let r = SearchSpec::nrpa_with(1, cfg.clone()).seed(seed).run(&g);
            let d = nrpa(&g, 1, &cfg, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let ucfg = UctConfig {
                iterations: 64,
                ..UctConfig::default()
            };
            let r = SearchSpec::uct_with(ucfg.clone()).seed(seed).run(&g);
            let d = uct(&g, &ucfg, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let r = SearchSpec::flat_mc(16).seed(seed).run(&g);
            let d = flat_monte_carlo(&g, 16, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let r = SearchSpec::iterated_sampling(2).seed(seed).run(&g);
            let d = iterated_sampling(&g, 2, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let r = SearchSpec::beam(2, 2).seed(seed).run(&g);
            let d = beam_search(&g, 2, 2, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let r = SearchSpec::sample().seed(seed).run(&g);
            let d = sample(&g, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );

            let acfg = AnnealingConfig {
                iterations: 200,
                ..Default::default()
            };
            let r = SearchSpec::simulated_annealing_with(acfg.clone())
                .seed(seed)
                .run(&g);
            let d = crate::baselines::simulated_annealing(&g, &acfg, &mut Rng::seeded(seed));
            assert_eq!(
                (r.score, &r.sequence, &r.stats),
                (d.score, &d.sequence, &d.stats)
            );
        }
    }

    #[test]
    fn single_worker_tree_parallel_spec_equals_uct_spec() {
        let g = Ternary {
            depth: 5,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 250,
            ..UctConfig::default()
        };
        for seed in [1u64, 9, 77] {
            let uct = SearchSpec::uct_with(cfg.clone()).seed(seed).run(&g);
            let tree = SearchSpec::tree_parallel_with(cfg.clone(), 1)
                .seed(seed)
                .run(&g);
            assert_eq!(tree.score, uct.score, "seed {seed}");
            assert_eq!(tree.sequence, uct.sequence, "seed {seed}");
            assert_eq!(tree.stats, uct.stats, "seed {seed}");
        }
    }

    #[test]
    fn multi_worker_tree_parallel_reports_replay() {
        let g = Ternary {
            depth: 6,
            taken: vec![],
        };
        let r = SearchSpec::tree_parallel(4).seed(3).run(&g);
        let mut replay = g;
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
        assert!(r.interrupted.is_none());
    }

    #[test]
    fn worker_count_determinism_is_declared_honestly() {
        assert!(AlgorithmSpec::nested(2).worker_count_deterministic());
        assert!(AlgorithmSpec::LeafParallel {
            level: 1,
            batch: 4,
            threads: 8,
            playout_cap: None,
            first_move: false,
        }
        .worker_count_deterministic());
        assert!(AlgorithmSpec::tree_parallel(1).worker_count_deterministic());
        assert!(!AlgorithmSpec::tree_parallel(4).worker_count_deterministic());
    }

    #[test]
    fn parallel_strategies_are_worker_count_invariant() {
        let g = Ternary {
            depth: 5,
            taken: vec![],
        };
        for (one, four) in [
            (
                SearchSpec::leaf(1, 4, 1).seed(9).run(&g),
                SearchSpec::leaf(1, 4, 4).seed(9).run(&g),
            ),
            (
                SearchSpec::root_parallel(2, 1).seed(9).run(&g),
                SearchSpec::root_parallel(2, 4).seed(9).run(&g),
            ),
        ] {
            assert_eq!(one.score, four.score);
            assert_eq!(one.sequence, four.sequence);
            assert_eq!(one.stats, four.stats);
            assert_eq!(one.client_jobs, four.client_jobs);
        }
    }

    #[test]
    fn reports_replay_to_their_score() {
        let g = game();
        for spec in [
            SearchSpec::nested(1).seed(3).build(),
            SearchSpec::uct().seed(3).build(),
            SearchSpec::flat_mc(8).seed(3).build(),
            SearchSpec::leaf(1, 2, 2).seed(3).build(),
            SearchSpec::root_parallel(2, 2).seed(3).build(),
        ] {
            let r = spec.run(&g);
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "{}", spec.algorithm.label());
            assert!(r.interrupted.is_none());
        }
    }

    #[test]
    fn pre_cancelled_token_returns_promptly_with_interrupted_set() {
        let token = CancelToken::new();
        token.cancel();
        let g = Ternary {
            depth: 64,
            taken: vec![],
        };
        for spec in [
            SearchSpec::nested(3).seed(1).build(),
            SearchSpec::nrpa(2).seed(1).build(),
            SearchSpec::uct().seed(1).build(),
            SearchSpec::flat_mc(1_000_000).seed(1).build(),
            SearchSpec::leaf(2, 8, 2).seed(1).build(),
            SearchSpec::root_parallel(2, 2).seed(1).build(),
        ] {
            let r = spec.run_cancellable(&g, &token);
            assert_eq!(
                r.interrupted,
                Some(Interruption::Cancelled),
                "{}",
                spec.algorithm.label()
            );
        }
    }

    #[test]
    fn spec_serde_round_trips_every_variant() {
        let specs = [
            SearchSpec::nested(3).seed(5).deadline_ms(250).build(),
            SearchSpec::nested_with(2, NestedConfig::greedy())
                .playout_cap(40)
                .build(),
            SearchSpec::nrpa(2).seed(1).max_playouts(500).build(),
            SearchSpec::uct().max_nodes(10_000).build(),
            SearchSpec::flat_mc(64).build(),
            SearchSpec::iterated_sampling(4).build(),
            SearchSpec::beam(8, 2).build(),
            SearchSpec::sample().seed(11).build(),
            SearchSpec::leaf(2, 16, 8).playout_cap(100).build(),
            SearchSpec::root_parallel(3, 8).first_move_only().build(),
            SearchSpec::tree_parallel(4)
                .seed(8)
                .max_playouts(600)
                .build(),
            SearchSpec::tree_parallel_with(
                UctConfig {
                    iterations: 123,
                    ..UctConfig::default()
                },
                2,
            )
            .build(),
            SearchSpec::simulated_annealing().seed(13).build(),
            SearchSpec::simulated_annealing_with(AnnealingConfig {
                iterations: 500,
                t_initial: 2.5,
                t_final: 0.1,
            })
            .build(),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: SearchSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "round-trip of {json}");
        }
    }

    #[test]
    fn unhit_budget_is_bit_identical_to_unbudgeted_run() {
        let g = game();
        for spec_pair in [
            (
                SearchSpec::nested(2).seed(4).build(),
                SearchSpec::nested(2)
                    .seed(4)
                    .deadline(Duration::from_secs(3600))
                    .max_playouts(u64::MAX)
                    .max_nodes(u64::MAX)
                    .build(),
            ),
            (
                SearchSpec::uct().seed(4).build(),
                SearchSpec::uct().seed(4).max_playouts(u64::MAX).build(),
            ),
        ] {
            let (plain, budgeted) = spec_pair;
            let a = plain.run(&g);
            let b = budgeted.run(&g);
            assert_eq!(a.score, b.score);
            assert_eq!(a.sequence, b.sequence);
            assert_eq!(a.stats, b.stats, "budget checks must not perturb the RNG");
            assert!(b.interrupted.is_none());
        }
    }

    #[test]
    fn tag_distinguishes_configurations() {
        let a = AlgorithmSpec::nested(2).tag();
        let b = AlgorithmSpec::nested(3).tag();
        let c = AlgorithmSpec::nrpa(2, 100).tag();
        let d = AlgorithmSpec::nrpa(2, 50).tag();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d);
        // Thread count is an execution knob, not an identity: two leaf
        // specs differing only in threads produce identical results and
        // must collide.
        let l2 = AlgorithmSpec::LeafParallel {
            level: 1,
            batch: 4,
            threads: 2,
            playout_cap: None,
            first_move: false,
        };
        let l8 = AlgorithmSpec::LeafParallel {
            level: 1,
            batch: 4,
            threads: 8,
            playout_cap: None,
            first_move: false,
        };
        assert_eq!(l2.tag(), l8.tag());
        // Tree-parallel is the exception: its thread count shapes the
        // search, so it IS identity.
        assert_ne!(
            AlgorithmSpec::tree_parallel(2).tag(),
            AlgorithmSpec::tree_parallel(8).tag()
        );
        assert_ne!(
            AlgorithmSpec::tree_parallel(2).tag(),
            AlgorithmSpec::Uct {
                config: UctConfig::default(),
                tree_reuse: false,
            }
            .tag()
        );
        assert_ne!(
            AlgorithmSpec::simulated_annealing().tag(),
            AlgorithmSpec::nested(2).tag()
        );
        // Warm-tree reuse changes the search, so it is identity on both
        // tree backends — and `false` keeps the pre-knob tag.
        assert_ne!(
            SearchSpec::uct().tree_reuse(true).build().algorithm.tag(),
            SearchSpec::uct().build().algorithm.tag()
        );
        assert_ne!(
            SearchSpec::tree_parallel(2)
                .tree_reuse(true)
                .build()
                .algorithm
                .tag(),
            SearchSpec::tree_parallel(2).build().algorithm.tag()
        );
    }

    #[test]
    fn nrpa_constructor_routes_through_paper_defaults() {
        let AlgorithmSpec::Nrpa { config, .. } = AlgorithmSpec::nrpa(2, 37) else {
            panic!("wrong variant");
        };
        assert_eq!(config.iterations, 37);
        assert_eq!(config.alpha, NrpaConfig::paper().alpha);
    }
}
