//! In-core parallel executors behind the [`crate::spec::SearchSpec`]
//! front door.
//!
//! Two strategies from the paper's §IV–V are execution shapes rather than
//! different searches, so the unified API runs them directly on the
//! persistent [`pool::ExecutorPool`]:
//!
//! * **Leaf-parallel** — the top-level game is played greedily and every
//!   candidate move is evaluated by a batch of independent seeded
//!   `level − 1` evaluations fanned out over the pool (one work item per
//!   `(move, slot)` pair).
//! * **Root-parallel** — the paper's root/median/client hierarchy: one
//!   median game per root candidate move runs on the pool, each median
//!   evaluating its own moves with `level − 2` client searches.
//!
//! Both used to spawn fresh `std::thread::scope` workers at every step
//! of the top-level game; they now share the process-wide
//! [`pool::ExecutorPool`], which keeps its workers warm across steps,
//! runs, and even concurrent engine replicas. The original
//! spawn-per-step implementations are frozen in [`baseline`] so the
//! bit-identity contract ("the pool changes *when* work runs, never
//! *what* it computes") stays mechanically checkable, and so the bench
//! can report an honest pool-vs-spawn speedup.
//!
//! Determinism contract: every evaluation's seed derives from its logical
//! coordinates through [`crate::seeds`], so results are bit-identical
//! across worker counts, bit-identical to the frozen spawn-per-step
//! baselines, to `parallel_nmcs::leaf_nested` and to
//! `parallel_nmcs::trace::run_reference` (and therefore to
//! `run_threads`) for the same seed — the cross-crate agreement tests
//! assert all of these. Work accounting matches the historical backends:
//! only evaluation work is counted, so `stats.work_units` equals the old
//! `total_work` and each evaluation counts one `client_job`.
//!
//! Budgets and cancellation flow through forked [`SearchCtx`]s sharing
//! one atomic meter, so a deadline or playout cap stops leaf and root
//! workers exactly like it stops a serial search.

pub mod pool;

use crate::ctx::SearchCtx;
use crate::game::{Game, Score};
use crate::rng::Rng;
use crate::search::{nested_with, NestedConfig, PlayoutScratch};
use crate::seeds::{client_seed, median_seed, slot_seed};
use parking_lot::Mutex;
use pool::ExecutorPool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of a parallel executor: score, root sequence, and the number
/// of client/leaf evaluation jobs executed (work units live in the ctx).
pub(crate) struct ParallelRun<M> {
    pub score: Score,
    pub sequence: Vec<M>,
    pub client_jobs: u64,
}

/// What one fan-out slot returns: its forked context and its per-item
/// results.
struct WorkerOut {
    ctx: SearchCtx,
    results: Vec<(usize, Score)>,
}

/// Fans `items` work indices out over up to `threads` batch slots on the
/// shared executor pool and merges every slot's context back into `ctx`
/// (stats add commutatively, so the merge order cannot affect results).
///
/// `states` holds one reusable per-slot scratch value (allocated once
/// per *run* by the caller, so nothing is reallocated per step or per
/// item); slot `s` gets exclusive access to `states[s]` for the whole
/// batch.
fn fan_out<S, F>(
    exec: &ExecutorPool,
    items: usize,
    threads: usize,
    ctx: &mut SearchCtx,
    states: &[Mutex<S>],
    eval: F,
) -> Vec<Option<Score>>
where
    S: Send,
    F: Fn(usize, &mut SearchCtx, &mut S) -> Score + Sync,
{
    let slots = threads.min(items).max(1);
    debug_assert!(states.len() >= slots);
    let next = AtomicUsize::new(0);
    let outs: Mutex<Vec<WorkerOut>> = Mutex::new(Vec::with_capacity(slots));
    let parent: &SearchCtx = ctx;
    exec.run_batch(slots, &|slot| {
        let mut wctx = parent.fork();
        let mut state = states[slot].lock();
        let mut results = Vec::new();
        loop {
            // Stop claiming items once interrupted; items left
            // unevaluated surface as `None` in the reduce.
            if wctx.should_stop() {
                break;
            }
            let idx = next.fetch_add(1, Ordering::Relaxed);
            if idx >= items {
                break;
            }
            let score = eval(idx, &mut wctx, &mut state);
            results.push((idx, score));
        }
        outs.lock().push(WorkerOut { ctx: wctx, results });
    });

    let outs = outs.into_inner();
    let mut scores: Vec<Option<Score>> = vec![None; items];
    for out in outs {
        ctx.absorb(out.ctx);
        for (idx, score) in out.results {
            scores[idx] = Some(score);
        }
    }
    scores
}

/// Reusable per-slot scratch of the leaf executor: the playout engine
/// and its sequence buffer live here for the whole run instead of being
/// allocated per evaluated item (the ROADMAP open item this fixes).
struct LeafSlot<G: Game> {
    scratch: PlayoutScratch<G>,
    seq: Vec<G::Move>,
}

impl<G: Game> Default for LeafSlot<G> {
    fn default() -> Self {
        LeafSlot {
            scratch: PlayoutScratch::new(),
            seq: Vec::new(),
        }
    }
}

/// Leaf-parallel batched NMCS (the strategy behind
/// `AlgorithmSpec::LeafParallel`); see the module docs.
///
/// The parameter list mirrors the spec variant's fields one-to-one —
/// bundling them into a struct here would just duplicate the variant.
#[allow(clippy::too_many_arguments)]
pub(crate) fn leaf_parallel<G>(
    game: &G,
    level: u32,
    batch: usize,
    threads: usize,
    playout_cap: Option<usize>,
    first_move: bool,
    seed: u64,
    ctx: &mut SearchCtx,
) -> ParallelRun<G::Move>
where
    G: Game + Send + Sync,
    G::Move: Send + Sync,
{
    assert!(level >= 1, "leaf-parallel search needs level >= 1");
    assert!(batch >= 1, "leaf-parallel search needs batch >= 1");
    assert!(threads >= 1);
    let eval_level = level - 1;
    let config = NestedConfig {
        playout_cap,
        ..NestedConfig::paper()
    };
    let exec = ExecutorPool::shared();
    // One scratch per slot for the whole run: reused across every step
    // and every item a slot claims.
    let states: Vec<Mutex<LeafSlot<G>>> = (0..threads)
        .map(|_| Mutex::new(LeafSlot::default()))
        .collect();

    let mut pos = game.clone();
    let mut sequence = Vec::new();
    let mut client_jobs = 0u64;
    let mut first_step_best: Option<Score> = None;
    let mut moves: Vec<G::Move> = Vec::new();
    let mut step = 0usize;

    loop {
        pos.legal_moves_into(&mut moves);
        if moves.is_empty() {
            break;
        }
        if ctx.should_stop() {
            break;
        }

        let items = moves.len() * batch;
        let pos_ref = &pos;
        let moves_ref = &moves;
        let config_ref = &config;
        let scores = fan_out(
            exec,
            items,
            threads,
            ctx,
            &states,
            move |idx, wctx, slot| {
                let (i, slot_idx) = (idx / batch, idx % batch);
                let mut child = pos_ref.clone();
                child.play(&moves_ref[i]);
                let mut rng = Rng::seeded(slot_seed(seed, step, i, slot_idx));
                if eval_level == 0 {
                    slot.seq.clear();
                    slot.scratch
                        .run(&mut child, &mut rng, playout_cap, &mut slot.seq, wctx)
                } else {
                    nested_with(&child, eval_level, config_ref, &mut rng, wctx).0
                }
            },
        );
        client_jobs += scores.iter().flatten().count() as u64;

        // Deterministic reduce: batch-max per move, argmax over moves
        // with ties to the lower index. Moves whose batch was cut off by
        // an interruption before any slot finished are not eligible.
        let mut best: Option<(Score, usize)> = None;
        for i in 0..moves.len() {
            let move_best = scores[i * batch..(i + 1) * batch]
                .iter()
                .flatten()
                .copied()
                .max();
            if let Some(s) = move_best {
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
        }
        let Some((best_score, best_idx)) = best else {
            break; // interrupted before any leaf of this step finished
        };
        if step == 0 {
            first_step_best = Some(best_score);
        }
        sequence.push(moves[best_idx].clone());
        pos.play(&moves[best_idx]);
        step += 1;
        if first_move {
            break;
        }
    }

    let score = if first_move {
        first_step_best.unwrap_or_else(|| pos.score())
    } else {
        pos.score()
    };
    ParallelRun {
        score,
        sequence,
        client_jobs,
    }
}

/// Root-parallel NMCS (the strategy behind
/// `AlgorithmSpec::RootParallel`): the paper's root/median/client
/// hierarchy with one pool task per median game. Results are
/// bit-identical to the sequential reference (and hence to the
/// message-passing `run_threads` backend) for the same seed.
pub(crate) fn root_parallel<G>(
    game: &G,
    level: u32,
    threads: usize,
    playout_cap: Option<usize>,
    first_move: bool,
    seed: u64,
    ctx: &mut SearchCtx,
) -> ParallelRun<G::Move>
where
    G: Game + Send + Sync,
    G::Move: Send + Sync,
{
    assert!(level >= 2, "root-parallel NMCS needs level >= 2");
    assert!(threads >= 1);
    let config = NestedConfig {
        playout_cap,
        ..NestedConfig::paper()
    };
    let client_level = level - 2;
    let exec = ExecutorPool::shared();
    let states: Vec<Mutex<()>> = (0..threads).map(|_| Mutex::new(())).collect();

    let mut pos = game.clone();
    let mut sequence = Vec::new();
    let mut client_jobs = 0u64;
    let mut first_step_best: Option<Score> = None;
    let mut moves: Vec<G::Move> = Vec::new();
    let mut root_step = 0usize;
    let jobs_counter = AtomicUsize::new(0);

    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        if ctx.should_stop() {
            break;
        }

        let pos_ref = &pos;
        let moves_ref = &moves;
        let config_ref = &config;
        let jobs_ref = &jobs_counter;
        let scores = fan_out(
            exec,
            moves.len(),
            threads,
            ctx,
            &states,
            move |i, wctx, _slot| {
                let mut median_pos = pos_ref.clone();
                median_pos.play(&moves_ref[i]);
                let mseed = median_seed(seed, root_step, i);
                let mut jobs = 0u64;
                let score = median_game(
                    &mut median_pos,
                    client_level,
                    mseed,
                    config_ref,
                    wctx,
                    &mut jobs,
                );
                jobs_ref.fetch_add(jobs as usize, Ordering::Relaxed);
                score
            },
        );
        client_jobs = jobs_counter.load(Ordering::Relaxed) as u64;

        // "Receive score from node; play the move with best score" —
        // ties break toward the lower move index, exactly as the
        // reference and threaded backends do.
        let mut best: Option<(Score, usize)> = None;
        for (i, s) in scores.iter().enumerate() {
            if let Some(s) = *s {
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
        }
        let Some((best_score, best_idx)) = best else {
            break; // interrupted before any median of this step finished
        };
        if root_step == 0 {
            first_step_best = Some(best_score);
        }
        sequence.push(moves[best_idx].clone());
        pos.play(&moves[best_idx]);
        root_step += 1;
        if first_move {
            break;
        }
    }

    let score = if first_move {
        first_step_best.unwrap_or_else(|| pos.score())
    } else {
        pos.score()
    };
    ParallelRun {
        score,
        sequence,
        client_jobs,
    }
}

/// Plays one median game (greedy per-step argmax over client-job scores,
/// per the paper's median pseudocode) on the worker's context.
fn median_game<G: Game>(
    pos: &mut G,
    client_level: u32,
    mseed: u64,
    config: &NestedConfig,
    ctx: &mut SearchCtx,
    jobs: &mut u64,
) -> Score {
    let mut moves: Vec<G::Move> = Vec::new();
    let mut mstep = 0usize;
    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        let mut best: Option<(Score, usize)> = None;
        for (j, mv) in moves.iter().enumerate() {
            if ctx.should_stop() {
                break;
            }
            let mut child = pos.clone();
            child.play(mv);
            let mut rng = Rng::seeded(client_seed(mseed, mstep, j));
            let (score, _) = nested_with(&child, client_level, config, &mut rng, ctx);
            *jobs += 1;
            if best.is_none_or(|(bs, _)| score > bs) {
                best = Some((score, j));
            }
        }
        let Some((_, best_idx)) = best else {
            break; // interrupted before any client of this step finished
        };
        pos.play(&moves[best_idx]);
        mstep += 1;
        if ctx.interruption().is_some() {
            break;
        }
    }
    pos.score()
}

/// The PR-3 spawn-per-step executors, frozen verbatim.
///
/// These are **reference implementations**, kept for two purposes only:
/// the cross-backend tests prove the pool-backed executors above are
/// per-seed bit-identical to them, and `tables --leaf` reports the
/// pool-vs-spawn throughput speedup against them. They are not part of
/// the public API surface and may disappear once the pool has a few
/// releases of soak time. Do not "fix" or optimise them — their value
/// is being exactly what shipped before the pool.
#[doc(hidden)]
pub mod baseline {
    use super::*;

    /// Outcome of a frozen spawn-per-step run (unbudgeted).
    pub struct SpawnRun<M> {
        pub score: Score,
        pub sequence: Vec<M>,
        pub client_jobs: u64,
        pub stats: crate::stats::SearchStats,
    }

    /// The PR-3 scoped-thread fan-out: spawns `threads` workers per
    /// call (i.e. per top-level step).
    fn fan_out_scoped<F>(
        items: usize,
        threads: usize,
        ctx: &mut SearchCtx,
        eval: F,
    ) -> Vec<Option<Score>>
    where
        F: Fn(usize, &mut SearchCtx) -> Score + Sync,
    {
        let workers = threads.min(items).max(1);
        let next = AtomicUsize::new(0);
        let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let mut wctx = ctx.fork();
                    let next = &next;
                    let eval = &eval;
                    scope.spawn(move || {
                        let mut results = Vec::new();
                        loop {
                            if wctx.should_stop() {
                                break;
                            }
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= items {
                                break;
                            }
                            let score = eval(idx, &mut wctx);
                            results.push((idx, score));
                        }
                        WorkerOut { ctx: wctx, results }
                    })
                })
                .collect();
            handles
                .into_iter()
                // nmcs-lint: allow(panic-discipline) reason="join fails only if a worker panicked; re-raising the panic on the caller is the contract"
                .map(|h| h.join().expect("parallel executor worker panicked"))
                .collect()
        });

        let mut scores: Vec<Option<Score>> = vec![None; items];
        for out in outs {
            ctx.absorb(out.ctx);
            for (idx, score) in out.results {
                scores[idx] = Some(score);
            }
        }
        scores
    }

    /// Frozen spawn-per-step leaf-parallel NMCS (per-item playout
    /// scratch and all), for A/B tests and the bench baseline.
    pub fn leaf_parallel_spawn<G>(
        game: &G,
        level: u32,
        batch: usize,
        threads: usize,
        playout_cap: Option<usize>,
        first_move: bool,
        seed: u64,
    ) -> SpawnRun<G::Move>
    where
        G: Game + Send + Sync,
        G::Move: Send + Sync,
    {
        assert!(level >= 1 && batch >= 1 && threads >= 1);
        let eval_level = level - 1;
        let config = NestedConfig {
            playout_cap,
            ..NestedConfig::paper()
        };
        let mut ctx = SearchCtx::unbounded();

        let mut pos = game.clone();
        let mut sequence = Vec::new();
        let mut client_jobs = 0u64;
        let mut first_step_best: Option<Score> = None;
        let mut moves: Vec<G::Move> = Vec::new();
        let mut step = 0usize;

        loop {
            pos.legal_moves_into(&mut moves);
            if moves.is_empty() {
                break;
            }

            let items = moves.len() * batch;
            let pos_ref = &pos;
            let moves_ref = &moves;
            let config_ref = &config;
            let scores = fan_out_scoped(items, threads, &mut ctx, move |idx, wctx| {
                let (i, slot) = (idx / batch, idx % batch);
                let mut child = pos_ref.clone();
                child.play(&moves_ref[i]);
                let mut rng = Rng::seeded(slot_seed(seed, step, i, slot));
                if eval_level == 0 {
                    let mut scratch = PlayoutScratch::new();
                    let mut seq = Vec::new();
                    scratch.run(&mut child, &mut rng, playout_cap, &mut seq, wctx)
                } else {
                    nested_with(&child, eval_level, config_ref, &mut rng, wctx).0
                }
            });
            client_jobs += scores.iter().flatten().count() as u64;

            let mut best: Option<(Score, usize)> = None;
            for i in 0..moves.len() {
                let move_best = scores[i * batch..(i + 1) * batch]
                    .iter()
                    .flatten()
                    .copied()
                    .max();
                if let Some(s) = move_best {
                    if best.is_none_or(|(bs, _)| s > bs) {
                        best = Some((s, i));
                    }
                }
            }
            let Some((best_score, best_idx)) = best else {
                break;
            };
            if step == 0 {
                first_step_best = Some(best_score);
            }
            sequence.push(moves[best_idx].clone());
            pos.play(&moves[best_idx]);
            step += 1;
            if first_move {
                break;
            }
        }

        let score = if first_move {
            first_step_best.unwrap_or_else(|| pos.score())
        } else {
            pos.score()
        };
        SpawnRun {
            score,
            sequence,
            client_jobs,
            stats: ctx.into_stats(),
        }
    }

    /// Frozen spawn-per-step root-parallel NMCS, for A/B tests and the
    /// bench baseline.
    pub fn root_parallel_spawn<G>(
        game: &G,
        level: u32,
        threads: usize,
        playout_cap: Option<usize>,
        first_move: bool,
        seed: u64,
    ) -> SpawnRun<G::Move>
    where
        G: Game + Send + Sync,
        G::Move: Send + Sync,
    {
        assert!(level >= 2 && threads >= 1);
        let config = NestedConfig {
            playout_cap,
            ..NestedConfig::paper()
        };
        let client_level = level - 2;
        let mut ctx = SearchCtx::unbounded();

        let mut pos = game.clone();
        let mut sequence = Vec::new();
        let mut client_jobs = 0u64;
        let mut first_step_best: Option<Score> = None;
        let mut moves: Vec<G::Move> = Vec::new();
        let mut root_step = 0usize;
        let jobs_counter = AtomicUsize::new(0);

        loop {
            moves.clear();
            pos.legal_moves(&mut moves);
            if moves.is_empty() {
                break;
            }

            let pos_ref = &pos;
            let moves_ref = &moves;
            let config_ref = &config;
            let jobs_ref = &jobs_counter;
            let scores = fan_out_scoped(moves.len(), threads, &mut ctx, move |i, wctx| {
                let mut median_pos = pos_ref.clone();
                median_pos.play(&moves_ref[i]);
                let mseed = median_seed(seed, root_step, i);
                let mut jobs = 0u64;
                let score = median_game(
                    &mut median_pos,
                    client_level,
                    mseed,
                    config_ref,
                    wctx,
                    &mut jobs,
                );
                jobs_ref.fetch_add(jobs as usize, Ordering::Relaxed);
                score
            });
            client_jobs = jobs_counter.load(Ordering::Relaxed) as u64;

            let mut best: Option<(Score, usize)> = None;
            for (i, s) in scores.iter().enumerate() {
                if let Some(s) = *s {
                    if best.is_none_or(|(bs, _)| s > bs) {
                        best = Some((s, i));
                    }
                }
            }
            let Some((best_score, best_idx)) = best else {
                break;
            };
            if root_step == 0 {
                first_step_best = Some(best_score);
            }
            sequence.push(moves[best_idx].clone());
            pos.play(&moves[best_idx]);
            root_step += 1;
            if first_move {
                break;
            }
        }

        let score = if first_move {
            first_step_best.unwrap_or_else(|| pos.score())
        } else {
            pos.score()
        };
        SpawnRun {
            score,
            sequence,
            client_jobs,
            stats: ctx.into_stats(),
        }
    }
}
