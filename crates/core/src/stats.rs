//! Search instrumentation.
//!
//! Every search entry point threads a [`SearchStats`] through its recursion.
//! Besides being useful diagnostics, the `work_units` counter is the
//! *cost model input* for the discrete-event cluster simulator: a client
//! job's virtual service time is its measured work divided by the client's
//! speed factor, which is how heterogeneous-cluster behaviour (paper
//! Table VI) is reproduced without the paper's hardware.

use serde::{Deserialize, Serialize};

/// Counters accumulated during a search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Completed random playouts (`sample` calls that ran to termination).
    pub playouts: u64,
    /// Moves applied inside random playouts.
    pub playout_moves: u64,
    /// Moves applied by `nested` itself while advancing its game.
    pub nested_moves: u64,
    /// Positions cloned for candidate-move evaluation.
    pub expansions: u64,
    /// Abstract work units: every move application (playout or nested)
    /// plus every expansion counts one unit. Monotone, additive across
    /// sub-searches, and roughly proportional to wall-clock time for a
    /// fixed game — exactly what a service-time model needs.
    pub work_units: u64,
}

impl SearchStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one (used when merging results
    /// from parallel sub-searches).
    pub fn merge(&mut self, other: &SearchStats) {
        self.playouts += other.playouts;
        self.playout_moves += other.playout_moves;
        self.nested_moves += other.nested_moves;
        self.expansions += other.expansions;
        self.work_units += other.work_units;
    }

    #[inline]
    pub(crate) fn record_playout_move(&mut self) {
        self.playout_moves += 1;
        self.work_units += 1;
    }

    #[inline]
    pub(crate) fn record_playout_end(&mut self) {
        self.playouts += 1;
    }

    #[inline]
    pub(crate) fn record_nested_move(&mut self) {
        self.nested_moves += 1;
        self.work_units += 1;
    }

    #[inline]
    pub(crate) fn record_expansion(&mut self) {
        self.expansions += 1;
        self.work_units += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = SearchStats {
            playouts: 1,
            playout_moves: 10,
            nested_moves: 2,
            expansions: 3,
            work_units: 15,
        };
        let b = SearchStats {
            playouts: 4,
            playout_moves: 40,
            nested_moves: 5,
            expansions: 6,
            work_units: 51,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SearchStats {
                playouts: 5,
                playout_moves: 50,
                nested_moves: 7,
                expansions: 9,
                work_units: 66,
            }
        );
    }

    #[test]
    fn recorders_keep_work_units_consistent() {
        let mut s = SearchStats::new();
        s.record_playout_move();
        s.record_playout_move();
        s.record_playout_end();
        s.record_nested_move();
        s.record_expansion();
        assert_eq!(s.playouts, 1);
        assert_eq!(s.playout_moves, 2);
        assert_eq!(s.nested_moves, 1);
        assert_eq!(s.expansions, 1);
        assert_eq!(s.work_units, 4);
    }

    #[test]
    fn serde_round_trip() {
        let s = SearchStats {
            playouts: 7,
            playout_moves: 70,
            nested_moves: 8,
            expansions: 9,
            work_units: 87,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: SearchStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
