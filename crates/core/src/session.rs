//! Warm-tree search sessions: persistent search state across steps.
//!
//! A one-shot [`SearchSpec`] run rebuilds its tree from scratch every
//! time. A [`SearchSession`] instead *keeps* the tree between steps:
//! each [`SearchSession::step`] searches from the current position,
//! commits the first move of the best line, plays it, and re-roots the
//! shared tree on the chosen child — so the statistics gathered below
//! that child carry into the next step, and the bounded transposition
//! table keyed by [`Game::state_hash`] keeps sharing statistics across
//! transposed lines. At equal per-step budget, a warm search starts
//! from thousands of already-evaluated positions instead of zero
//! (`tables --reuse` measures the gap).
//!
//! Determinism: step `k` searches with
//! [`session_step_seed`]`(spec.seed, k)` (step 0 ≡ the root seed), so a
//! session is run-to-run deterministic whenever its backend is — always
//! for reuse-off steps, and at width 1 for reuse-on steps. Reuse-off
//! sessions run the plain spec per step, cold, bit-identical to a
//! sequence of one-shot runs at the derived seeds.

use crate::ctx::SearchCtx;
use crate::game::{Game, Score};
use crate::nrpa::CodedGame;
use crate::report::SearchReport;
use crate::seeds::session_step_seed;
use crate::spec::{AlgorithmSpec, Budget, CancelToken, SearchSpec, Searcher};
use crate::uct::{uct_tree_parallel_on, TpTree, TreeParallelOpts, UctConfig, DEFAULT_TT_BYTES};

/// Persistent search state for stepping one game to completion: the
/// current position, the committed moves, and — when the spec's
/// `tree_reuse` knob is on — the warm `TpTree` re-rooted after every
/// committed move.
///
/// The engine holds one per open session (`Engine::open_session`),
/// serving each session-scoped job as one [`SearchSession::step`].
pub struct SearchSession<G: Game> {
    game: G,
    spec: SearchSpec,
    /// `Some` iff the spec enables `tree_reuse` (UCT / tree-parallel).
    tree: Option<TpTree<G::Move>>,
    /// Knobs of the warm backend, fixed at session open.
    warm: Option<(UctConfig, TreeParallelOpts)>,
    step: usize,
    committed: Vec<G::Move>,
}

impl<G> SearchSession<G>
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    /// Opens a session at `game`'s current position. Whether steps run
    /// warm is read off the spec: `tree_reuse` on a UCT or
    /// tree-parallel algorithm builds the shared tree (with its
    /// transposition table bounded to `table_bytes`, or the default
    /// bound if `None`); anything else steps cold.
    pub fn new(game: G, spec: SearchSpec, table_bytes: Option<usize>) -> Self {
        let warm = match &spec.algorithm {
            AlgorithmSpec::Uct {
                config,
                tree_reuse: true,
            } => Some((config.clone(), TreeParallelOpts::new(1))),
            AlgorithmSpec::TreeParallel {
                config,
                threads,
                lock,
                stats,
                leaf_batch,
                leaf_batch_dynamic,
                tree_reuse: true,
            } => Some((
                config.clone(),
                TreeParallelOpts {
                    threads: *threads,
                    lock: *lock,
                    stats: *stats,
                    leaf_batch: *leaf_batch,
                    leaf_batch_dynamic: *leaf_batch_dynamic,
                },
            )),
            _ => None,
        };
        let tree = warm.as_ref().map(|(config, opts)| {
            TpTree::with_table(
                config,
                opts.lock,
                opts.stats,
                table_bytes.unwrap_or(DEFAULT_TT_BYTES),
            )
        });
        SearchSession {
            game,
            spec,
            tree,
            warm,
            step: 0,
            committed: Vec::new(),
        }
    }

    /// Searches from the current position under the spec's per-step
    /// budget, commits the first move of the best line found, plays it,
    /// and (warm sessions) re-roots the tree on it. The returned
    /// report's `sequence` is the full best line *from the pre-step
    /// position* — its head is what was committed, the tail is the
    /// projection the next steps will revise.
    ///
    /// Stepping a terminal position is a no-op report: current score,
    /// empty sequence, nothing committed. A **cancelled** step also
    /// commits nothing (its truncated line is discarded, the position
    /// stays put); a **budget-tripped** step commits normally — its
    /// best-so-far line is a valid result. Neither poisons the session.
    pub fn step(&mut self, cancel: Option<&CancelToken>) -> SearchReport<G::Move> {
        let step_seed = session_step_seed(self.spec.seed, self.step);
        if self.game.is_terminal() {
            self.step += 1;
            return SearchReport {
                score: self.game.score(),
                sequence: Vec::new(),
                stats: Default::default(),
                elapsed: std::time::Duration::ZERO,
                client_jobs: 0,
                interrupted: None,
                seed: step_seed,
            };
        }
        let report = match (&self.tree, &self.warm) {
            (Some(tree), Some((config, opts))) => {
                let started = crate::metrics::monotonic_now();
                let mut ctx = SearchCtx::new(&self.spec.budget, cancel);
                let (score, sequence) =
                    uct_tree_parallel_on(&self.game, tree, config, opts, step_seed, &mut ctx);
                let interrupted = ctx.interruption();
                SearchReport {
                    score,
                    sequence,
                    stats: ctx.into_stats(),
                    elapsed: started.elapsed(),
                    client_jobs: 0,
                    interrupted,
                    seed: step_seed,
                }
            }
            _ => {
                // Cold step: the plain spec at the step seed. A budget
                // trip (or cancellation) surfaces in the report but
                // does not poison the session — the next step starts
                // fresh from whatever was committed.
                let mut spec = self.spec.clone();
                spec.seed = step_seed;
                spec.search(&self.game, cancel)
            }
        };
        // A cancelled step commits nothing: cancellation means "stop and
        // discard", unlike a tripped budget whose best-so-far line is a
        // valid (replayable) result. The session stays usable either way.
        let cancelled = matches!(
            report.interrupted,
            Some(crate::report::Interruption::Cancelled)
        );
        if !cancelled {
            if let Some(mv) = report.sequence.first() {
                self.game.play(mv);
                if let Some(tree) = &mut self.tree {
                    tree.reroot(mv);
                }
                self.committed.push(mv.clone());
            }
        }
        self.step += 1;
        report
    }

    /// The current (post-commit) position.
    pub fn game(&self) -> &G {
        &self.game
    }

    /// The spec steps run under.
    pub fn spec(&self) -> &SearchSpec {
        &self.spec
    }

    /// Replaces the per-step budget (session TTL/quota tuning; the
    /// algorithm and seed stay fixed — they are the session's identity).
    pub fn set_budget(&mut self, budget: Budget) {
        self.spec.budget = budget;
    }

    /// Moves committed so far, in order.
    pub fn committed(&self) -> &[G::Move] {
        &self.committed
    }

    /// Steps taken so far (terminal no-op steps included).
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Whether the position is terminal (further steps are no-ops).
    pub fn is_done(&self) -> bool {
        self.game.is_terminal()
    }

    /// The current position's score.
    pub fn score(&self) -> Score {
        self.game.score()
    }

    /// Whether steps run on a warm tree.
    pub fn is_warm(&self) -> bool {
        self.tree.is_some()
    }

    /// Approximate heap bytes held across steps: the warm tree plus its
    /// transposition table (0 for cold sessions — they keep no search
    /// state). Recomputed by a tree walk, so call it between steps, not
    /// per move.
    pub fn approx_bytes(&self) -> usize {
        self.tree.as_ref().map_or(0, |t| t.approx_bytes())
    }

    /// (hits, evictions) of the warm tree's transposition table.
    pub fn table_counters(&self) -> (u64, u64) {
        self.tree
            .as_ref()
            .and_then(|t| t.table())
            .map_or((0, 0), |t| t.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SearchSpec;

    /// Depth × width decision table with known optimum, transposition-
    /// free (the taken prefix is the position).
    #[derive(Clone, Debug)]
    struct Walk {
        taken: Vec<u8>,
        depth: usize,
    }

    impl Game for Walk {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().map(|&m| m as Score).sum()
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    impl CodedGame for Walk {
        fn move_code(&self, mv: &u8) -> u64 {
            ((self.taken.len() as u64) << 2) | *mv as u64
        }
    }

    fn walk(depth: usize) -> Walk {
        Walk {
            taken: Vec::new(),
            depth,
        }
    }

    #[test]
    fn warm_session_steps_to_terminal_and_finds_the_optimum() {
        // Per-step commit is greedy in the searched line's head, which
        // is not optimal for every seed at this budget — this seed is
        // one where the default-config search solves the walk, pinned
        // by the session determinism contract.
        let spec = SearchSpec::uct().tree_reuse(true).seed(0).build();
        let mut s = SearchSession::new(walk(6), spec, None);
        assert!(s.is_warm());
        let mut guard = 0;
        while !s.is_done() {
            let r = s.step(None);
            assert!(!r.sequence.is_empty(), "non-terminal steps commit a move");
            guard += 1;
            assert!(guard <= 6, "one committed move per step");
        }
        assert_eq!(s.score(), 12, "greedy-by-search walk finds all 2s");
        assert_eq!(s.committed(), &[2u8; 6]);
        assert!(s.approx_bytes() > 0, "warm sessions hold tree state");
        // Terminal steps are no-ops.
        let r = s.step(None);
        assert!(r.sequence.is_empty());
        assert_eq!(r.score, 12);
        assert_eq!(s.steps(), 7);
    }

    #[test]
    fn cold_session_commits_the_one_shot_first_move() {
        // Reuse off: step 0 must match a plain one-shot run at the same
        // seed, bit for bit (same backend, same seed, same position).
        let spec = SearchSpec::uct().seed(11).build();
        let one_shot = spec.run(&walk(5));
        let mut s = SearchSession::new(walk(5), spec, None);
        assert!(!s.is_warm());
        assert_eq!(s.approx_bytes(), 0, "cold sessions keep no search state");
        let r = s.step(None);
        assert_eq!(r.score, one_shot.score);
        assert_eq!(r.sequence, one_shot.sequence);
        assert_eq!(s.committed(), &one_shot.sequence[..1]);
    }

    #[test]
    fn sessions_are_run_to_run_deterministic() {
        for reuse in [false, true] {
            let spec = SearchSpec::uct().tree_reuse(reuse).seed(5).build();
            let run = || {
                let mut s = SearchSession::new(walk(5), spec.clone(), None);
                let mut scores = Vec::new();
                while !s.is_done() {
                    scores.push(s.step(None).score);
                }
                (scores, s.committed().to_vec())
            };
            assert_eq!(run(), run(), "reuse={reuse}");
        }
    }

    #[test]
    fn non_tree_algorithms_step_cold() {
        // As above: greedy head-commit solves the walk at this seed
        // specifically; the pin is on determinism, not on per-step
        // optimality in general.
        let spec = SearchSpec::nested(1).seed(1).build();
        let mut s = SearchSession::new(walk(4), spec, None);
        assert!(!s.is_warm());
        while !s.is_done() {
            s.step(None);
        }
        assert_eq!(s.score(), 8, "level-1 NMCS solves the walk per step");
    }
}
