//! Nested Rollout Policy Adaptation (NRPA) — the successor algorithm.
//!
//! The paper's level-4 parallel NMCS held the Morpion 5D record (80
//! moves) until Rosin's NRPA (IJCAI 2011) reached 82 by replacing the
//! uniform playout policy with a *learned* softmax policy that each
//! nesting level adapts toward the best sequence found below it. It is
//! the canonical "future work" extension of the paper's line of research,
//! so the library ships it alongside plain NMCS:
//!
//! * level 0: a playout that samples moves with probability
//!   `exp(w[code(move)])` (softmax over the current position's moves);
//! * level `k`: `iterations` calls to level `k-1`, keeping the best
//!   sequence ever seen and, after each call, adapting a *copy* of the
//!   policy toward that sequence by gradient step `alpha`.
//!
//! Moves are identified across positions by a domain-provided *code*
//! ([`CodedGame::move_code`]); codes collide at the domain's discretion
//! (colliding moves share a weight, which is sometimes even desirable).

use crate::ctx::SearchCtx;
use crate::game::{Game, Score, Undo};
use crate::rng::Rng;
use crate::search::SearchResult;
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reusable buffers of the clone-free NRPA path: a legal-move buffer and
/// an undo-token stack shared by the policy playouts and the adaptation
/// walks (only one of either is active at a time).
struct NrpaScratch<G: Game> {
    moves: Vec<G::Move>,
    undos: Vec<Undo<G>>,
    /// (move code, softmax numerator) pairs of the adaptation step.
    probs: Vec<(u64, f64)>,
}

impl<G: Game> NrpaScratch<G> {
    fn new() -> Self {
        NrpaScratch {
            moves: Vec::new(),
            undos: Vec::new(),
            probs: Vec::new(),
        }
    }
}

/// A game whose moves have stable identity across positions, as NRPA's
/// policy table requires.
pub trait CodedGame: Game {
    /// A stable identifier for `mv` (independent of when it is played).
    fn move_code(&self, mv: &Self::Move) -> u64;
}

/// NRPA tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NrpaConfig {
    /// Recursive calls per level (Rosin uses 100; smaller values keep
    /// laptop runs interactive).
    pub iterations: usize,
    /// Policy learning rate (Rosin uses 1.0).
    pub alpha: f64,
}

impl Default for NrpaConfig {
    fn default() -> Self {
        Self {
            iterations: 100,
            alpha: 1.0,
        }
    }
}

impl NrpaConfig {
    /// Rosin's published configuration (100 iterations per level,
    /// `alpha = 1.0`). The single source of truth for NRPA defaults:
    /// every convenience constructor (including the engine's
    /// `Algorithm::nrpa`) routes through this instead of hardcoding
    /// tunables.
    pub fn paper() -> Self {
        Self::default()
    }

    /// `paper()` with a different iteration count — the common scaled
    /// shape (`iterations` is the knob every harness sweeps).
    pub fn with_iterations(iterations: usize) -> Self {
        Self {
            iterations,
            ..Self::paper()
        }
    }
}

/// The adapted policy: a weight per move code.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    weights: HashMap<u64, f64>,
}

impl Policy {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn weight(&self, code: u64) -> f64 {
        self.weights.get(&code).copied().unwrap_or(0.0)
    }

    /// Number of distinct move codes touched so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Rosin's adaptation step: pull the policy toward `sequence` played
    /// from `root` — for each step, add `alpha` to the played move's
    /// weight and subtract `alpha · softmax-probability` from every legal
    /// move's weight.
    pub fn adapt<G: CodedGame>(&mut self, root: &G, sequence: &[G::Move], alpha: f64) {
        let mut pos = root.clone();
        let mut moves: Vec<G::Move> = Vec::new();
        let mut probs: Vec<(u64, f64)> = Vec::new();
        for played in sequence {
            self.adapt_step(&pos, played, alpha, &mut moves, &mut probs);
            pos.play(played);
        }
    }

    /// One position's worth of [`Policy::adapt`]: the softmax update at
    /// `pos` toward `played`. Shared by the cloning and in-place walks so
    /// the two paths are float-for-float identical.
    fn adapt_step<G: CodedGame>(
        &mut self,
        pos: &G,
        played: &G::Move,
        alpha: f64,
        moves: &mut Vec<G::Move>,
        probs: &mut Vec<(u64, f64)>,
    ) {
        pos.legal_moves_into(moves);
        debug_assert!(!moves.is_empty());
        // Softmax over the current weights.
        let max_w = moves
            .iter()
            .map(|m| self.weight(pos.move_code(m)))
            .fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        probs.clear();
        for m in moves.iter() {
            let code = pos.move_code(m);
            let p = (self.weight(code) - max_w).exp();
            z += p;
            probs.push((code, p));
        }
        for &(code, p) in probs.iter() {
            *self.weights.entry(code).or_insert(0.0) -= alpha * p / z;
        }
        *self.weights.entry(pos.move_code(played)).or_insert(0.0) += alpha;
    }
}

/// [`Policy::adapt`] walked with apply/undo on a shared position — the
/// clone-free path used by [`nrpa`] on games with the scratch-state
/// protocol. Restores `pos` before returning.
fn adapt_in_place<G: CodedGame>(
    policy: &mut Policy,
    pos: &mut G,
    sequence: &[G::Move],
    alpha: f64,
    scratch: &mut NrpaScratch<G>,
) {
    debug_assert!(scratch.undos.is_empty());
    for played in sequence {
        policy.adapt_step(&*pos, played, alpha, &mut scratch.moves, &mut scratch.probs);
        scratch.undos.push(pos.apply(played));
    }
    pos.undo_all(&mut scratch.undos);
}

/// One policy-guided playout (NRPA level 0).
pub fn policy_playout<G: CodedGame>(
    game: &G,
    policy: &Policy,
    rng: &mut Rng,
    stats: &mut SearchStats,
) -> (Score, Vec<G::Move>) {
    let mut ctx = SearchCtx::unbounded();
    let out = policy_playout_ctx(game, policy, rng, &mut ctx);
    stats.merge(ctx.stats());
    out
}

/// Ctx-threaded core of [`policy_playout`]: identical draws, plus the
/// uniform budget/cancellation poll per playout move.
fn policy_playout_ctx<G: CodedGame>(
    game: &G,
    policy: &Policy,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    let mut pos = game.clone();
    let mut seq = Vec::new();
    let mut moves: Vec<G::Move> = Vec::new();
    loop {
        if ctx.should_stop() {
            break;
        }
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        // Gumbel-max sampling from the softmax: argmax(w + Gumbel noise).
        // Equivalent to softmax sampling, needs one pass and no
        // normalisation.
        let mut best = 0usize;
        let mut best_key = f64::NEG_INFINITY;
        for (i, m) in moves.iter().enumerate() {
            let w = policy.weight(pos.move_code(m));
            let u = rng.unit_f64().max(1e-300);
            let key = w - (-(u.ln())).ln();
            if key > best_key {
                best_key = key;
                best = i;
            }
        }
        let mv = moves.swap_remove(best);
        pos.play(&mv);
        seq.push(mv);
        ctx.record_playout_move();
    }
    ctx.record_playout_end();
    (pos.score(), seq)
}

/// One policy-guided playout walked with apply/undo on a shared position;
/// draw-for-draw identical to [`policy_playout`] but clone-free, and it
/// restores `pos` before returning.
fn policy_playout_scratch<G: CodedGame>(
    pos: &mut G,
    policy: &Policy,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
    scratch: &mut NrpaScratch<G>,
) -> (Score, Vec<G::Move>) {
    debug_assert!(scratch.undos.is_empty());
    let mut seq = Vec::new();
    loop {
        if ctx.should_stop() {
            break;
        }
        pos.legal_moves_into(&mut scratch.moves);
        if scratch.moves.is_empty() {
            break;
        }
        // Gumbel-max sampling (see `policy_playout`).
        let mut best = 0usize;
        let mut best_key = f64::NEG_INFINITY;
        for (i, m) in scratch.moves.iter().enumerate() {
            let w = policy.weight(pos.move_code(m));
            let u = rng.unit_f64().max(1e-300);
            let key = w - (-(u.ln())).ln();
            if key > best_key {
                best_key = key;
                best = i;
            }
        }
        let mv = scratch.moves.swap_remove(best);
        scratch.undos.push(pos.apply(&mv));
        seq.push(mv);
        ctx.record_playout_move();
    }
    ctx.record_playout_end();
    let score = pos.score();
    pos.undo_all(&mut scratch.undos);
    (score, seq)
}

/// Nested Rollout Policy Adaptation at `level` from `game`.
#[deprecated(note = "use SearchSpec::nrpa(level) — the unified search API")]
pub fn nrpa<G: CodedGame>(
    game: &G,
    level: u32,
    config: &NrpaConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = nrpa_with(game, level, config, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Nested Rollout Policy Adaptation at `level` from `game`, accounting
/// into (and honouring the budget/cancellation of) `ctx`.
///
/// The engine room behind `SearchSpec::run` for the `Nrpa` strategy; the
/// deprecated [`nrpa`] free function is a thin shim over it. On
/// interruption the best sequence found so far is returned (still
/// replayable to its score).
pub fn nrpa_with<G: CodedGame>(
    game: &G,
    level: u32,
    config: &NrpaConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    let mut policy = Policy::new();
    if game.supports_undo() {
        // Clone-free path: every playout and every adaptation walk runs
        // in place on one position via the scratch-state protocol.
        let mut pos = game.clone();
        let mut scratch = NrpaScratch::new();
        nrpa_scratch(&mut pos, level, config, &mut policy, rng, ctx, &mut scratch)
    } else {
        nrpa_inner(game, level, config, &mut policy, rng, ctx)
    }
}

fn nrpa_scratch<G: CodedGame>(
    pos: &mut G,
    level: u32,
    config: &NrpaConfig,
    policy: &mut Policy,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
    scratch: &mut NrpaScratch<G>,
) -> (Score, Vec<G::Move>) {
    if level == 0 {
        return policy_playout_scratch(pos, policy, rng, ctx, scratch);
    }
    let mut best_score = Score::MIN;
    let mut best_seq: Vec<G::Move> = Vec::new();
    // Each level adapts its own copy of the policy (Rosin's algorithm).
    let mut local = policy.clone();
    for i in 0..config.iterations {
        if i > 0 && ctx.should_stop() {
            break;
        }
        let (score, seq) = nrpa_scratch(pos, level - 1, config, &mut local, rng, ctx, scratch);
        if score > best_score || i == 0 {
            best_score = score;
            best_seq = seq;
        }
        if ctx.interruption().is_some() {
            break;
        }
        if !best_seq.is_empty() {
            adapt_in_place(&mut local, pos, &best_seq, config.alpha, scratch);
        }
    }
    (best_score, best_seq)
}

fn nrpa_inner<G: CodedGame>(
    game: &G,
    level: u32,
    config: &NrpaConfig,
    policy: &mut Policy,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    if level == 0 {
        return policy_playout_ctx(game, policy, rng, ctx);
    }
    let mut best_score = Score::MIN;
    let mut best_seq: Vec<G::Move> = Vec::new();
    // Each level adapts its own copy of the policy (Rosin's algorithm).
    let mut local = policy.clone();
    for i in 0..config.iterations {
        if i > 0 && ctx.should_stop() {
            break;
        }
        let (score, seq) = nrpa_inner(game, level - 1, config, &mut local, rng, ctx);
        if score > best_score || i == 0 {
            best_score = score;
            best_seq = seq;
        }
        if ctx.interruption().is_some() {
            break;
        }
        if !best_seq.is_empty() {
            local.adapt(game, &best_seq, config.alpha);
        }
    }
    (best_score, best_seq)
}

// The unit tests keep exercising the deprecated free function: they are
// the regression net for the shim (new-API coverage lives in `spec.rs`).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::sample;

    /// Depth-`d` binary game scoring the base-2 reading of the path;
    /// optimal play is all-ones. Codes distinguish (depth, choice).
    #[derive(Clone, Debug)]
    struct Binary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Binary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 2 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    impl CodedGame for Binary {
        fn move_code(&self, mv: &u8) -> u64 {
            (self.taken.len() as u64) << 1 | *mv as u64
        }
    }

    /// `Binary` with the scratch-state fast path, for path-equality tests.
    #[derive(Clone, Debug)]
    struct FastBinary(Binary);

    impl Game for FastBinary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            self.0.legal_moves(out);
        }
        fn play(&mut self, mv: &u8) {
            self.0.play(mv);
        }
        fn score(&self) -> Score {
            self.0.score()
        }
        fn moves_played(&self) -> usize {
            self.0.moves_played()
        }
        fn supports_undo(&self) -> bool {
            true
        }
        fn apply(&mut self, mv: &u8) -> crate::game::Undo<Self> {
            self.0.play(mv);
            crate::game::Undo::internal()
        }
        fn undo(&mut self, token: crate::game::Undo<Self>) {
            debug_assert!(token.is_internal());
            self.0.taken.pop().expect("undo without apply");
        }
    }

    impl CodedGame for FastBinary {
        fn move_code(&self, mv: &u8) -> u64 {
            self.0.move_code(mv)
        }
    }

    #[test]
    fn nrpa_undo_path_is_bit_identical_to_clone_path() {
        let cfg = NrpaConfig {
            iterations: 6,
            alpha: 0.8,
        };
        for seed in 0..10 {
            for level in 0..3 {
                let slow = nrpa(
                    &Binary {
                        depth: 7,
                        taken: vec![],
                    },
                    level,
                    &cfg,
                    &mut Rng::seeded(seed),
                );
                let fast = nrpa(
                    &FastBinary(Binary {
                        depth: 7,
                        taken: vec![],
                    }),
                    level,
                    &cfg,
                    &mut Rng::seeded(seed),
                );
                assert_eq!(fast.score, slow.score, "seed {seed} level {level}");
                assert_eq!(fast.sequence, slow.sequence, "seed {seed} level {level}");
                assert_eq!(fast.stats, slow.stats, "seed {seed} level {level}");
            }
        }
    }

    #[test]
    fn nrpa_level2_solves_binary_game() {
        let g = Binary {
            depth: 8,
            taken: vec![],
        };
        let cfg = NrpaConfig {
            iterations: 30,
            alpha: 1.0,
        };
        let r = nrpa(&g, 2, &cfg, &mut Rng::seeded(5));
        assert_eq!(r.score, 255, "NRPA should learn the all-ones line");
        assert_eq!(r.sequence, vec![1; 8]);
    }

    #[test]
    fn nrpa_beats_uniform_sampling_at_equal_playouts() {
        let g = Binary {
            depth: 10,
            taken: vec![],
        };
        let cfg = NrpaConfig {
            iterations: 10,
            alpha: 1.0,
        };
        let r = nrpa(&g, 2, &cfg, &mut Rng::seeded(3));
        // 100 playouts of uniform sampling:
        let mut rng = Rng::seeded(3);
        let best_uniform = (0..100).map(|_| sample(&g, &mut rng).score).max().unwrap();
        assert!(
            r.score >= best_uniform,
            "NRPA {} vs best-of-100 uniform {}",
            r.score,
            best_uniform
        );
    }

    #[test]
    fn adaptation_raises_played_move_probability() {
        let g = Binary {
            depth: 4,
            taken: vec![],
        };
        let mut p = Policy::new();
        let seq = vec![1u8, 1, 1, 1];
        p.adapt(&g, &seq, 1.0);
        // Weight of (depth 0, move 1) should now exceed (depth 0, move 0).
        let w1 = p.weight(1);
        let w0 = p.weight(0);
        assert!(w1 > w0, "w1 {w1} vs w0 {w0}");
    }

    #[test]
    fn policy_playout_follows_strong_weights() {
        let g = Binary {
            depth: 6,
            taken: vec![],
        };
        let mut p = Policy::new();
        // Drive all weights hard toward 1s.
        for _ in 0..20 {
            p.adapt(&g, &[1u8; 6], 1.0);
        }
        let mut stats = SearchStats::new();
        let mut ones = 0;
        for seed in 0..20 {
            let (_, seq) = policy_playout(&g, &p, &mut Rng::seeded(seed), &mut stats);
            ones += seq.iter().filter(|&&m| m == 1).count();
        }
        assert!(
            ones > 100,
            "after adaptation most moves should be 1s: {ones}/120"
        );
        assert_eq!(stats.playouts, 20);
    }

    #[test]
    fn level0_is_a_single_policy_playout() {
        let g = Binary {
            depth: 5,
            taken: vec![],
        };
        let cfg = NrpaConfig::default();
        let r = nrpa(&g, 0, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.stats.playouts, 1);
        assert_eq!(r.sequence.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Binary {
            depth: 6,
            taken: vec![],
        };
        let cfg = NrpaConfig {
            iterations: 8,
            alpha: 0.7,
        };
        let a = nrpa(&g, 2, &cfg, &mut Rng::seeded(11));
        let b = nrpa(&g, 2, &cfg, &mut Rng::seeded(11));
        assert_eq!(a.score, b.score);
        assert_eq!(a.sequence, b.sequence);
    }

    #[test]
    fn sequence_replays_to_score() {
        let g = Binary {
            depth: 7,
            taken: vec![],
        };
        let cfg = NrpaConfig {
            iterations: 5,
            alpha: 1.0,
        };
        for seed in 0..10 {
            let r = nrpa(&g, 1, &cfg, &mut Rng::seeded(seed));
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
        }
    }
}
