//! Baseline search algorithms.
//!
//! The paper positions NMCS against simpler Monte-Carlo strategies and
//! against the previous Morpion Solitaire record holder, a simulated
//! annealing search (Hyyrö & Poranen 2007, reference \[16\]; best computer
//! score 79 before the paper's 80). These baselines serve two purposes:
//!
//! * they are the comparators for the "NMCS amplifies plain Monte-Carlo"
//!   claim (§I), benchmarked in the ablation suite, and
//! * their simplicity makes them good cross-checks in tests (on toy games
//!   with known optima every search must agree).

use crate::ctx::SearchCtx;
use crate::game::{Game, Score};
use crate::rng::Rng;
use crate::search::{sample_ctx, PlayoutScratch, SearchResult};
use serde::{Deserialize, Serialize};

/// Flat Monte-Carlo search: play `n` independent random games from `game`
/// and keep the best.
///
/// This is the "simple Monte-Carlo search" that nested search improves on
/// (§I). With the same playout budget as a level-1 NMCS it is markedly
/// weaker, which the `flat_vs_nested` bench quantifies.
#[deprecated(note = "use SearchSpec::flat_mc(n) — the unified search API")]
pub fn flat_monte_carlo<G: Game>(game: &G, n: usize, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = flat_monte_carlo_with(game, n, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Ctx-threaded engine room of [`flat_monte_carlo`], used by
/// `SearchSpec::flat_mc`.
pub fn flat_monte_carlo_with<G: Game>(
    game: &G,
    n: usize,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    assert!(n > 0, "flat_monte_carlo needs at least one playout");
    let mut best_score = Score::MIN;
    let mut best_seq: Vec<G::Move> = Vec::new();
    let mut seq: Vec<G::Move> = Vec::new();
    if game.supports_undo() {
        // Clone-free path: every playout runs in place on one position
        // and unwinds through the scratch-state protocol.
        let mut pos = game.clone();
        let mut scratch = PlayoutScratch::new();
        for i in 0..n {
            if i > 0 && ctx.should_stop() {
                break;
            }
            seq.clear();
            let score = scratch.run_undo(&mut pos, rng, None, &mut seq, ctx);
            if score > best_score {
                best_score = score;
                best_seq.clear();
                best_seq.extend(seq.iter().cloned());
            }
        }
    } else {
        for i in 0..n {
            if i > 0 && ctx.should_stop() {
                break;
            }
            seq.clear();
            let mut g = game.clone();
            let score = sample_ctx(&mut g, rng, None, &mut seq, ctx);
            if score > best_score {
                best_score = score;
                best_seq.clear();
                best_seq.extend(seq.iter().cloned());
            }
        }
    }
    (best_score, best_seq)
}

/// Iterated sampling: at each step of one game, sample `n` random playouts
/// per candidate move and play the move with the best *maximum* playout.
///
/// Equivalent to a level-1 NMCS when `n == 1` except for the absence of
/// sequence memory; with larger `n` it is the classic "rollout algorithm"
/// of Tesauro & Galperin applied with a uniform random base policy.
#[deprecated(note = "use SearchSpec::iterated_sampling(n) — the unified search API")]
pub fn iterated_sampling<G: Game>(game: &G, n: usize, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = iterated_sampling_with(game, n, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Ctx-threaded engine room of [`iterated_sampling`], used by
/// `SearchSpec::iterated_sampling`. On interruption the game stops where
/// it stands; the played prefix and its score stay consistent.
pub fn iterated_sampling_with<G: Game>(
    game: &G,
    n: usize,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    assert!(
        n > 0,
        "iterated_sampling needs at least one playout per move"
    );
    let mut pos = game.clone();
    let mut played: Vec<G::Move> = Vec::new();
    let mut moves: Vec<G::Move> = Vec::new();
    let mut seq: Vec<G::Move> = Vec::new();
    let use_undo = game.supports_undo();
    let mut scratch = PlayoutScratch::new();
    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        if ctx.should_stop() {
            break;
        }
        let mut best: Option<(Score, usize)> = None;
        'candidates: for (i, mv) in moves.iter().enumerate() {
            for _ in 0..n {
                if ctx.should_stop() {
                    break 'candidates;
                }
                ctx.record_expansion();
                seq.clear();
                let s = if use_undo {
                    // Clone-free evaluation: apply, restoring playout, undo.
                    let token = pos.apply(mv);
                    let s = scratch.run_undo(&mut pos, rng, None, &mut seq, ctx);
                    pos.undo(token);
                    s
                } else {
                    let mut child = pos.clone();
                    child.play(mv);
                    sample_ctx(&mut child, rng, None, &mut seq, ctx)
                };
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
        }
        let Some((_, idx)) = best else {
            // Interrupted before any evaluation of this step finished.
            break;
        };
        let mv = moves[idx].clone();
        pos.play(&mv);
        played.push(mv);
        ctx.record_nested_move();
    }
    (pos.score(), played)
}

/// Configuration for the simulated-annealing baseline
/// (`SearchSpec::simulated_annealing`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// Total iterations (neighbour proposals).
    pub iterations: usize,
    /// Initial temperature, in score units.
    pub t_initial: f64,
    /// Final temperature; the schedule is geometric between the two.
    pub t_final: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            iterations: 10_000,
            t_initial: 4.0,
            t_final: 0.05,
        }
    }
}

/// Simulated annealing over *decision vectors*, in the spirit of Hyyrö &
/// Poranen's Morpion Solitaire heuristic (paper reference \[16\]).
///
/// A candidate solution is the list of branch indices chosen at each step
/// of a game (the "decision vector"); replaying it is deterministic: step
/// `k` plays `legal_moves()[d_k mod |moves|]`. A neighbour is produced by
/// re-randomising one decision at a random depth and keeping the suffix
/// (whose interpretation shifts with the new prefix — the classic encoding
/// for permutation-free games). Standard Metropolis acceptance with a
/// geometric cooling schedule.
#[deprecated(note = "use SearchSpec::simulated_annealing() — the unified search API")]
pub fn simulated_annealing<G: Game>(
    game: &G,
    config: &AnnealingConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = simulated_annealing_with(game, config, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Ctx-threaded engine room of [`simulated_annealing`], used by
/// `SearchSpec::simulated_annealing`. Budget/cancellation polls happen
/// once per proposal and once per replayed move — and never touch the
/// RNG, so an unhit budget is bit-identical to the unbudgeted run. An
/// interrupted replay stops where it stands; the prefix played so far
/// and its score stay consistent, so the returned best line always
/// replays to the returned score.
pub fn simulated_annealing_with<G: Game>(
    game: &G,
    config: &AnnealingConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    // Long enough for any bounded game we ship; decisions beyond the game
    // end are simply unused.
    const DECISIONS: usize = 512;
    let mut current: Vec<u32> = (0..DECISIONS).map(|_| rng.next_u64() as u32).collect();

    let replay = |decisions: &[u32], ctx: &mut SearchCtx| -> (Score, Vec<G::Move>) {
        let mut pos = game.clone();
        let mut moves: Vec<G::Move> = Vec::new();
        let mut seq: Vec<G::Move> = Vec::new();
        for &d in decisions {
            if ctx.should_stop() {
                break;
            }
            moves.clear();
            pos.legal_moves(&mut moves);
            if moves.is_empty() {
                break;
            }
            let mv = moves[(d as usize) % moves.len()].clone();
            pos.play(&mv);
            seq.push(mv);
            ctx.record_playout_move();
        }
        ctx.record_playout_end();
        (pos.score(), seq)
    };

    let (mut cur_score, mut cur_seq) = replay(&current, ctx);
    let mut best_score = cur_score;
    let mut best_seq = cur_seq.clone();

    let iters = config.iterations.max(1);
    let cooling = (config.t_final / config.t_initial).powf(1.0 / iters as f64);
    let mut temp = config.t_initial;

    for _ in 0..iters {
        if ctx.should_stop() {
            break;
        }
        let depth = rng.below(cur_seq.len().max(1));
        let old = current[depth];
        current[depth] = rng.next_u64() as u32;
        let (score, seq) = replay(&current, ctx);
        let accept =
            score >= cur_score || rng.chance((((score - cur_score) as f64) / temp.max(1e-9)).exp());
        if accept {
            cur_score = score;
            cur_seq = seq;
            if score > best_score {
                best_score = score;
                best_seq = cur_seq.clone();
            }
        } else {
            current[depth] = old;
        }
        temp *= cooling;
    }

    (best_score, best_seq)
}

/// Beam search over playout-evaluated moves: keep the `width` best
/// positions per depth, evaluating each candidate child with `n` random
/// playouts. A deterministic, memory-bounded contrast to NMCS used in the
/// ablation benches.
#[deprecated(note = "use SearchSpec::beam(width, n) — the unified search API")]
pub fn beam_search<G: Game>(
    game: &G,
    width: usize,
    n: usize,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = beam_search_with(game, width, n, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Ctx-threaded engine room of [`beam_search`], used by
/// `SearchSpec::beam`. On interruption the best position reached by any
/// beam entry so far is returned.
pub fn beam_search_with<G: Game>(
    game: &G,
    width: usize,
    n: usize,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    assert!(width > 0 && n > 0);
    let mut beam: Vec<(G, Vec<G::Move>)> = vec![(game.clone(), Vec::new())];
    let mut best_score = game.score();
    let mut best_seq: Vec<G::Move> = Vec::new();
    let mut moves: Vec<G::Move> = Vec::new();
    let mut seq: Vec<G::Move> = Vec::new();
    let use_undo = game.supports_undo();
    let mut scratch = PlayoutScratch::new();

    'depths: loop {
        let mut children: Vec<(Score, G, Vec<G::Move>)> = Vec::new();
        for (pos, path) in &beam {
            moves.clear();
            pos.legal_moves(&mut moves);
            for mv in &moves {
                if ctx.should_stop() {
                    break 'depths;
                }
                let mut child = pos.clone();
                child.play(mv);
                ctx.record_expansion();
                // Evaluate with the best of n playouts (run in place and
                // unwound on fast-path games; probed on a clone otherwise).
                let mut value = Score::MIN;
                for _ in 0..n {
                    seq.clear();
                    let s = if use_undo {
                        scratch.run_undo(&mut child, rng, None, &mut seq, ctx)
                    } else {
                        let mut probe = child.clone();
                        sample_ctx(&mut probe, rng, None, &mut seq, ctx)
                    };
                    value = value.max(s);
                }
                let mut path2 = path.clone();
                path2.push(mv.clone());
                if child.score() > best_score {
                    best_score = child.score();
                    best_seq = path2.clone();
                }
                children.push((value, child, path2));
            }
        }
        if children.is_empty() {
            break;
        }
        children.sort_by_key(|c| std::cmp::Reverse(c.0));
        children.truncate(width);
        beam = children.into_iter().map(|(_, g, p)| (g, p)).collect();
    }

    (best_score, best_seq)
}

// The unit tests keep exercising the deprecated free functions: they are
// the regression net for the shims (new-API coverage lives in `spec.rs`).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;

    /// Depth-`d` ternary game scoring the base-3 reading of the path; the
    /// unique optimum plays move 2 every step.
    #[derive(Clone, Debug)]
    struct Ternary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Ternary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn ternary(depth: usize) -> Ternary {
        Ternary {
            depth,
            taken: Vec::new(),
        }
    }

    fn optimum(depth: usize) -> Score {
        (0..depth).fold(0, |acc, _| acc * 3 + 2)
    }

    #[test]
    fn flat_mc_improves_with_budget() {
        let g = ternary(4);
        let few = flat_monte_carlo(&g, 2, &mut Rng::seeded(1)).score;
        let many = flat_monte_carlo(&g, 512, &mut Rng::seeded(1)).score;
        assert!(many >= few);
        assert!(
            many > optimum(4) / 2,
            "512 samples of 81 leaves should land high"
        );
    }

    #[test]
    fn flat_mc_sequence_is_replayable() {
        let g = ternary(5);
        let r = flat_monte_carlo(&g, 16, &mut Rng::seeded(9));
        let mut replay = ternary(5);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
        assert_eq!(r.stats.playouts, 16);
    }

    #[test]
    fn iterated_sampling_beats_flat_mc_with_same_order_of_budget() {
        let trials = 20;
        let mut flat_total = 0;
        let mut iter_total = 0;
        for seed in 0..trials {
            let g = ternary(5);
            // iterated sampling with n=3: 5 steps × 3 moves × 3 playouts ≈ 45
            flat_total += flat_monte_carlo(&g, 45, &mut Rng::seeded(seed)).score;
            iter_total += iterated_sampling(&g, 3, &mut Rng::seeded(seed)).score;
        }
        assert!(
            iter_total > flat_total,
            "iterated {iter_total} should beat flat {flat_total}"
        );
    }

    #[test]
    fn iterated_sampling_sequence_consistent() {
        let g = ternary(4);
        let r = iterated_sampling(&g, 2, &mut Rng::seeded(3));
        let mut replay = ternary(4);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
        assert_eq!(r.sequence.len(), 4);
    }

    #[test]
    fn annealing_finds_good_solutions_on_small_game() {
        let g = ternary(4);
        let cfg = AnnealingConfig {
            iterations: 3000,
            t_initial: 8.0,
            t_final: 0.01,
        };
        let r = simulated_annealing(&g, &cfg, &mut Rng::seeded(7));
        assert!(
            r.score >= optimum(4) - 3,
            "annealing should get near optimum {}, got {}",
            optimum(4),
            r.score
        );
        let mut replay = ternary(4);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
    }

    #[test]
    fn annealing_on_terminal_game_is_harmless() {
        let g = ternary(0);
        let cfg = AnnealingConfig {
            iterations: 10,
            ..Default::default()
        };
        let r = simulated_annealing(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, 0);
        assert!(r.sequence.is_empty());
    }

    #[test]
    fn beam_search_solves_small_game_with_wide_beam() {
        let g = ternary(3);
        let r = beam_search(&g, 27, 1, &mut Rng::seeded(2));
        assert_eq!(r.score, optimum(3), "width 27 covers the whole tree");
        let mut replay = ternary(3);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
    }

    #[test]
    fn beam_search_narrow_beam_still_returns_consistent_result() {
        let g = ternary(5);
        let r = beam_search(&g, 2, 2, &mut Rng::seeded(4));
        let mut replay = ternary(5);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
    }

    #[test]
    fn baselines_deterministic_given_seed() {
        let g = ternary(4);
        assert_eq!(
            flat_monte_carlo(&g, 10, &mut Rng::seeded(5)).score,
            flat_monte_carlo(&g, 10, &mut Rng::seeded(5)).score
        );
        assert_eq!(
            iterated_sampling(&g, 2, &mut Rng::seeded(5)).sequence,
            iterated_sampling(&g, 2, &mut Rng::seeded(5)).sequence
        );
        let cfg = AnnealingConfig {
            iterations: 200,
            ..Default::default()
        };
        assert_eq!(
            simulated_annealing(&g, &cfg, &mut Rng::seeded(5)).score,
            simulated_annealing(&g, &cfg, &mut Rng::seeded(5)).score
        );
    }
}
