//! Per-job seed derivation — the cross-backend determinism contract.
//!
//! Every evaluation job in a parallel search gets a seed derived from
//! the run's root seed and the job's *logical* coordinates (which root
//! step and root move spawned the median, which median step and median
//! move spawned the client job, which batch slot a leaf evaluation
//! occupies). Scores therefore depend only on the logical structure of
//! the search, never on scheduling, threads, or message timing — so the
//! threaded runtime, the discrete-event simulator, the in-core parallel
//! executors, and the sequential reference all make identical decisions.
//!
//! These derivations historically lived in `parallel_nmcs::seeds`; they
//! moved here so the unified [`crate::spec::SearchSpec`] front door can
//! drive the parallel strategies without a dependency inversion. The
//! `parallel_nmcs::seeds` module re-exports them, and the constants are
//! pinned: changing them invalidates every recorded trace and table.

use crate::rng::derive_seed;

/// Domain-separation tags (arbitrary odd constants).
const TAG_MEDIAN: u64 = 0x6d65_6469_616e_0001;
const TAG_CLIENT: u64 = 0x636c_6965_6e74_0001;
const TAG_TREE_WORKER: u64 = 0x7472_6565_7770_0001;
const TAG_TREE_LEAF: u64 = 0x7472_6565_6c66_0001;
const TAG_SESSION_STEP: u64 = 0x7365_7373_7374_0001;

/// Seed of the median search spawned for `root_move` at `root_step`.
pub fn median_seed(root_seed: u64, root_step: usize, root_move: usize) -> u64 {
    derive_seed(root_seed, &[TAG_MEDIAN, root_step as u64, root_move as u64])
}

/// Seed of the client job spawned for `median_move` at `median_step` of
/// the median search seeded with `median_seed`.
pub fn client_seed(median_seed: u64, median_step: usize, median_move: usize) -> u64 {
    derive_seed(
        median_seed,
        &[TAG_CLIENT, median_step as u64, median_move as u64],
    )
}

/// The seed of batch slot `slot` of the leaf-parallel evaluation at
/// `(step, move)` — the client derivation with the slot in the
/// client-move position, pinned as part of the determinism contract.
pub fn slot_seed(root_seed: u64, step: usize, mv: usize, slot: usize) -> u64 {
    client_seed(median_seed(root_seed, step, mv), 0, slot)
}

/// The RNG seed of tree-parallel UCT worker `worker`. Worker 0 uses the
/// root seed *itself*, so a single-worker tree-parallel run draws the
/// exact RNG stream of sequential UCT — the bit-identity anchor of the
/// one backend whose multi-worker runs are inherently nondeterministic.
pub fn tree_worker_seed(root_seed: u64, worker: usize) -> u64 {
    if worker == 0 {
        root_seed
    } else {
        derive_seed(root_seed, &[TAG_TREE_WORKER, worker as u64])
    }
}

/// The rollout seed of tree-parallel iteration `iteration` in
/// batched-leaf mode. Keyed by the *iteration index* (not the worker or
/// the pool slot that happens to evaluate it), so a slab's rollouts are
/// placement-independent: a single-worker batched run produces the same
/// result no matter how many pool workers execute its slabs.
pub fn tree_rollout_seed(root_seed: u64, iteration: u64) -> u64 {
    derive_seed(root_seed, &[TAG_TREE_LEAF, iteration])
}

/// The search seed of session step `step`. Step 0 uses the root seed
/// *itself*, so a session's first step runs the exact search a plain
/// one-shot spec run would — steps only diverge once the position does.
pub fn session_step_seed(root_seed: u64, step: usize) -> u64 {
    if step == 0 {
        root_seed
    } else {
        derive_seed(root_seed, &[TAG_SESSION_STEP, step as u64])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_across_coordinates() {
        let m00 = median_seed(1, 0, 0);
        assert_ne!(m00, median_seed(1, 0, 1));
        assert_ne!(m00, median_seed(1, 1, 0));
        assert_ne!(m00, median_seed(2, 0, 0));
        let c00 = client_seed(m00, 0, 0);
        assert_ne!(c00, client_seed(m00, 0, 1));
        assert_ne!(c00, client_seed(m00, 1, 0));
    }

    #[test]
    fn median_and_client_derivations_are_domain_separated() {
        assert_ne!(median_seed(7, 3, 4), client_seed(7, 3, 4));
    }

    #[test]
    fn tree_worker_zero_is_the_root_seed() {
        // Pinned: worker 0 ≡ root seed is what makes single-worker
        // tree-parallel UCT bit-identical to sequential UCT.
        assert_eq!(tree_worker_seed(42, 0), 42);
        assert_ne!(tree_worker_seed(42, 1), 42);
        assert_ne!(tree_worker_seed(42, 1), tree_worker_seed(42, 2));
        assert_ne!(tree_worker_seed(42, 1), tree_worker_seed(43, 1));
    }

    #[test]
    fn tree_rollout_seeds_are_iteration_keyed() {
        assert_ne!(tree_rollout_seed(42, 0), tree_rollout_seed(42, 1));
        assert_ne!(tree_rollout_seed(42, 0), tree_rollout_seed(43, 0));
        // Domain-separated from the worker derivation.
        assert_ne!(tree_rollout_seed(42, 1), tree_worker_seed(42, 1));
        assert_eq!(tree_rollout_seed(42, 7), tree_rollout_seed(42, 7));
    }

    #[test]
    fn session_step_zero_is_the_root_seed() {
        // Pinned: step 0 ≡ root seed makes a session's first step equal
        // to the one-shot run of the same spec.
        assert_eq!(session_step_seed(42, 0), 42);
        assert_ne!(session_step_seed(42, 1), 42);
        assert_ne!(session_step_seed(42, 1), session_step_seed(42, 2));
        // Domain-separated from the other derivations.
        assert_ne!(session_step_seed(42, 1), tree_worker_seed(42, 1));
        assert_ne!(session_step_seed(42, 1), tree_rollout_seed(42, 1));
    }

    #[test]
    fn derivation_is_stable() {
        // Pinned: these values are part of the cross-backend contract; a
        // change here invalidates recorded traces.
        let m = median_seed(42, 1, 2);
        assert_eq!(m, median_seed(42, 1, 2));
        let c = client_seed(m, 3, 4);
        assert_eq!(c, client_seed(m, 3, 4));
        assert_eq!(
            slot_seed(42, 1, 2, 3),
            client_seed(median_seed(42, 1, 2), 0, 3)
        );
    }
}
