//! Object-safe erasure of the [`Game`] trait — the shim that lets
//! heterogeneous games share one queue (used by the `nmcs-engine`
//! service crate).
//!
//! [`Game`] itself is not object-safe: its associated `Move` type differs
//! per game, and the search functions are generic over it. The bridge is
//! the classic *index erasure*: an [`AnyGame`] presents its legal moves
//! as indices `0..n` into the position's legal-move list, and [`DynGame`]
//! wraps a boxed `AnyGame` back into a `Game` implementation whose move
//! type is `usize`.
//!
//! The crucial property is that the erasure is **search-transparent**:
//! for the same seed, a search over `DynGame::new(g)` draws exactly the
//! same random numbers and makes exactly the same decisions as the same
//! search over `g` directly, because at every reachable position the
//! index list and the move list are in bijection (same length, same
//! order). The returned `SearchResult<usize>` is the index-encoding of
//! the direct call's `SearchResult<G::Move>`; [`decode_result`] converts
//! between the two, and the engine's integration tests assert the
//! round-trip is bit-identical (scores, sequences, and stats).

use crate::game::{Game, Score, Undo};
use crate::nrpa::CodedGame;
use crate::report::SearchReport;
use crate::search::SearchResult;
use crate::spec::{CancelToken, SearchSpec, Searcher};

/// Object-safe view of a game: moves are indices into the current
/// position's legal-move list (in `legal_moves` order).
pub trait AnyGame: Send + Sync {
    /// Number of legal moves at the current position.
    fn legal_count(&self) -> usize;

    /// Plays the `i`-th legal move of the current position.
    ///
    /// `i` must be `< legal_count()`; implementations may panic
    /// otherwise.
    fn play_nth(&mut self, i: usize);

    /// Score of the current position (see [`Game::score`]).
    fn score(&self) -> Score;

    /// Moves played from the initial position (see
    /// [`Game::moves_played`]).
    fn moves_played(&self) -> usize;

    /// Stable NRPA move code of the `i`-th legal move (see
    /// [`CodedGame::move_code`]).
    fn move_code_nth(&self, i: usize) -> u64;

    /// The underlying game's [`Game::state_hash`] — the transposition
    /// key, passed through the erasure unchanged so an erased search
    /// interns exactly the keys the typed search would.
    fn state_hash(&self) -> u64;

    /// A cheap digest of the current position, used by schedulers to
    /// tell positions apart without access to the concrete game type.
    /// Hashes the position's observable surface (move count, score,
    /// legal-move codes) plus a short deterministic probe rollout, so
    /// games whose roots *look* alike but play differently (e.g. two
    /// random TSP instances, which share move codes but not distances)
    /// still separate. Not collision-free — a discriminator, not an
    /// identity.
    fn state_digest(&self) -> u64;

    /// Clones the erased position. The clone is an independent position:
    /// undo tokens pending on `self` do **not** transfer (see
    /// [`AnyGame::apply_nth`]).
    fn clone_any(&self) -> Box<dyn AnyGame>;

    /// Whether the underlying game implements the scratch-state fast
    /// path ([`Game::supports_undo`]). Erasures over snapshot-only games
    /// return `false`, and [`DynGame`] then falls back to snapshotting —
    /// the default `apply_nth`/`undo_last` pair below is never called in
    /// that case.
    fn supports_undo(&self) -> bool {
        false
    }

    /// Plays the `i`-th legal move like [`AnyGame::play_nth`], recording
    /// reversal data internally for [`AnyGame::undo_last`]. Tokens are an
    /// internal LIFO stack; clones do not inherit it.
    fn apply_nth(&mut self, i: usize) {
        self.play_nth(i);
    }

    /// Reverts the most recent not-yet-undone [`AnyGame::apply_nth`].
    fn undo_last(&mut self) {
        panic!("erased game does not implement the undo fast path");
    }

    /// Reverts the `n` most recent `apply_nth` calls in one go. The
    /// erasures override this to refresh their legal-move cache once at
    /// the end instead of once per token — on movegen-heavy games that
    /// halves the cost of unwinding a playout.
    fn undo_many(&mut self, n: usize) {
        for _ in 0..n {
            self.undo_last();
        }
    }
}

/// Digest over the observable surface of a position plus a short
/// deterministic probe rollout (always-first-move, capped) whose scores
/// expose game dynamics the surface alone cannot.
fn digest<G: Game>(game: &G, codes: impl Iterator<Item = u64>) -> u64 {
    let mut h = crate::rng::Fnv1a::new();
    h.write_u64(game.moves_played() as u64);
    h.write_u64(game.score() as u64);
    for c in codes {
        h.write_u64(c);
    }
    let mut probe = game.clone();
    let mut buf = Vec::new();
    for _ in 0..PROBE_STEPS {
        buf.clear();
        probe.legal_moves(&mut buf);
        let Some(mv) = buf.first().cloned() else {
            break;
        };
        probe.play(&mv);
        h.write_u64(probe.score() as u64);
        h.write_u64(buf.len() as u64);
    }
    h.finish()
}

/// Length cap of the digest's probe rollout: long enough to separate
/// look-alike roots, short enough to stay negligible next to a search.
const PROBE_STEPS: usize = 16;

/// Erasure of a [`CodedGame`]: true move codes, so NRPA over the erased
/// game learns exactly the policy it would learn over the typed game.
///
/// The current legal-move list is cached eagerly (filled at
/// construction, refreshed after every `play_nth`), so indexed
/// accessors are O(1) and an erased search performs exactly one move
/// generation per step — the same as the typed search it mirrors.
struct ErasedCoded<G: CodedGame + Send + Sync + 'static>
where
    G::Move: Send + Sync,
{
    game: G,
    moves: Vec<G::Move>,
    /// Undo tokens of outstanding `apply_nth` calls (LIFO). Not cloned:
    /// tokens belong to the position they were issued on.
    undo: Vec<Undo<G>>,
}

/// Erasure of a plain [`Game`]: positional move codes (the index
/// itself). NRPA still runs, but its policy keys on positions' move
/// slots rather than stable move identity — fine for algorithms that
/// ignore codes (NMCS, UCT, flat MC), weaker for NRPA.
struct ErasedUncoded<G: Game + Send + Sync + 'static>
where
    G::Move: Send + Sync,
{
    game: G,
    moves: Vec<G::Move>,
    /// Undo tokens of outstanding `apply_nth` calls (LIFO; not cloned).
    undo: Vec<Undo<G>>,
}

fn current_moves<G: Game>(game: &G) -> Vec<G::Move> {
    let mut buf = Vec::new();
    game.legal_moves(&mut buf);
    buf
}

/// The scratch-protocol surface shared verbatim by both erasures (they
/// differ only in move coding). One expansion site keeps the journal
/// semantics — LIFO token pops, one cache refresh per batch — in
/// lockstep; editing one erasure but not the other would silently break
/// the bit-identity contract for the other coding scheme.
macro_rules! erased_scratch_protocol {
    () => {
        fn supports_undo(&self) -> bool {
            self.game.supports_undo()
        }

        fn apply_nth(&mut self, i: usize) {
            let mv = self.moves[i].clone();
            self.undo.push(self.game.apply(&mv));
            self.moves.clear();
            self.game.legal_moves(&mut self.moves);
        }

        fn undo_last(&mut self) {
            let token = self.undo.pop().expect("undo_last without apply_nth");
            self.game.undo(token);
            self.moves.clear();
            self.game.legal_moves(&mut self.moves);
        }

        fn undo_many(&mut self, n: usize) {
            for _ in 0..n {
                let token = self.undo.pop().expect("undo_many without apply_nth");
                self.game.undo(token);
            }
            if n > 0 {
                self.moves.clear();
                self.game.legal_moves(&mut self.moves);
            }
        }
    };
}

impl<G: CodedGame + Send + Sync + 'static> AnyGame for ErasedCoded<G>
where
    G::Move: Send + Sync,
{
    fn legal_count(&self) -> usize {
        self.moves.len()
    }

    fn play_nth(&mut self, i: usize) {
        let mv = self.moves[i].clone();
        self.game.play(&mv);
        self.moves.clear();
        self.game.legal_moves(&mut self.moves);
    }

    fn score(&self) -> Score {
        self.game.score()
    }

    fn moves_played(&self) -> usize {
        self.game.moves_played()
    }

    fn move_code_nth(&self, i: usize) -> u64 {
        self.game.move_code(&self.moves[i])
    }

    fn state_hash(&self) -> u64 {
        self.game.state_hash()
    }

    fn state_digest(&self) -> u64 {
        digest(
            &self.game,
            self.moves.iter().map(|m| self.game.move_code(m)),
        )
    }

    fn clone_any(&self) -> Box<dyn AnyGame> {
        Box::new(ErasedCoded {
            game: self.game.clone(),
            moves: self.moves.clone(),
            undo: Vec::new(),
        })
    }

    erased_scratch_protocol!();
}

impl<G: Game + Send + Sync + 'static> AnyGame for ErasedUncoded<G>
where
    G::Move: Send + Sync,
{
    fn legal_count(&self) -> usize {
        self.moves.len()
    }

    fn play_nth(&mut self, i: usize) {
        let mv = self.moves[i].clone();
        self.game.play(&mv);
        self.moves.clear();
        self.game.legal_moves(&mut self.moves);
    }

    fn score(&self) -> Score {
        self.game.score()
    }

    fn moves_played(&self) -> usize {
        self.game.moves_played()
    }

    fn move_code_nth(&self, i: usize) -> u64 {
        i as u64
    }

    fn state_hash(&self) -> u64 {
        self.game.state_hash()
    }

    fn state_digest(&self) -> u64 {
        digest(&self.game, 0..self.moves.len() as u64)
    }

    fn clone_any(&self) -> Box<dyn AnyGame> {
        Box::new(ErasedUncoded {
            game: self.game.clone(),
            moves: self.moves.clone(),
            undo: Vec::new(),
        })
    }

    erased_scratch_protocol!();
}

/// A boxed erased game that itself implements [`Game`] (with
/// `Move = usize`) and [`CodedGame`], so every search in this crate runs
/// on it unchanged.
pub struct DynGame {
    inner: Box<dyn AnyGame>,
    /// The erased game's concrete type name (last path segment) —
    /// survives erasure so observability layers can key per-domain
    /// metrics without downcasting.
    domain: &'static str,
}

/// Last path segment of a `std::any::type_name`, generics stripped —
/// `nmcs_games::samegame::SameGame` → `SameGame`.
fn domain_label<G: 'static>() -> &'static str {
    let full = std::any::type_name::<G>();
    let base = full.split('<').next().unwrap_or(full);
    base.rsplit("::").next().unwrap_or(base)
}

impl DynGame {
    /// Erases a coded game; NRPA keeps its true move codes.
    pub fn new<G: CodedGame + Send + Sync + 'static>(game: G) -> Self
    where
        G::Move: Send + Sync,
    {
        let moves = current_moves(&game);
        DynGame {
            inner: Box::new(ErasedCoded {
                game,
                moves,
                undo: Vec::new(),
            }),
            domain: domain_label::<G>(),
        }
    }

    /// Erases a plain game; NRPA falls back to positional move codes.
    pub fn new_uncoded<G: Game + Send + Sync + 'static>(game: G) -> Self
    where
        G::Move: Send + Sync,
    {
        let moves = current_moves(&game);
        DynGame {
            inner: Box::new(ErasedUncoded {
                game,
                moves,
                undo: Vec::new(),
            }),
            domain: domain_label::<G>(),
        }
    }

    /// The concrete game type's short name (e.g. `"SameGame"`), kept
    /// through the erasure — the key the engine's per-domain latency
    /// histograms use.
    pub fn domain(&self) -> &'static str {
        self.domain
    }

    /// Digest of the current position (see [`AnyGame::state_digest`]).
    pub fn state_digest(&self) -> u64 {
        self.inner.state_digest()
    }

    /// Reverts the `n` most recent internal-token applies in one batch,
    /// refreshing the legal-move cache once (see [`AnyGame::undo_many`]).
    /// Exists so wrappers holding a `DynGame` (the engine's cancellation
    /// shim) can reach the batch path without materialising tokens.
    pub fn undo_last_n(&mut self, n: usize) {
        if n > 0 {
            self.inner.undo_many(n);
        }
    }
}

impl Clone for DynGame {
    fn clone(&self) -> Self {
        DynGame {
            inner: self.inner.clone_any(),
            domain: self.domain,
        }
    }
}

impl std::fmt::Debug for DynGame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynGame")
            .field("moves_played", &self.inner.moves_played())
            .field("legal_count", &self.inner.legal_count())
            .field("score", &self.inner.score())
            .finish()
    }
}

impl Game for DynGame {
    type Move = usize;

    fn legal_moves(&self, out: &mut Vec<usize>) {
        out.extend(0..self.inner.legal_count());
    }

    fn play(&mut self, mv: &usize) {
        self.inner.play_nth(*mv);
    }

    fn score(&self) -> Score {
        self.inner.score()
    }

    fn moves_played(&self) -> usize {
        self.inner.moves_played()
    }

    fn is_terminal(&self) -> bool {
        self.inner.legal_count() == 0
    }

    fn state_hash(&self) -> u64 {
        self.inner.state_hash()
    }

    // The scratch-state protocol passes straight through the erasure, so
    // searches over a `DynGame` of a fast-path game stay clone-free (the
    // engine inherits the speedup for every game that has it).

    fn supports_undo(&self) -> bool {
        self.inner.supports_undo()
    }

    fn apply(&mut self, mv: &usize) -> Undo<Self> {
        if self.inner.supports_undo() {
            self.inner.apply_nth(*mv);
            Undo::internal()
        } else {
            // nmcs-lint: allow(hot-path) reason="snapshot fallback for erased games without the undo fast path; fast-path games take the journal branch above"
            let snapshot = Undo::snapshot(self.clone());
            self.inner.play_nth(*mv);
            snapshot
        }
    }

    fn undo(&mut self, token: Undo<Self>) {
        match token.into_snapshot() {
            Some(snapshot) => *self = *snapshot,
            None => self.inner.undo_last(),
        }
    }

    fn undo_all(&mut self, tokens: &mut Vec<Undo<Self>>) {
        // Tokens are homogeneous (the fast-path decision is a property
        // of the inner game), so a stack of internal tokens can unwind
        // through the erasure's batch path — one cache refresh total.
        if tokens.iter().all(|t| t.is_internal()) {
            let n = tokens.len();
            tokens.clear();
            self.undo_last_n(n);
        } else {
            while let Some(token) = tokens.pop() {
                self.undo(token);
            }
        }
    }
}

impl CodedGame for DynGame {
    fn move_code(&self, mv: &usize) -> u64 {
        self.inner.move_code_nth(*mv)
    }
}

/// Replays an index sequence (as returned by a search over [`DynGame`])
/// against the *typed* root position, recovering the typed move
/// sequence.
///
/// Panics if an index is out of range for the position it applies to —
/// that would mean the sequence does not belong to this root.
pub fn decode_sequence<G: Game>(root: &G, indices: &[usize]) -> Vec<G::Move> {
    let mut pos = root.clone();
    let mut buf = Vec::new();
    let mut out = Vec::with_capacity(indices.len());
    for &i in indices {
        buf.clear();
        pos.legal_moves(&mut buf);
        let mv = buf.swap_remove(i);
        pos.play(&mv);
        out.push(mv);
    }
    out
}

/// Converts an index-encoded [`SearchResult`] into the typed result of
/// the equivalent direct search — score and stats are carried over
/// verbatim, the sequence is decoded against `root`.
pub fn decode_result<G: Game>(root: &G, result: &SearchResult<usize>) -> SearchResult<G::Move> {
    SearchResult {
        score: result.score,
        sequence: decode_sequence(root, &result.sequence),
        stats: result.stats,
    }
}

/// Converts an index-encoded [`SearchReport`] (from a search over
/// [`DynGame`]) into the typed report of the equivalent direct search;
/// everything but the sequence is carried over verbatim.
pub fn decode_report<G: Game>(root: &G, report: &SearchReport<usize>) -> SearchReport<G::Move> {
    SearchReport {
        score: report.score,
        sequence: decode_sequence(root, &report.sequence),
        stats: report.stats,
        elapsed: report.elapsed,
        client_jobs: report.client_jobs,
        interrupted: report.interrupted,
        seed: report.seed,
    }
}

/// Object-safe twin of [`Searcher`], closed over [`DynGame`]: the form a
/// heterogeneous service (the engine, a job queue, a registry of named
/// strategies) can box and store without knowing the concrete game type.
///
/// Because the erasure is search-transparent, `search_erased` over
/// `DynGame::new(g)` makes exactly the same decisions as the same
/// searcher over `g` directly; [`decode_report`] converts back. For the
/// one schedule-dependent strategy (multi-worker tree-parallel UCT) the
/// per-decision transparency still holds, but erased and typed runs are
/// separate executions and may legitimately explore different trees —
/// equality is only assertable where the spec itself is deterministic
/// ([`crate::spec::AlgorithmSpec::worker_count_deterministic`]).
pub trait AnySearcher: Send + Sync {
    /// Runs the strategy on an erased game (see [`Searcher::search`]).
    fn search_erased(&self, game: &DynGame, cancel: Option<&CancelToken>) -> SearchReport<usize>;

    /// Short label for logs and progress lines.
    fn label(&self) -> &'static str;
}

impl AnySearcher for SearchSpec {
    fn search_erased(&self, game: &DynGame, cancel: Option<&CancelToken>) -> SearchReport<usize> {
        self.search(game, cancel)
    }

    fn label(&self) -> &'static str {
        self.algorithm.label()
    }
}

// The tests exercise the deprecated free functions on purpose: erasure
// transparency must hold for the legacy shims too.
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::search::{nested, sample, NestedConfig};

    /// Small deterministic test game: pick digits, score favours large
    /// digits early (same shape as the Trap game in `search`).
    #[derive(Clone, Debug)]
    struct Digits {
        taken: Vec<u8>,
        depth: usize,
    }

    impl Game for Digits {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }

        fn supports_undo(&self) -> bool {
            true
        }

        fn apply(&mut self, mv: &u8) -> Undo<Self> {
            self.play(mv);
            Undo::internal()
        }

        fn undo(&mut self, token: Undo<Self>) {
            debug_assert!(token.is_internal());
            self.taken.pop().expect("undo without apply");
        }
    }

    impl CodedGame for Digits {
        fn move_code(&self, mv: &u8) -> u64 {
            *mv as u64
        }
    }

    fn digits() -> Digits {
        Digits {
            taken: Vec::new(),
            depth: 4,
        }
    }

    #[test]
    fn erased_sample_matches_typed_sample() {
        let typed = sample(&digits(), &mut Rng::seeded(9));
        let erased = sample(&DynGame::new(digits()), &mut Rng::seeded(9));
        assert_eq!(erased.score, typed.score);
        assert_eq!(erased.stats, typed.stats);
        assert_eq!(decode_sequence(&digits(), &erased.sequence), typed.sequence);
    }

    #[test]
    fn erased_nested_is_bit_identical_after_decoding() {
        for seed in 0..10 {
            for level in 0..3 {
                let cfg = NestedConfig::paper();
                let typed = nested(&digits(), level, &cfg, &mut Rng::seeded(seed));
                let erased = nested(&DynGame::new(digits()), level, &cfg, &mut Rng::seeded(seed));
                let decoded = decode_result(&digits(), &erased);
                assert_eq!(decoded, typed, "seed {seed} level {level}");
            }
        }
    }

    #[test]
    fn erased_game_reports_consistent_state() {
        let mut g = DynGame::new(digits());
        assert!(!g.is_terminal());
        assert_eq!(g.moves_played(), 0);
        let mut buf = Vec::new();
        g.legal_moves(&mut buf);
        assert_eq!(buf, vec![0, 1, 2]);
        assert_eq!(g.move_code(&2), 2);
        g.play(&2);
        assert_eq!(g.moves_played(), 1);
        assert_eq!(g.score(), 2);
    }

    #[test]
    fn erasure_passes_the_fast_path_through() {
        let mut g = DynGame::new(digits());
        assert!(g.supports_undo(), "Digits opts in, so its erasure must");
        let mut buf = Vec::new();
        g.legal_moves(&mut buf);
        let before_score = g.score();
        let token = g.apply(&buf[1]);
        assert!(token.is_internal());
        assert_eq!(g.moves_played(), 1);
        g.undo(token);
        assert_eq!(g.moves_played(), 0);
        assert_eq!(g.score(), before_score);
        let mut buf2 = Vec::new();
        g.legal_moves(&mut buf2);
        assert_eq!(buf, buf2, "legal-move indices restored");
    }

    #[test]
    fn batch_unwind_restores_the_position_in_one_refresh() {
        let mut g = DynGame::new(digits());
        let mut reference = Vec::new();
        g.legal_moves(&mut reference);
        let before = (g.score(), g.moves_played());

        // Apply a chain of three moves, then unwind it through undo_all
        // (the playout-unwind path, which batches the cache refresh).
        let mut tokens = Vec::new();
        for _ in 0..3 {
            let mut moves = Vec::new();
            g.legal_moves(&mut moves);
            tokens.push(g.apply(&moves[0]));
        }
        assert_eq!(g.moves_played(), 3);
        g.undo_all(&mut tokens);
        assert!(tokens.is_empty());
        assert_eq!((g.score(), g.moves_played()), before);
        let mut after = Vec::new();
        g.legal_moves(&mut after);
        assert_eq!(after, reference, "legal-move cache refreshed correctly");
    }

    #[test]
    fn snapshot_only_erasure_falls_back_to_snapshots() {
        use crate::game::SnapshotOnly;
        let mut g = DynGame::new_uncoded(SnapshotOnly(digits()));
        assert!(!g.supports_undo());
        let token = g.apply(&0);
        assert!(!token.is_internal());
        assert_eq!(g.moves_played(), 1);
        g.undo(token);
        assert_eq!(g.moves_played(), 0);
    }

    #[test]
    fn state_hash_passes_through_the_erasure() {
        let typed = digits();
        let mut erased = DynGame::new(digits());
        assert_eq!(erased.state_hash(), typed.state_hash());
        let mut t2 = digits();
        t2.play(&1);
        erased.play(&1);
        assert_eq!(erased.state_hash(), t2.state_hash());
        // Undo restores the previous key exactly.
        let before = erased.state_hash();
        let token = erased.apply(&0);
        erased.undo(token);
        assert_eq!(erased.state_hash(), before);
    }

    #[test]
    fn uncoded_erasure_uses_positional_codes() {
        let g = DynGame::new_uncoded(digits());
        assert_eq!(g.move_code(&0), 0);
        assert_eq!(g.move_code(&2), 2);
    }

    #[test]
    fn decode_sequence_replays_against_root() {
        let erased = DynGame::new(digits());
        let r = nested(&erased, 1, &NestedConfig::paper(), &mut Rng::seeded(4));
        let typed_seq = decode_sequence(&digits(), &r.sequence);
        let mut replay = digits();
        for mv in &typed_seq {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
    }
}
