//! The common result type of the unified search API.
//!
//! Every backend — serial NMCS/NRPA/UCT/baselines, the leaf-parallel
//! batch executor, the root-parallel executor, and the engine's job
//! replicas — reports through one [`SearchReport`], which subsumes the
//! historical zoo of result shapes: `SearchResult` (score + sequence +
//! stats), the threaded backend's `ThreadReport` (wall clock + client
//! work), and the leaf backend's ad-hoc `(outcome, Duration)` tuples.
//! Reports are serde round-trippable so sweep rows can be persisted and
//! replayed from the command line.

use crate::game::Score;
use crate::search::SearchResult;
use crate::stats::SearchStats;
use serde::{Deserialize, Error, Serialize, Value};
use std::time::Duration;

/// Why a search returned before running to natural completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interruption {
    /// A [`crate::spec::CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline of the [`crate::spec::Budget`] passed.
    Deadline,
    /// The playout budget was exhausted.
    PlayoutBudget,
    /// The node (expansion) budget was exhausted.
    NodeBudget,
}

/// Outcome of one [`crate::spec::SearchSpec`] run: the best result found,
/// full instrumentation, wall-clock time, and whether (and why) the run
/// was interrupted.
///
/// Invariant: replaying `sequence` from the root position reaches a
/// position whose score is `score` — including for interrupted runs,
/// which return their best-so-far line rather than a truncated
/// inconsistency. The one exception is a parallel strategy in
/// `first_move` mode, which (matching the paper's Tables I–II and the
/// legacy `RunMode::FirstMove`) reports the best *evaluation* score of
/// the single move it plays.
///
/// The replay invariant deliberately does **not** imply reproducibility:
/// a multi-worker tree-parallel report replays to its score like every
/// other report, but re-running its spec may legitimately produce a
/// different (equally valid) report — see
/// [`crate::spec::AlgorithmSpec::worker_count_deterministic`] for which
/// specs promise bit-identical reruns.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport<M> {
    /// Best score found.
    pub score: Score,
    /// Moves realising `score`, in play order from the root position.
    pub sequence: Vec<M>,
    /// Instrumentation counters (for parallel backends: the merged
    /// counters of every worker, i.e. `stats.work_units` is the total
    /// evaluation work, the quantity `ThreadReport::total_work` used to
    /// report).
    pub stats: SearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Leaf/client evaluation jobs executed by parallel backends
    /// (`0` for serial algorithms).
    pub client_jobs: u64,
    /// `Some` when the run stopped on a budget or cancellation; `None`
    /// when it ran to natural completion.
    pub interrupted: Option<Interruption>,
    /// The seed the run was performed with (echoed from the spec, so a
    /// persisted report is self-describing).
    pub seed: u64,
}

impl<M> SearchReport<M> {
    /// Total abstract work units — the cost-model quantity previously
    /// spread across `SearchStats::work_units` and
    /// `ThreadReport::total_work`.
    pub fn total_work(&self) -> u64 {
        self.stats.work_units
    }

    /// Converts into the legacy [`SearchResult`] triple (used by the
    /// deprecated shims and the engine's replica records).
    pub fn into_result(self) -> SearchResult<M> {
        SearchResult {
            score: self.score,
            sequence: self.sequence,
            stats: self.stats,
        }
    }
}

impl<M: Clone> SearchReport<M> {
    /// The legacy [`SearchResult`] view without consuming the report.
    pub fn result(&self) -> SearchResult<M> {
        SearchResult {
            score: self.score,
            sequence: self.sequence.clone(),
            stats: self.stats,
        }
    }
}

// Serde is hand-written because the vendored derive does not handle
// generic types; the representation pins `elapsed` to fractional
// milliseconds, matching the tables the bench harness persists.
impl<M: Serialize> Serialize for SearchReport<M> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("score".to_string(), self.score.to_value()),
            ("sequence".to_string(), self.sequence.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            (
                "elapsed_ms".to_string(),
                Value::F64(self.elapsed.as_secs_f64() * 1e3),
            ),
            ("client_jobs".to_string(), self.client_jobs.to_value()),
            ("interrupted".to_string(), self.interrupted.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }
}

impl<M: Deserialize> Deserialize for SearchReport<M> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| -> Result<&Value, Error> {
            v.get_field(name).ok_or_else(|| Error::missing_field(name))
        };
        let elapsed_ms = f64::from_value(field("elapsed_ms")?)?;
        Ok(SearchReport {
            score: Score::from_value(field("score")?)?,
            sequence: Vec::from_value(field("sequence")?)?,
            stats: SearchStats::from_value(field("stats")?)?,
            elapsed: Duration::from_secs_f64((elapsed_ms / 1e3).max(0.0)),
            client_jobs: u64::from_value(field("client_jobs")?)?,
            interrupted: Option::from_value(v.get_field("interrupted").unwrap_or(&Value::Null))?,
            seed: u64::from_value(field("seed")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SearchReport<u8> {
        SearchReport {
            score: 42,
            sequence: vec![1, 2, 1],
            stats: SearchStats {
                playouts: 3,
                playout_moves: 30,
                nested_moves: 3,
                expansions: 9,
                work_units: 42,
            },
            elapsed: Duration::from_micros(1500),
            client_jobs: 7,
            interrupted: Some(Interruption::Deadline),
            seed: 2009,
        }
    }

    #[test]
    fn serde_round_trip_preserves_every_field() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: SearchReport<u8> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.score, r.score);
        assert_eq!(back.sequence, r.sequence);
        assert_eq!(back.stats, r.stats);
        assert_eq!(back.client_jobs, r.client_jobs);
        assert_eq!(back.interrupted, r.interrupted);
        assert_eq!(back.seed, r.seed);
        assert!((back.elapsed.as_secs_f64() - r.elapsed.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn uninterrupted_round_trip_keeps_none() {
        let mut r = report();
        r.interrupted = None;
        let json = serde_json::to_string(&r).unwrap();
        let back: SearchReport<u8> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.interrupted, None);
    }

    #[test]
    fn report_converts_to_legacy_result() {
        let r = report();
        let res = r.result();
        assert_eq!(res.score, 42);
        assert_eq!(res.sequence, vec![1, 2, 1]);
        assert_eq!(res.stats, r.stats);
        assert_eq!(r.into_result(), res);
    }
}
