//! Deterministic pseudo-random number generation.
//!
//! The whole workspace funnels its randomness through this module so that
//! searches are exactly reproducible across backends (sequential, threaded
//! runtime, discrete-event simulator). Two classic generators are
//! implemented from their reference descriptions:
//!
//! * [`SplitMix64`] (Steele, Lea & Flood 2014) — used for seeding and for
//!   deriving independent per-job seeds from a root seed.
//! * [`Rng`], a xoshiro256★★ generator (Blackman & Vigna 2018) — the
//!   workhorse generator used inside playouts.
//!
//! Both are tested against output vectors produced by independent reference
//! implementations.

/// SplitMix64: a tiny, fast, well-distributed 64-bit generator.
///
/// Primarily used here as a *seed expander* (turning one `u64` into the
/// 256-bit state of [`Rng`]) and as the mixing function of
/// [`derive_seed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The finalising mixer of SplitMix64 (also known as `murmur3`-style
/// avalanche with David Stafford's "Mix13" constants).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed from a parent seed and a path of tags.
///
/// The parallel algorithms of the paper evaluate many positions
/// concurrently; giving each evaluation job the seed
/// `derive_seed(root_seed, &[step, move_index, …])` guarantees that the
/// threaded runtime and the discrete-event simulator perform *identical*
/// random playouts, which is what makes their search decisions comparable.
///
/// The construction is a simple hash chain over the SplitMix64 mixer with
/// distinct odd constants per position, which is enough to decorrelate
/// sibling streams for Monte-Carlo purposes (it is not a cryptographic
/// PRF and does not need to be).
#[inline]
pub fn derive_seed(parent: u64, tags: &[u64]) -> u64 {
    let mut acc = mix64(parent ^ 0xA076_1D64_78BD_642F);
    for (i, &t) in tags.iter().enumerate() {
        acc = mix64(
            acc ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((i as u64 + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB)),
        );
    }
    acc
}

/// FNV-1a over a byte stream — the workspace's one non-cryptographic
/// content hash (job signatures, position digests, test seeding all go
/// through here so the constants live in exactly one place).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    #[inline]
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        self.write_bytes(&word.to_le_bytes());
    }

    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// xoshiro256★★ — the default all-purpose generator of this workspace.
///
/// 256 bits of state, period `2^256 − 1`, excellent statistical quality,
/// and a few nanoseconds per output. State is seeded via [`SplitMix64`] as
/// recommended by the authors (an all-zero state is unreachable this way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64, per the xoshiro authors' recommendation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator from raw state words.
    ///
    /// At least one word must be non-zero; an all-zero state is the one
    /// fixed point of the transition function and would emit only zeros.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must not be all zero"
        );
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Returns a uniformly distributed value in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and needs no
    /// division in the common case.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "Rng::below(0) is meaningless");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut low = m as u64;
        if low < n {
            // Rejection zone: 2^64 mod n values at the bottom are biased.
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Spawns a statistically independent child generator.
    ///
    /// Equivalent to `Rng::seeded(derive_seed(self.next_u64(), &[tag]))`;
    /// useful when a search needs to hand streams to sub-searches without
    /// consuming an unpredictable amount of the parent stream.
    pub fn spawn(&mut self, tag: u64) -> Rng {
        Rng::seeded(derive_seed(self.next_u64(), &[tag]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for SplitMix64 with seed 1234567, from the public
    /// reference implementation (Steele/Lea/Flood; also used as the test
    /// vector in several independent ports).
    #[test]
    fn splitmix64_reference_vector_seed_1234567() {
        let mut sm = SplitMix64::new(1234567);
        let expect = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    /// Reference outputs for xoshiro256★★ with state [1,2,3,4], computed
    /// from the authors' reference C code.
    #[test]
    fn xoshiro_reference_vector_state_1234() {
        let mut r = Rng::from_state([1, 2, 3, 4]);
        let expect = [
            11520u64,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for &e in &expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn seeded_streams_reproducible_and_distinct() {
        let mut a = Rng::seeded(99);
        let mut b = Rng::seeded(99);
        let mut c = Rng::seeded(100);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_is_in_range_and_covers_all_residues() {
        let mut r = Rng::seeded(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut r = Rng::seeded(3);
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval_and_not_constant() {
        let mut r = Rng::seeded(11);
        let xs: Vec<f64> = (0..1000).map(|_| r.unit_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seeded(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle of 50 items should move something"
        );
    }

    #[test]
    fn derive_seed_depends_on_every_tag_and_position() {
        let base = derive_seed(42, &[1, 2, 3]);
        assert_ne!(base, derive_seed(42, &[1, 2, 4]));
        assert_ne!(base, derive_seed(42, &[3, 2, 1]));
        assert_ne!(base, derive_seed(43, &[1, 2, 3]));
        assert_ne!(base, derive_seed(42, &[1, 2]));
        // Stability: the derivation is part of the cross-backend contract,
        // so its exact value is pinned.
        assert_eq!(derive_seed(42, &[1, 2, 3]), base);
    }

    #[test]
    fn spawn_decorrelates_from_parent() {
        let mut parent = Rng::seeded(1);
        let mut child = parent.spawn(0);
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    #[should_panic(expected = "state must not be all zero")]
    fn all_zero_state_rejected() {
        let _ = Rng::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seeded(2);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
