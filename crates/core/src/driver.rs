//! Restart drivers: run searches repeatedly under a budget, keeping the
//! best result.
//!
//! The paper's record runs are exactly this loop — "running the algorithm
//! at level 4 on our cluster, we have discovered two new sequences of 80
//! moves" — repeated independent searches with fresh randomness, best
//! result kept. The driver abstracts the loop over any search function
//! with stopping criteria by iteration count, wall-clock budget, or a
//! target score.

use crate::game::{Game, Score};
use crate::metrics::monotonic_now;
use crate::rng::{derive_seed, Rng};
use crate::search::SearchResult;
use crate::stats::SearchStats;
use std::time::Duration;

/// Stopping criteria for [`drive`]; the first one reached stops the loop
/// (at least one search always runs).
///
/// Not to be confused with [`crate::spec::Budget`], which limits a
/// *single* search run; `DriveBudget` limits the restart loop around
/// many runs. (It was called `Budget` before the unified API landed.)
#[derive(Debug, Clone)]
pub struct DriveBudget {
    /// Maximum number of searches.
    pub max_runs: Option<u64>,
    /// Wall-clock budget.
    pub max_time: Option<Duration>,
    /// Stop as soon as a result reaches this score.
    pub target_score: Option<Score>,
}

impl DriveBudget {
    /// Exactly `n` runs.
    pub fn runs(n: u64) -> Self {
        Self {
            max_runs: Some(n),
            max_time: None,
            target_score: None,
        }
    }

    /// As many runs as fit in `d`.
    pub fn time(d: Duration) -> Self {
        Self {
            max_runs: None,
            max_time: Some(d),
            target_score: None,
        }
    }

    /// Chainable target score.
    pub fn until_score(mut self, s: Score) -> Self {
        self.target_score = Some(s);
        self
    }
}

/// Outcome of a driver session.
#[derive(Debug, Clone)]
pub struct DriveReport<M> {
    /// The best result found.
    pub best: SearchResult<M>,
    /// The seed of the run that produced it.
    pub best_seed: u64,
    /// Searches performed.
    pub runs: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Aggregated statistics over all runs.
    pub total_stats: SearchStats,
    /// Score of every run, in order (for convergence plots).
    pub history: Vec<Score>,
}

/// Runs `search` repeatedly with per-run seeds derived from `base_seed`,
/// keeping the best result.
///
/// The search function receives `(game, rng)`; use a closure to bind the
/// algorithm and its configuration:
///
/// ```
/// use nmcs_core::driver::{drive, DriveBudget};
/// use nmcs_core::{nested, NestedConfig, Game, Score, Rng};
///
/// #[derive(Clone)]
/// struct Coin(Vec<u8>);
/// impl Game for Coin {
///     type Move = u8;
///     fn legal_moves(&self, out: &mut Vec<u8>) {
///         if self.0.len() < 4 { out.extend_from_slice(&[0, 1]) }
///     }
///     fn play(&mut self, mv: &u8) { self.0.push(*mv) }
///     fn score(&self) -> Score { self.0.iter().map(|&b| b as Score).sum() }
///     fn moves_played(&self) -> usize { self.0.len() }
/// }
///
/// let report = drive(
///     &Coin(vec![]),
///     42,
///     &DriveBudget::runs(5),
///     |g, rng| nested(g, 1, &NestedConfig::paper(), rng),
/// );
/// assert_eq!(report.best.score, 4);
/// assert_eq!(report.runs, 5);
/// ```
pub fn drive<G, F>(
    game: &G,
    base_seed: u64,
    budget: &DriveBudget,
    mut search: F,
) -> DriveReport<G::Move>
where
    G: Game,
    F: FnMut(&G, &mut Rng) -> SearchResult<G::Move>,
{
    let started = monotonic_now();
    let mut best: Option<(SearchResult<G::Move>, u64)> = None;
    let mut total_stats = SearchStats::new();
    let mut history = Vec::new();
    let mut runs = 0u64;

    loop {
        let seed = derive_seed(base_seed, &[runs]);
        let mut rng = Rng::seeded(seed);
        let result = search(game, &mut rng);
        total_stats.merge(&result.stats);
        history.push(result.score);
        runs += 1;

        let better = best.as_ref().is_none_or(|(b, _)| result.score > b.score);
        if better {
            best = Some((result, seed));
        }

        let (best_result, _) = best.as_ref().expect("at least one run");
        let hit_target = budget.target_score.is_some_and(|t| best_result.score >= t);
        let out_of_runs = budget.max_runs.is_some_and(|m| runs >= m);
        let out_of_time = budget.max_time.is_some_and(|m| started.elapsed() >= m);
        if hit_target || out_of_runs || out_of_time {
            break;
        }
    }

    let (best, best_seed) = best.expect("at least one run");
    DriveReport {
        best,
        best_seed,
        runs,
        elapsed: started.elapsed(),
        total_stats,
        history,
    }
}

// The tests drive the restart loop through the deprecated `nested` shim
// on purpose (shim behaviour is part of the regression surface).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{nested, sample, NestedConfig};

    #[derive(Clone, Debug)]
    struct Ternary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Ternary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn game() -> Ternary {
        Ternary {
            depth: 5,
            taken: vec![],
        }
    }

    #[test]
    fn run_budget_is_respected_exactly() {
        let report = drive(&game(), 1, &DriveBudget::runs(7), sample);
        assert_eq!(report.runs, 7);
        assert_eq!(report.history.len(), 7);
        assert_eq!(report.total_stats.playouts, 7);
    }

    #[test]
    fn best_of_many_runs_dominates_each_run() {
        let report = drive(&game(), 2, &DriveBudget::runs(20), sample);
        let max_hist = *report.history.iter().max().unwrap();
        assert_eq!(report.best.score, max_hist);
    }

    #[test]
    fn target_score_stops_early() {
        // Level-2 NMCS solves the 3^5 game on the first try.
        let optimum = 242;
        let report = drive(
            &game(),
            3,
            &DriveBudget::runs(50).until_score(optimum),
            |g, rng| nested(g, 2, &NestedConfig::paper(), rng),
        );
        assert_eq!(report.best.score, optimum);
        assert!(report.runs < 50, "should stop well before 50 runs");
    }

    #[test]
    fn time_budget_runs_at_least_once() {
        let report = drive(&game(), 4, &DriveBudget::time(Duration::ZERO), sample);
        assert_eq!(report.runs, 1);
    }

    #[test]
    fn reproducible_best_seed() {
        let a = drive(&game(), 9, &DriveBudget::runs(10), sample);
        // Re-running just the winning seed reproduces the best result.
        let mut rng = Rng::seeded(a.best_seed);
        let again = sample(&game(), &mut rng);
        assert_eq!(again.score, a.best.score);
        assert_eq!(again.sequence, a.best.sequence);
    }

    #[test]
    fn stats_aggregate_across_runs() {
        let report = drive(&game(), 5, &DriveBudget::runs(4), |g, rng| {
            nested(g, 1, &NestedConfig::paper(), rng)
        });
        assert!(
            report.total_stats.playouts >= 4 * 5,
            "each run playouts out of 15 evals"
        );
        assert_eq!(report.history.len(), 4);
    }
}
