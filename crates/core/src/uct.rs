//! Single-agent UCT — the Monte-Carlo tree search the paper's related
//! work parallelises (§II cites four parallel-MCTS papers).
//!
//! NMCS and UCT are the two families of Monte-Carlo search for
//! single-agent optimisation; the paper argues for nested rollouts on
//! problems "that have a large state space and no good heuristics".
//! This module provides the classic comparator: a UCT tree over the
//! maximisation game, with single-player adaptations:
//!
//! * rewards are normalised running averages of playout scores, plus a
//!   max-score memory per node (single-player UCT à la Schadd et al.:
//!   tracking the best playout matters more than the mean when only the
//!   best line counts);
//! * the final answer replays the best sequence *found during any
//!   playout*, not the visit-count path, matching how the NMCS results
//!   are scored.
//!
//! Two execution shapes share the algorithm:
//!
//! * [`uct_with`] — the sequential tree, one iteration at a time;
//! * [`uct_tree_parallel`] — **tree-parallel** UCT in the style of the
//!   parallel-MCTS literature the paper cites (and WU-UCT, Liu et al.
//!   2020): one shared arena tree, workers descending concurrently with
//!   *virtual loss* steering them apart, visit/value statistics
//!   accumulated atomically so rollouts (the dominant cost) run outside
//!   any lock. A single-worker tree-parallel run is **bit-identical** to
//!   [`uct_with`] for the same seed; multi-worker runs are inherently
//!   schedule-dependent and promise only a replayable best line (the
//!   conformance tests assert both halves).

use crate::ctx::SearchCtx;
use crate::exec::pool::ExecutorPool;
use crate::game::{Game, Score, Undo};
use crate::rng::Rng;
use crate::search::{PlayoutScratch, SearchResult};
use crate::seeds::tree_worker_seed;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// UCT tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UctConfig {
    /// Playout budget (tree iterations).
    pub iterations: usize,
    /// Exploration constant for the normalised-mean term.
    pub exploration: f64,
    /// Mixing weight of the node's best-seen score against its mean
    /// (single-player modification; `0` = plain UCT).
    pub max_bias: f64,
}

impl Default for UctConfig {
    fn default() -> Self {
        Self {
            iterations: 1_000,
            exploration: 0.4,
            max_bias: 0.5,
        }
    }
}

struct Node<M> {
    /// Move that led here (None for the root).
    mv: Option<M>,
    children: Vec<usize>,
    /// Moves not yet expanded.
    unexpanded: Vec<M>,
    visits: u64,
    total: f64,
    best: Score,
    expanded: bool,
}

/// Runs UCT from `game` and returns the best playout found.
#[deprecated(note = "use SearchSpec::uct() — the unified search API")]
pub fn uct<G: Game>(game: &G, config: &UctConfig, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = uct_with(game, config, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Runs UCT from `game`, accounting into (and honouring the
/// budget/cancellation of) `ctx`.
///
/// The engine room behind `SearchSpec::uct()`; the deprecated [`uct`]
/// free function is a thin shim over it. The node budget
/// (`Budget::max_nodes`) counts tree expansions, so a budgeted UCT run
/// is bounded in memory as well as time.
pub fn uct_with<G: Game>(
    game: &G,
    config: &UctConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    let mut nodes: Vec<Node<G::Move>> = vec![Node {
        mv: None,
        children: Vec::new(),
        unexpanded: Vec::new(),
        visits: 0,
        total: 0.0,
        best: Score::MIN,
        expanded: false,
    }];

    let mut best_score = Score::MIN;
    let mut best_seq: Vec<G::Move> = Vec::new();
    // Running bounds for reward normalisation.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;

    let mut moves_buf: Vec<G::Move> = Vec::new();
    // On fast-path games every iteration walks this one shared position
    // with apply/undo instead of cloning the root; `undo_stack` holds the
    // tokens of the current descent and is fully unwound per iteration.
    let use_undo = game.supports_undo();
    let mut shared_pos = game.clone();
    let mut undo_stack: Vec<Undo<G>> = Vec::new();
    let mut playout: PlayoutScratch<G> = PlayoutScratch::new();
    for iteration in 0..config.iterations.max(1) {
        if iteration > 0 && ctx.should_stop() {
            break;
        }
        let mut cloned_pos: Option<G> = None;
        let pos: &mut G = if use_undo {
            debug_assert!(undo_stack.is_empty());
            &mut shared_pos
        } else {
            cloned_pos.insert(game.clone())
        };
        let mut path = vec![0usize];
        let mut seq: Vec<G::Move> = Vec::new();

        // ---- selection ----
        loop {
            let id = *path.last().expect("path non-empty");
            if !nodes[id].expanded {
                moves_buf.clear();
                pos.legal_moves(&mut moves_buf);
                nodes[id].unexpanded = moves_buf.clone();
                nodes[id].expanded = true;
                // Shuffle once so expansion order is unbiased.
                let n = nodes[id].unexpanded.len();
                for i in (1..n).rev() {
                    let j = rng.below(i + 1);
                    nodes[id].unexpanded.swap(i, j);
                }
            }
            // Expand one child if any remain.
            if let Some(mv) = nodes[id].unexpanded.pop() {
                if use_undo {
                    undo_stack.push(pos.apply(&mv));
                } else {
                    pos.play(&mv);
                }
                seq.push(mv.clone());
                ctx.record_expansion();
                let child = nodes.len();
                nodes.push(Node {
                    mv: Some(mv),
                    children: Vec::new(),
                    unexpanded: Vec::new(),
                    visits: 0,
                    total: 0.0,
                    best: Score::MIN,
                    expanded: false,
                });
                nodes[id].children.push(child);
                path.push(child);
                break;
            }
            if nodes[id].children.is_empty() {
                break; // terminal
            }
            // UCB over children with normalised means + max bias.
            let span = (hi - lo).max(1.0);
            let ln_n = ((nodes[id].visits.max(1)) as f64).ln();
            let mut best_child = nodes[id].children[0];
            let mut best_val = f64::NEG_INFINITY;
            for &c in &nodes[id].children {
                let n = &nodes[c];
                let mean = (n.total / n.visits.max(1) as f64 - lo) / span;
                let maxv = (n.best as f64 - lo) / span;
                let explore = config.exploration * (ln_n / n.visits.max(1) as f64).sqrt();
                let val = (1.0 - config.max_bias) * mean + config.max_bias * maxv + explore;
                if val > best_val {
                    best_val = val;
                    best_child = c;
                }
            }
            let mv = nodes[best_child].mv.clone().expect("non-root");
            if use_undo {
                undo_stack.push(pos.apply(&mv));
            } else {
                pos.play(&mv);
            }
            seq.push(mv);
            ctx.record_nested_move();
            path.push(best_child);
        }

        // ---- rollout ----
        let score = if use_undo {
            playout.run_undo(pos, rng, None, &mut seq, ctx)
        } else {
            crate::search::sample_ctx(pos, rng, None, &mut seq, ctx)
        };
        // Unwind the selection descent: the shared position returns to
        // the root for the next iteration.
        pos.undo_all(&mut undo_stack);
        let s = score as f64;
        lo = lo.min(s);
        hi = hi.max(s);

        // ---- backpropagation ----
        for &id in &path {
            let n = &mut nodes[id];
            n.visits += 1;
            n.total += s;
            n.best = n.best.max(score);
        }

        if score > best_score {
            best_score = score;
            best_seq = seq;
        }
    }

    (best_score, best_seq)
}

// ---------------------------------------------------------------------
// Tree-parallel UCT
// ---------------------------------------------------------------------

/// Per-node search statistics of the shared tree, updated atomically so
/// backpropagation never takes the structural lock.
struct TpStats {
    visits: AtomicU64,
    /// Accumulated playout scores, stored as `f64` bits (CAS-add).
    total_bits: AtomicU64,
    /// Best playout score seen through this node.
    best: AtomicI64,
    /// Outstanding virtual losses: descents that passed through this
    /// node and have not backpropagated yet. Each counts as one visit
    /// scoring the pessimistic bound, steering concurrent workers apart.
    vloss: AtomicU32,
}

impl TpStats {
    fn new() -> Self {
        TpStats {
            visits: AtomicU64::new(0),
            total_bits: AtomicU64::new(0f64.to_bits()),
            best: AtomicI64::new(Score::MIN),
            vloss: AtomicU32::new(0),
        }
    }
}

/// One node of the shared arena. Structure (children, expansion state)
/// is guarded by the arena mutex; `stats` is shared out to descents so
/// they can backpropagate lock-free.
struct TpNode<M> {
    mv: Option<M>,
    children: Vec<usize>,
    unexpanded: Vec<M>,
    expanded: bool,
    stats: Arc<TpStats>,
}

fn f64_cas_add(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + add).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn f64_cas_min(cell: &AtomicU64, candidate: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= candidate {
            return;
        }
        match cell.compare_exchange_weak(
            cur,
            candidate.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn f64_cas_max(cell: &AtomicU64, candidate: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= candidate {
            return;
        }
        match cell.compare_exchange_weak(
            cur,
            candidate.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Tree-parallel UCT: `threads` workers share one arena tree through
/// the process-wide [`ExecutorPool`], descending concurrently under
/// virtual loss. The engine room behind `SearchSpec::tree_parallel`.
///
/// Concurrency shape: selection and expansion (cheap pointer-chasing)
/// run under the arena mutex; rollouts — the dominant cost on every
/// domain we ship — run outside it; backpropagation goes straight to
/// the nodes' atomic counters. Virtual loss makes concurrent descents
/// diverge instead of piling onto one line (WU-UCT's observation), and
/// the formula reduces *exactly* to the sequential one when no losses
/// are outstanding — which is why `threads == 1` is bit-identical to
/// [`uct_with`] per seed (asserted by `tests/cross_backend.rs`).
///
/// Budget/cancellation polls hit every worker once per iteration plus
/// once per playout move (inside the rollout), sharing one atomic meter
/// through the forked [`SearchCtx`]s.
pub fn uct_tree_parallel<G>(
    game: &G,
    config: &UctConfig,
    threads: usize,
    seed: u64,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>)
where
    G: Game + Send + Sync,
    G::Move: Send + Sync,
{
    assert!(threads >= 1, "tree-parallel UCT needs at least one worker");
    let exec = ExecutorPool::shared();

    let tree: Mutex<Vec<TpNode<G::Move>>> = Mutex::new(vec![TpNode {
        mv: None,
        children: Vec::new(),
        unexpanded: Vec::new(),
        expanded: false,
        stats: Arc::new(TpStats::new()),
    }]);
    // Running reward-normalisation bounds, shared like the tree.
    let lo_bits = AtomicU64::new(f64::INFINITY.to_bits());
    let hi_bits = AtomicU64::new(f64::NEG_INFINITY.to_bits());
    let iters = AtomicUsize::new(0);
    let max_iters = config.iterations.max(1);
    let best: Mutex<(Score, Vec<G::Move>)> = Mutex::new((Score::MIN, Vec::new()));
    let outs: Mutex<Vec<SearchCtx>> = Mutex::new(Vec::with_capacity(threads));
    let parent: &SearchCtx = ctx;

    exec.run_batch(threads, &|slot| {
        let mut wctx = parent.fork();
        let mut rng = Rng::seeded(tree_worker_seed(seed, slot));
        let use_undo = game.supports_undo();
        let mut shared_pos = game.clone();
        let mut undo_stack: Vec<Undo<G>> = Vec::new();
        let mut playout: PlayoutScratch<G> = PlayoutScratch::new();
        let mut moves_buf: Vec<G::Move> = Vec::new();

        loop {
            // Iterations are claimed from a shared counter, so the total
            // playout budget matches the sequential run regardless of
            // how many workers share it.
            let iteration = iters.fetch_add(1, Ordering::Relaxed);
            if iteration >= max_iters {
                break;
            }
            if iteration > 0 && wctx.should_stop() {
                break;
            }

            let mut cloned_pos: Option<G> = None;
            let pos: &mut G = if use_undo {
                debug_assert!(undo_stack.is_empty());
                &mut shared_pos
            } else {
                cloned_pos.insert(game.clone())
            };
            let mut seq: Vec<G::Move> = Vec::new();
            let mut path: Vec<Arc<TpStats>> = Vec::new();

            // ---- selection + expansion (arena lock held; the costly
            // rollout below runs outside it) ----
            {
                let mut tree = tree.lock().unwrap_or_else(|e| e.into_inner());
                let mut id = 0usize;
                path.push(tree[0].stats.clone());
                loop {
                    if !tree[id].expanded {
                        moves_buf.clear();
                        pos.legal_moves(&mut moves_buf);
                        tree[id].unexpanded = moves_buf.clone();
                        tree[id].expanded = true;
                        // Shuffle once so expansion order is unbiased.
                        let n = tree[id].unexpanded.len();
                        for i in (1..n).rev() {
                            let j = rng.below(i + 1);
                            tree[id].unexpanded.swap(i, j);
                        }
                    }
                    // Expand one child if any remain.
                    if let Some(mv) = tree[id].unexpanded.pop() {
                        if use_undo {
                            undo_stack.push(pos.apply(&mv));
                        } else {
                            pos.play(&mv);
                        }
                        seq.push(mv.clone());
                        wctx.record_expansion();
                        let child_stats = Arc::new(TpStats::new());
                        child_stats.vloss.fetch_add(1, Ordering::Relaxed);
                        path.push(child_stats.clone());
                        let child = tree.len();
                        tree.push(TpNode {
                            mv: Some(mv),
                            children: Vec::new(),
                            unexpanded: Vec::new(),
                            expanded: false,
                            stats: child_stats,
                        });
                        tree[id].children.push(child);
                        break;
                    }
                    if tree[id].children.is_empty() {
                        break; // terminal
                    }
                    // UCB over children with normalised means + max bias.
                    // Each outstanding virtual loss counts as one visit
                    // scoring `lo` (the pessimistic bound); with none
                    // outstanding this is exactly the sequential formula.
                    let lo = f64::from_bits(lo_bits.load(Ordering::Relaxed));
                    let hi = f64::from_bits(hi_bits.load(Ordering::Relaxed));
                    let mut best_child = tree[id].children[0];
                    if !(lo.is_finite() && hi.is_finite()) {
                        // Warm-up: every completed rollout updates lo/hi,
                        // so non-finite bounds mean all of this node's
                        // children have their first rollout still in
                        // flight (only reachable with several workers —
                        // a single worker finishes each rollout before
                        // the next selection). The UCB terms would all be
                        // NaN here and NaN comparisons would pile every
                        // worker onto child 0, so spread descents by
                        // fewest outstanding virtual losses instead.
                        let mut best_vl = u32::MAX;
                        for &c in &tree[id].children {
                            let vl = tree[c].stats.vloss.load(Ordering::Relaxed);
                            if vl < best_vl {
                                best_vl = vl;
                                best_child = c;
                            }
                        }
                    } else {
                        let span = (hi - lo).max(1.0);
                        let parent_visits = tree[id].stats.visits.load(Ordering::Relaxed);
                        let ln_n = (parent_visits.max(1) as f64).ln();
                        let mut best_val = f64::NEG_INFINITY;
                        for &c in &tree[id].children {
                            let st = &tree[c].stats;
                            let visits = st.visits.load(Ordering::Relaxed);
                            let vl = st.vloss.load(Ordering::Relaxed) as u64;
                            let n_eff = (visits + vl).max(1) as f64;
                            let total = f64::from_bits(st.total_bits.load(Ordering::Relaxed))
                                + vl as f64 * lo;
                            // A child whose first visit is still in
                            // flight has no real best yet; rate it at
                            // the bound.
                            let best_seen = if visits == 0 {
                                lo
                            } else {
                                st.best.load(Ordering::Relaxed) as f64
                            };
                            let mean = (total / n_eff - lo) / span;
                            let maxv = (best_seen - lo) / span;
                            let explore = config.exploration * (ln_n / n_eff).sqrt();
                            let val =
                                (1.0 - config.max_bias) * mean + config.max_bias * maxv + explore;
                            if val > best_val {
                                best_val = val;
                                best_child = c;
                            }
                        }
                    }
                    let mv = tree[best_child].mv.clone().expect("non-root");
                    if use_undo {
                        undo_stack.push(pos.apply(&mv));
                    } else {
                        pos.play(&mv);
                    }
                    seq.push(mv);
                    wctx.record_nested_move();
                    tree[best_child].stats.vloss.fetch_add(1, Ordering::Relaxed);
                    path.push(tree[best_child].stats.clone());
                    id = best_child;
                }
            }

            // ---- rollout (fully parallel) ----
            let score = if use_undo {
                playout.run_undo(pos, &mut rng, None, &mut seq, &mut wctx)
            } else {
                crate::search::sample_ctx(pos, &mut rng, None, &mut seq, &mut wctx)
            };
            // Unwind the selection descent: the shared position returns
            // to the root for the next iteration.
            pos.undo_all(&mut undo_stack);
            let s = score as f64;
            f64_cas_min(&lo_bits, s);
            f64_cas_max(&hi_bits, s);

            // ---- backpropagation (lock-free) ----
            for (depth, st) in path.iter().enumerate() {
                st.visits.fetch_add(1, Ordering::Relaxed);
                f64_cas_add(&st.total_bits, s);
                st.best.fetch_max(score, Ordering::Relaxed);
                if depth > 0 {
                    st.vloss.fetch_sub(1, Ordering::Relaxed);
                }
            }

            let mut best = best.lock().unwrap_or_else(|e| e.into_inner());
            if score > best.0 {
                *best = (score, seq);
            }
        }

        outs.lock().unwrap_or_else(|e| e.into_inner()).push(wctx);
    });

    for wctx in outs.into_inner().unwrap_or_else(|e| e.into_inner()) {
        ctx.absorb(wctx);
    }
    best.into_inner().unwrap_or_else(|e| e.into_inner())
}

// The unit tests keep exercising the deprecated free functions: they are
// the regression net for the shims (new-API coverage lives in `spec.rs`).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::flat_monte_carlo;

    /// Depth-`d` ternary game, unique optimum all-2s.
    #[derive(Clone, Debug)]
    struct Ternary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Ternary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn optimum(d: usize) -> Score {
        (0..d).fold(0, |acc, _| acc * 3 + 2)
    }

    /// `Ternary` with the scratch-state fast path, for path-equality tests.
    #[derive(Clone, Debug)]
    struct FastTernary(Ternary);

    impl Game for FastTernary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            self.0.legal_moves(out);
        }
        fn play(&mut self, mv: &u8) {
            self.0.play(mv);
        }
        fn score(&self) -> Score {
            self.0.score()
        }
        fn moves_played(&self) -> usize {
            self.0.moves_played()
        }
        fn supports_undo(&self) -> bool {
            true
        }
        fn apply(&mut self, mv: &u8) -> Undo<Self> {
            self.0.play(mv);
            Undo::internal()
        }
        fn undo(&mut self, token: Undo<Self>) {
            debug_assert!(token.is_internal());
            self.0.taken.pop().expect("undo without apply");
        }
    }

    #[test]
    fn uct_undo_path_is_bit_identical_to_clone_path() {
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        for seed in 0..10 {
            let slow = uct(
                &Ternary {
                    depth: 5,
                    taken: vec![],
                },
                &cfg,
                &mut Rng::seeded(seed),
            );
            let fast = uct(
                &FastTernary(Ternary {
                    depth: 5,
                    taken: vec![],
                }),
                &cfg,
                &mut Rng::seeded(seed),
            );
            assert_eq!(fast.score, slow.score, "seed {seed}");
            assert_eq!(fast.sequence, slow.sequence, "seed {seed}");
            assert_eq!(fast.stats, slow.stats, "seed {seed}");
        }
    }

    #[test]
    fn uct_solves_small_games() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        let r = uct(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, optimum(4));
    }

    #[test]
    fn uct_sequences_replay_to_their_score() {
        for seed in 0..10 {
            let g = Ternary {
                depth: 5,
                taken: vec![],
            };
            let cfg = UctConfig {
                iterations: 200,
                ..Default::default()
            };
            let r = uct(&g, &cfg, &mut Rng::seeded(seed));
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert_eq!(r.sequence.len(), 5);
        }
    }

    #[test]
    fn uct_beats_flat_mc_at_equal_budget() {
        let g = Ternary {
            depth: 6,
            taken: vec![],
        };
        let budget = 300;
        let trials = 20;
        let mut uct_total = 0;
        let mut flat_total = 0;
        for seed in 0..trials {
            let cfg = UctConfig {
                iterations: budget,
                ..Default::default()
            };
            uct_total += uct(&g, &cfg, &mut Rng::seeded(seed)).score;
            flat_total += flat_monte_carlo(&g, budget, &mut Rng::seeded(seed)).score;
        }
        assert!(
            uct_total > flat_total,
            "UCT ({uct_total}) should beat flat MC ({flat_total}) over {trials} trials"
        );
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let g = Ternary {
            depth: 5,
            taken: vec![],
        };
        let score_at = |iters: usize| {
            (0..10)
                .map(|s| {
                    let cfg = UctConfig {
                        iterations: iters,
                        ..Default::default()
                    };
                    uct(&g, &cfg, &mut Rng::seeded(s)).score
                })
                .sum::<Score>()
        };
        assert!(score_at(1_000) >= score_at(30));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 100,
            ..Default::default()
        };
        let a = uct(&g, &cfg, &mut Rng::seeded(9));
        let b = uct(&g, &cfg, &mut Rng::seeded(9));
        assert_eq!(a.score, b.score);
        assert_eq!(a.sequence, b.sequence);
    }

    #[test]
    fn single_worker_tree_parallel_is_bit_identical_to_sequential() {
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        for seed in 0..10 {
            let g = Ternary {
                depth: 5,
                taken: vec![],
            };
            let mut seq_ctx = SearchCtx::unbounded();
            let sequential = uct_with(&g, &cfg, &mut Rng::seeded(seed), &mut seq_ctx);
            let mut tp_ctx = SearchCtx::unbounded();
            let tree = uct_tree_parallel(&g, &cfg, 1, seed, &mut tp_ctx);
            assert_eq!(tree, sequential, "seed {seed}");
            assert_eq!(tp_ctx.stats(), seq_ctx.stats(), "seed {seed}");
        }
    }

    #[test]
    fn single_worker_tree_parallel_matches_on_fast_path_games_too() {
        let cfg = UctConfig {
            iterations: 200,
            ..Default::default()
        };
        for seed in 0..5 {
            let g = FastTernary(Ternary {
                depth: 5,
                taken: vec![],
            });
            let mut seq_ctx = SearchCtx::unbounded();
            let sequential = uct_with(&g, &cfg, &mut Rng::seeded(seed), &mut seq_ctx);
            let mut tp_ctx = SearchCtx::unbounded();
            let tree = uct_tree_parallel(&g, &cfg, 1, seed, &mut tp_ctx);
            assert_eq!(tree, sequential, "seed {seed}");
        }
    }

    #[test]
    fn multi_worker_tree_parallel_replays_and_honours_the_iteration_total() {
        let g = Ternary {
            depth: 6,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 400,
            ..Default::default()
        };
        for workers in [2usize, 4] {
            let mut ctx = SearchCtx::unbounded();
            let (score, seq) = uct_tree_parallel(&g, &cfg, workers, 9, &mut ctx);
            let mut replay = g.clone();
            for mv in &seq {
                replay.play(mv);
            }
            assert_eq!(replay.score(), score, "{workers} workers");
            // The iteration counter is shared: total playouts equal the
            // configured budget no matter how many workers split it.
            assert_eq!(ctx.stats().playouts, 400, "{workers} workers");
        }
    }

    #[test]
    fn multi_worker_tree_parallel_still_solves_small_games() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        let mut ctx = SearchCtx::unbounded();
        let (score, _) = uct_tree_parallel(&g, &cfg, 4, 1, &mut ctx);
        assert_eq!(score, optimum(4));
    }

    #[test]
    fn tree_parallel_terminal_root_is_handled() {
        let g = Ternary {
            depth: 0,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 10,
            ..Default::default()
        };
        let mut ctx = SearchCtx::unbounded();
        let (score, seq) = uct_tree_parallel(&g, &cfg, 3, 1, &mut ctx);
        assert_eq!(score, 0);
        assert!(seq.is_empty());
    }

    #[test]
    fn terminal_root_is_handled() {
        let g = Ternary {
            depth: 0,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 10,
            ..Default::default()
        };
        let r = uct(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, 0);
        assert!(r.sequence.is_empty());
    }
}
