//! Single-agent UCT — the Monte-Carlo tree search the paper's related
//! work parallelises (§II cites four parallel-MCTS papers).
//!
//! NMCS and UCT are the two families of Monte-Carlo search for
//! single-agent optimisation; the paper argues for nested rollouts on
//! problems "that have a large state space and no good heuristics".
//! This module provides the classic comparator: a UCT tree over the
//! maximisation game, with single-player adaptations:
//!
//! * rewards are normalised running averages of playout scores, plus a
//!   max-score memory per node (single-player UCT à la Schadd et al.:
//!   tracking the best playout matters more than the mean when only the
//!   best line counts);
//! * the final answer replays the best sequence *found during any
//!   playout*, not the visit-count path, matching how the NMCS results
//!   are scored.

use crate::ctx::SearchCtx;
use crate::game::{Game, Score, Undo};
use crate::rng::Rng;
use crate::search::{PlayoutScratch, SearchResult};
use serde::{Deserialize, Serialize};

/// UCT tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UctConfig {
    /// Playout budget (tree iterations).
    pub iterations: usize,
    /// Exploration constant for the normalised-mean term.
    pub exploration: f64,
    /// Mixing weight of the node's best-seen score against its mean
    /// (single-player modification; `0` = plain UCT).
    pub max_bias: f64,
}

impl Default for UctConfig {
    fn default() -> Self {
        Self {
            iterations: 1_000,
            exploration: 0.4,
            max_bias: 0.5,
        }
    }
}

struct Node<M> {
    /// Move that led here (None for the root).
    mv: Option<M>,
    children: Vec<usize>,
    /// Moves not yet expanded.
    unexpanded: Vec<M>,
    visits: u64,
    total: f64,
    best: Score,
    expanded: bool,
}

/// Runs UCT from `game` and returns the best playout found.
#[deprecated(note = "use SearchSpec::uct() — the unified search API")]
pub fn uct<G: Game>(game: &G, config: &UctConfig, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = uct_with(game, config, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Runs UCT from `game`, accounting into (and honouring the
/// budget/cancellation of) `ctx`.
///
/// The engine room behind `SearchSpec::uct()`; the deprecated [`uct`]
/// free function is a thin shim over it. The node budget
/// (`Budget::max_nodes`) counts tree expansions, so a budgeted UCT run
/// is bounded in memory as well as time.
pub fn uct_with<G: Game>(
    game: &G,
    config: &UctConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    let mut nodes: Vec<Node<G::Move>> = vec![Node {
        mv: None,
        children: Vec::new(),
        unexpanded: Vec::new(),
        visits: 0,
        total: 0.0,
        best: Score::MIN,
        expanded: false,
    }];

    let mut best_score = Score::MIN;
    let mut best_seq: Vec<G::Move> = Vec::new();
    // Running bounds for reward normalisation.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;

    let mut moves_buf: Vec<G::Move> = Vec::new();
    // On fast-path games every iteration walks this one shared position
    // with apply/undo instead of cloning the root; `undo_stack` holds the
    // tokens of the current descent and is fully unwound per iteration.
    let use_undo = game.supports_undo();
    let mut shared_pos = game.clone();
    let mut undo_stack: Vec<Undo<G>> = Vec::new();
    let mut playout: PlayoutScratch<G> = PlayoutScratch::new();
    for iteration in 0..config.iterations.max(1) {
        if iteration > 0 && ctx.should_stop() {
            break;
        }
        let mut cloned_pos: Option<G> = None;
        let pos: &mut G = if use_undo {
            debug_assert!(undo_stack.is_empty());
            &mut shared_pos
        } else {
            cloned_pos.insert(game.clone())
        };
        let mut path = vec![0usize];
        let mut seq: Vec<G::Move> = Vec::new();

        // ---- selection ----
        loop {
            let id = *path.last().expect("path non-empty");
            if !nodes[id].expanded {
                moves_buf.clear();
                pos.legal_moves(&mut moves_buf);
                nodes[id].unexpanded = moves_buf.clone();
                nodes[id].expanded = true;
                // Shuffle once so expansion order is unbiased.
                let n = nodes[id].unexpanded.len();
                for i in (1..n).rev() {
                    let j = rng.below(i + 1);
                    nodes[id].unexpanded.swap(i, j);
                }
            }
            // Expand one child if any remain.
            if let Some(mv) = nodes[id].unexpanded.pop() {
                if use_undo {
                    undo_stack.push(pos.apply(&mv));
                } else {
                    pos.play(&mv);
                }
                seq.push(mv.clone());
                ctx.record_expansion();
                let child = nodes.len();
                nodes.push(Node {
                    mv: Some(mv),
                    children: Vec::new(),
                    unexpanded: Vec::new(),
                    visits: 0,
                    total: 0.0,
                    best: Score::MIN,
                    expanded: false,
                });
                nodes[id].children.push(child);
                path.push(child);
                break;
            }
            if nodes[id].children.is_empty() {
                break; // terminal
            }
            // UCB over children with normalised means + max bias.
            let span = (hi - lo).max(1.0);
            let ln_n = ((nodes[id].visits.max(1)) as f64).ln();
            let mut best_child = nodes[id].children[0];
            let mut best_val = f64::NEG_INFINITY;
            for &c in &nodes[id].children {
                let n = &nodes[c];
                let mean = (n.total / n.visits.max(1) as f64 - lo) / span;
                let maxv = (n.best as f64 - lo) / span;
                let explore = config.exploration * (ln_n / n.visits.max(1) as f64).sqrt();
                let val = (1.0 - config.max_bias) * mean + config.max_bias * maxv + explore;
                if val > best_val {
                    best_val = val;
                    best_child = c;
                }
            }
            let mv = nodes[best_child].mv.clone().expect("non-root");
            if use_undo {
                undo_stack.push(pos.apply(&mv));
            } else {
                pos.play(&mv);
            }
            seq.push(mv);
            ctx.record_nested_move();
            path.push(best_child);
        }

        // ---- rollout ----
        let score = if use_undo {
            playout.run_undo(pos, rng, None, &mut seq, ctx)
        } else {
            crate::search::sample_ctx(pos, rng, None, &mut seq, ctx)
        };
        // Unwind the selection descent: the shared position returns to
        // the root for the next iteration.
        pos.undo_all(&mut undo_stack);
        let s = score as f64;
        lo = lo.min(s);
        hi = hi.max(s);

        // ---- backpropagation ----
        for &id in &path {
            let n = &mut nodes[id];
            n.visits += 1;
            n.total += s;
            n.best = n.best.max(score);
        }

        if score > best_score {
            best_score = score;
            best_seq = seq;
        }
    }

    (best_score, best_seq)
}

// The unit tests keep exercising the deprecated free functions: they are
// the regression net for the shims (new-API coverage lives in `spec.rs`).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::flat_monte_carlo;

    /// Depth-`d` ternary game, unique optimum all-2s.
    #[derive(Clone, Debug)]
    struct Ternary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Ternary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn optimum(d: usize) -> Score {
        (0..d).fold(0, |acc, _| acc * 3 + 2)
    }

    /// `Ternary` with the scratch-state fast path, for path-equality tests.
    #[derive(Clone, Debug)]
    struct FastTernary(Ternary);

    impl Game for FastTernary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            self.0.legal_moves(out);
        }
        fn play(&mut self, mv: &u8) {
            self.0.play(mv);
        }
        fn score(&self) -> Score {
            self.0.score()
        }
        fn moves_played(&self) -> usize {
            self.0.moves_played()
        }
        fn supports_undo(&self) -> bool {
            true
        }
        fn apply(&mut self, mv: &u8) -> Undo<Self> {
            self.0.play(mv);
            Undo::internal()
        }
        fn undo(&mut self, token: Undo<Self>) {
            debug_assert!(token.is_internal());
            self.0.taken.pop().expect("undo without apply");
        }
    }

    #[test]
    fn uct_undo_path_is_bit_identical_to_clone_path() {
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        for seed in 0..10 {
            let slow = uct(
                &Ternary {
                    depth: 5,
                    taken: vec![],
                },
                &cfg,
                &mut Rng::seeded(seed),
            );
            let fast = uct(
                &FastTernary(Ternary {
                    depth: 5,
                    taken: vec![],
                }),
                &cfg,
                &mut Rng::seeded(seed),
            );
            assert_eq!(fast.score, slow.score, "seed {seed}");
            assert_eq!(fast.sequence, slow.sequence, "seed {seed}");
            assert_eq!(fast.stats, slow.stats, "seed {seed}");
        }
    }

    #[test]
    fn uct_solves_small_games() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        let r = uct(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, optimum(4));
    }

    #[test]
    fn uct_sequences_replay_to_their_score() {
        for seed in 0..10 {
            let g = Ternary {
                depth: 5,
                taken: vec![],
            };
            let cfg = UctConfig {
                iterations: 200,
                ..Default::default()
            };
            let r = uct(&g, &cfg, &mut Rng::seeded(seed));
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert_eq!(r.sequence.len(), 5);
        }
    }

    #[test]
    fn uct_beats_flat_mc_at_equal_budget() {
        let g = Ternary {
            depth: 6,
            taken: vec![],
        };
        let budget = 300;
        let trials = 20;
        let mut uct_total = 0;
        let mut flat_total = 0;
        for seed in 0..trials {
            let cfg = UctConfig {
                iterations: budget,
                ..Default::default()
            };
            uct_total += uct(&g, &cfg, &mut Rng::seeded(seed)).score;
            flat_total += flat_monte_carlo(&g, budget, &mut Rng::seeded(seed)).score;
        }
        assert!(
            uct_total > flat_total,
            "UCT ({uct_total}) should beat flat MC ({flat_total}) over {trials} trials"
        );
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let g = Ternary {
            depth: 5,
            taken: vec![],
        };
        let score_at = |iters: usize| {
            (0..10)
                .map(|s| {
                    let cfg = UctConfig {
                        iterations: iters,
                        ..Default::default()
                    };
                    uct(&g, &cfg, &mut Rng::seeded(s)).score
                })
                .sum::<Score>()
        };
        assert!(score_at(1_000) >= score_at(30));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 100,
            ..Default::default()
        };
        let a = uct(&g, &cfg, &mut Rng::seeded(9));
        let b = uct(&g, &cfg, &mut Rng::seeded(9));
        assert_eq!(a.score, b.score);
        assert_eq!(a.sequence, b.sequence);
    }

    #[test]
    fn terminal_root_is_handled() {
        let g = Ternary {
            depth: 0,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 10,
            ..Default::default()
        };
        let r = uct(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, 0);
        assert!(r.sequence.is_empty());
    }
}
