//! Single-agent UCT — the Monte-Carlo tree search the paper's related
//! work parallelises (§II cites four parallel-MCTS papers).
//!
//! NMCS and UCT are the two families of Monte-Carlo search for
//! single-agent optimisation; the paper argues for nested rollouts on
//! problems "that have a large state space and no good heuristics".
//! This module provides the classic comparator: a UCT tree over the
//! maximisation game, with single-player adaptations:
//!
//! * rewards are normalised running averages of playout scores, plus a
//!   max-score memory per node (single-player UCT à la Schadd et al.:
//!   tracking the best playout matters more than the mean when only the
//!   best line counts);
//! * the final answer replays the best sequence *found during any
//!   playout*, not the visit-count path, matching how the NMCS results
//!   are scored.
//!
//! Two execution shapes share the algorithm:
//!
//! * [`uct_with`] — the sequential tree, one iteration at a time;
//! * [`uct_tree_parallel`] — **tree-parallel** UCT in the style of the
//!   parallel-MCTS literature the paper cites: one shared tree, workers
//!   descending concurrently, visit/value statistics accumulated
//!   atomically so rollouts (the dominant cost) run outside any lock.
//!   Three orthogonal knobs ([`TreeParallelOpts`]) control how it
//!   scales:
//!
//!   * [`LockStrategy`] — `Global` serialises every descent behind one
//!     structure mutex (the original arena behaviour, kept as the
//!     measured contention baseline); `Sharded` gives every node its
//!     own lock, so concurrent descents only contend when they touch
//!     the *same node at the same instant*.
//!   * [`StatsMode`] — `VirtualLoss` counts each in-flight descent as a
//!     pessimistic visit; `WuUct` implements the unobserved-sample
//!     statistics of *"Watch the Unobserved: a simple approach to
//!     parallelizing Monte Carlo tree search"* (Liu et al. 2020), where
//!     incomplete visits widen only the exploration term and never
//!     distort the observed mean.
//!   * `leaf_batch` — with a batch of `B ≥ 2`, each worker collects `B`
//!     pending descents and hands their rollouts to the
//!     [`ExecutorPool`] as one slab (per-slot scratch, iteration-keyed
//!     rollout seeds), overlapping tree walks with leaf evaluation.
//!
//!   A single-worker, unbatched tree-parallel run is **bit-identical**
//!   to [`uct_with`] for the same seed under *any* lock strategy and
//!   stats mode — both formulas reduce exactly to the sequential one
//!   when nothing is in flight. Multi-worker runs are inherently
//!   schedule-dependent and promise only a replayable best line (the
//!   conformance tests assert both halves).

use crate::ctx::SearchCtx;
use crate::exec::pool::ExecutorPool;
use crate::game::{Game, Score, Undo};
use crate::rng::Rng;
use crate::search::{PlayoutScratch, SearchResult};
use crate::seeds::{tree_rollout_seed, tree_worker_seed};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// UCT tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UctConfig {
    /// Playout budget (tree iterations).
    pub iterations: usize,
    /// Exploration constant for the normalised-mean term.
    pub exploration: f64,
    /// Mixing weight of the node's best-seen score against its mean
    /// (single-player modification; `0` = plain UCT).
    pub max_bias: f64,
}

impl Default for UctConfig {
    fn default() -> Self {
        Self {
            iterations: 1_000,
            exploration: 0.4,
            max_bias: 0.5,
        }
    }
}

struct Node<M> {
    /// Move that led here (None for the root).
    mv: Option<M>,
    children: Vec<usize>,
    /// Moves not yet expanded.
    unexpanded: Vec<M>,
    visits: u64,
    total: f64,
    best: Score,
    expanded: bool,
}

/// Runs UCT from `game` and returns the best playout found.
#[deprecated(note = "use SearchSpec::uct() — the unified search API")]
pub fn uct<G: Game>(game: &G, config: &UctConfig, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = uct_with(game, config, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Runs UCT from `game`, accounting into (and honouring the
/// budget/cancellation of) `ctx`.
///
/// The engine room behind `SearchSpec::uct()`; the deprecated [`uct`]
/// free function is a thin shim over it. The node budget
/// (`Budget::max_nodes`) counts tree expansions, so a budgeted UCT run
/// is bounded in memory as well as time.
pub fn uct_with<G: Game>(
    game: &G,
    config: &UctConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    let mut nodes: Vec<Node<G::Move>> = vec![Node {
        mv: None,
        children: Vec::new(),
        unexpanded: Vec::new(),
        visits: 0,
        total: 0.0,
        best: Score::MIN,
        expanded: false,
    }];

    let mut best_score = Score::MIN;
    let mut best_seq: Vec<G::Move> = Vec::new();
    // Running bounds for reward normalisation.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;

    let mut moves_buf: Vec<G::Move> = Vec::new();
    // On fast-path games every iteration walks this one shared position
    // with apply/undo instead of cloning the root; `undo_stack` holds the
    // tokens of the current descent and is fully unwound per iteration.
    let use_undo = game.supports_undo();
    let mut shared_pos = game.clone();
    let mut undo_stack: Vec<Undo<G>> = Vec::new();
    let mut playout: PlayoutScratch<G> = PlayoutScratch::new();
    for iteration in 0..config.iterations.max(1) {
        if iteration > 0 && ctx.should_stop() {
            break;
        }
        let mut cloned_pos: Option<G> = None;
        let pos: &mut G = if use_undo {
            debug_assert!(undo_stack.is_empty());
            &mut shared_pos
        } else {
            cloned_pos.insert(game.clone())
        };
        let mut path = vec![0usize];
        let mut seq: Vec<G::Move> = Vec::new();

        // ---- selection ----
        loop {
            let id = *path.last().expect("path non-empty");
            if !nodes[id].expanded {
                moves_buf.clear();
                pos.legal_moves(&mut moves_buf);
                nodes[id].unexpanded = moves_buf.clone();
                nodes[id].expanded = true;
                // Shuffle once so expansion order is unbiased.
                let n = nodes[id].unexpanded.len();
                for i in (1..n).rev() {
                    let j = rng.below(i + 1);
                    nodes[id].unexpanded.swap(i, j);
                }
            }
            // Expand one child if any remain.
            if let Some(mv) = nodes[id].unexpanded.pop() {
                if use_undo {
                    undo_stack.push(pos.apply(&mv));
                } else {
                    pos.play(&mv);
                }
                seq.push(mv.clone());
                ctx.record_expansion();
                let child = nodes.len();
                nodes.push(Node {
                    mv: Some(mv),
                    children: Vec::new(),
                    unexpanded: Vec::new(),
                    visits: 0,
                    total: 0.0,
                    best: Score::MIN,
                    expanded: false,
                });
                nodes[id].children.push(child);
                path.push(child);
                break;
            }
            if nodes[id].children.is_empty() {
                break; // terminal
            }
            // UCB over children with normalised means + max bias.
            let span = (hi - lo).max(1.0);
            let ln_n = ((nodes[id].visits.max(1)) as f64).ln();
            let mut best_child = nodes[id].children[0];
            let mut best_val = f64::NEG_INFINITY;
            for &c in &nodes[id].children {
                let n = &nodes[c];
                let mean = (n.total / n.visits.max(1) as f64 - lo) / span;
                let maxv = (n.best as f64 - lo) / span;
                let explore = config.exploration * (ln_n / n.visits.max(1) as f64).sqrt();
                let val = (1.0 - config.max_bias) * mean + config.max_bias * maxv + explore;
                if val > best_val {
                    best_val = val;
                    best_child = c;
                }
            }
            let mv = nodes[best_child].mv.clone().expect("non-root");
            if use_undo {
                undo_stack.push(pos.apply(&mv));
            } else {
                pos.play(&mv);
            }
            seq.push(mv);
            ctx.record_nested_move();
            path.push(best_child);
        }

        // ---- rollout ----
        let score = if use_undo {
            playout.run_undo(pos, rng, None, &mut seq, ctx)
        } else {
            crate::search::sample_ctx(pos, rng, None, &mut seq, ctx)
        };
        // Unwind the selection descent: the shared position returns to
        // the root for the next iteration.
        pos.undo_all(&mut undo_stack);
        let s = score as f64;
        lo = lo.min(s);
        hi = hi.max(s);

        // ---- backpropagation ----
        for &id in &path {
            let n = &mut nodes[id];
            n.visits += 1;
            n.total += s;
            n.best = n.best.max(score);
        }

        if score > best_score {
            best_score = score;
            best_seq = seq;
        }
    }

    (best_score, best_seq)
}

// ---------------------------------------------------------------------
// Tree-parallel UCT
// ---------------------------------------------------------------------

/// How concurrent descents lock the shared tree's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LockStrategy {
    /// One mutex serialises every selection + expansion (the original
    /// single-arena-mutex behaviour, kept as the measured contention
    /// baseline for `tables --tree`).
    Global,
    /// Every node carries its own lock; descents contend only when they
    /// touch the same node at the same instant, so selection scales
    /// with tree breadth instead of serialising on one mutex.
    #[default]
    Sharded,
}

impl LockStrategy {
    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            LockStrategy::Global => "global",
            LockStrategy::Sharded => "sharded",
        }
    }
}

/// How in-flight (started, not yet backpropagated) descents are folded
/// into the selection statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StatsMode {
    /// Plain virtual loss: each in-flight descent counts as one visit
    /// scoring the pessimistic bound, dragging both the mean and the
    /// exploration term down.
    VirtualLoss,
    /// WU-UCT (Liu et al. 2020): in-flight descents widen only the
    /// exploration denominators (`N + O` in both UCB terms) while the
    /// exploitation mean stays the mean of *completed* rollouts — the
    /// "watch the unobserved" correction that avoids virtual loss's
    /// systematic pessimism.
    #[default]
    WuUct,
}

impl StatsMode {
    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            StatsMode::VirtualLoss => "vloss",
            StatsMode::WuUct => "wu-uct",
        }
    }
}

/// Execution-shape knobs of [`uct_tree_parallel`] (the algorithmic
/// tunables stay in [`UctConfig`]). Mirrored field-for-field on
/// `AlgorithmSpec::TreeParallel` so every knob serde-round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParallelOpts {
    /// Concurrent tree workers (≥ 1).
    pub threads: usize,
    /// How descents lock the shared structure.
    pub lock: LockStrategy,
    /// How in-flight descents bias selection.
    pub stats: StatsMode,
    /// `0` or `1`: each worker runs its rollouts inline. `B ≥ 2`: each
    /// worker collects `B` pending descents and evaluates their
    /// rollouts as one [`ExecutorPool`] slab (WU-UCT's master/worker
    /// shape), overlapping tree walks with leaf evaluation.
    pub leaf_batch: usize,
    /// With `leaf_batch ≥ 2`: hand a filled slab to the pool only when
    /// its idle-workers gauge shows a free helper, otherwise drain the
    /// same slots on the collecting worker. Placement-only — slab
    /// rollouts are seeded by iteration index, so results are
    /// bit-identical either way.
    pub leaf_batch_dynamic: bool,
}

impl TreeParallelOpts {
    /// Default knobs (sharded locks, WU-UCT stats, inline rollouts) at
    /// the given width.
    pub fn new(threads: usize) -> Self {
        TreeParallelOpts {
            threads,
            lock: LockStrategy::default(),
            stats: StatsMode::default(),
            leaf_batch: 0,
            leaf_batch_dynamic: false,
        }
    }
}

impl Default for TreeParallelOpts {
    fn default() -> Self {
        TreeParallelOpts::new(1)
    }
}

/// Per-node search statistics of the shared tree, updated atomically so
/// backpropagation never takes any structural lock.
struct TpStats {
    visits: AtomicU64,
    /// Accumulated playout scores, stored as `f64` bits (CAS-add).
    total_bits: AtomicU64,
    /// Best playout score seen through this node.
    best: AtomicI64,
    /// In-flight descents: passed through this node, not yet
    /// backpropagated. [`StatsMode`] decides how selection reads it.
    inflight: AtomicU32,
}

impl TpStats {
    fn new() -> Self {
        TpStats {
            visits: AtomicU64::new(0),
            total_bits: AtomicU64::new(0f64.to_bits()),
            best: AtomicI64::new(Score::MIN),
            inflight: AtomicU32::new(0),
        }
    }
}

/// One node of the shared tree. `mv` and `stats` are immutable /
/// atomic and readable without any lock; the mutable structure
/// (children, expansion state) sits behind the node's own mutex, which
/// is what makes [`LockStrategy::Sharded`] contention-free for
/// descents that diverge.
///
/// `stats` is an `Arc` so a [`TransTable`] can hand the *same*
/// statistics cell to tree nodes reached by transposed move orders:
/// the tree stays a tree (edge `mv` labels and best-sequence replay
/// stay exact) while visit/value/best data is shared per position.
struct TpNode<M> {
    mv: Option<M>,
    stats: Arc<TpStats>,
    body: Mutex<TpBody<M>>,
}

struct TpBody<M> {
    children: Vec<Arc<TpNode<M>>>,
    unexpanded: Vec<M>,
    expanded: bool,
}

impl<M> TpBody<M> {
    fn empty() -> Self {
        TpBody {
            // nmcs-lint: allow(hot-path) reason="node construction at expansion: the UCT tree grows by design, bounded by the node budget, not per playout step"
            children: Vec::new(),
            // nmcs-lint: allow(hot-path) reason="node construction at expansion: the UCT tree grows by design, bounded by the node budget, not per playout step"
            unexpanded: Vec::new(),
            expanded: false,
        }
    }
}

impl<M> TpNode<M> {
    fn new(mv: Option<M>) -> Self {
        TpNode::with_stats(mv, Arc::new(TpStats::new()))
    }

    fn with_stats(mv: Option<M>, stats: Arc<TpStats>) -> Self {
        TpNode {
            mv,
            stats,
            body: Mutex::new(TpBody::empty()),
        }
    }

    fn lock_body(&self) -> parking_lot::MutexGuard<'_, TpBody<M>> {
        // nmcs-lint: allow(hot-path) reason="per-node parking_lot mutex is the tree-parallel sharing design (PR 5); playouts proper never hold it"
        self.body.lock()
    }
}

/// Set-associativity of the [`TransTable`] (slots scanned per lookup).
const TT_WAYS: usize = 8;

/// Default memory bound of a spec-level `tree_reuse` transposition
/// table (sessions size theirs through the engine's session budget).
pub(crate) const DEFAULT_TT_BYTES: usize = 8 * 1024 * 1024;

/// One occupied transposition slot: a position key, its shared
/// statistics cell, and the access tick driving LRU-within-set
/// eviction.
struct TtSlot {
    key: u64,
    stats: Arc<TpStats>,
    touch: u64,
}

/// A bounded transposition table keyed by [`Game::state_hash`], so
/// tree nodes reached by distinct move orders share one statistics
/// cell.
///
/// Set-associative with [`TT_WAYS`] ways: a lookup scans one set of
/// eight slots, an insert fills an empty way or evicts the
/// least-recently-touched one. The slot vector is allocated once at
/// construction, so memory is bounded *by construction* — churning a
/// million distinct states through the table recycles slots instead of
/// growing, and [`TransTable::bytes`] plateaus at the configured
/// bound. Everything is O(ways) per intern with no rehashing, and a
/// single-worker run interns in a deterministic order, keeping
/// reuse-on searches run-to-run deterministic at width 1.
///
/// Evicted statistics cells stay alive while tree nodes still hold
/// their `Arc`; eviction only stops *future* transpositions from
/// joining them.
pub(crate) struct TransTable {
    slots: Mutex<Vec<Option<TtSlot>>>,
    /// Set index mask (`set_count - 1`; set count is a power of two).
    set_mask: u64,
    /// Monotone access clock for LRU-within-set.
    tick: AtomicU64,
    occupied: AtomicUsize,
    hits: AtomicU64,
    evictions: AtomicU64,
}

/// Approximate heap cost of one occupied slot (inline slot + the
/// `Arc<TpStats>` allocation it owns).
fn tt_entry_bytes() -> usize {
    std::mem::size_of::<Option<TtSlot>>() + std::mem::size_of::<TpStats>()
}

impl TransTable {
    /// A table sized to stay within `bytes_bound` once full.
    pub(crate) fn new(bytes_bound: usize) -> Self {
        let capacity = (bytes_bound / tt_entry_bytes()).max(TT_WAYS);
        let mut sets = 1usize;
        while sets * 2 * TT_WAYS <= capacity {
            sets *= 2;
        }
        let mut slots = Vec::new();
        slots.resize_with(sets * TT_WAYS, || None);
        TransTable {
            slots: Mutex::new(slots),
            set_mask: sets as u64 - 1,
            tick: AtomicU64::new(0),
            occupied: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the statistics cell for `key`, creating (and possibly
    /// evicting) as needed. Called once per tree expansion.
    fn intern(&self, key: u64) -> Arc<TpStats> {
        // nmcs-lint: allow(hot-path) reason="one table lock per tree expansion (not per playout step), held for an O(ways) scan; same budget-bounded cadence as node construction"
        let mut slots = self.slots.lock();
        let set = (key & self.set_mask) as usize * TT_WAYS;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut empty = None;
        let mut victim = set;
        let mut victim_touch = u64::MAX;
        for i in set..set + TT_WAYS {
            match &slots[i] {
                Some(s) if s.key == key => {
                    let stats = s.stats.clone();
                    slots[i].as_mut().expect("just matched").touch = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return stats;
                }
                Some(s) => {
                    if s.touch < victim_touch {
                        victim_touch = s.touch;
                        victim = i;
                    }
                }
                None => {
                    if empty.is_none() {
                        empty = Some(i);
                    }
                }
            }
        }
        let stats = Arc::new(TpStats::new());
        let slot = TtSlot {
            key,
            stats: stats.clone(),
            touch: tick,
        };
        match empty {
            Some(i) => {
                self.occupied.fetch_add(1, Ordering::Relaxed);
                slots[i] = Some(slot);
            }
            None => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                slots[victim] = Some(slot);
            }
        }
        stats
    }

    /// Approximate bytes held: the fixed slot backing plus one stats
    /// allocation per occupied slot. Monotone up to the bound, then
    /// flat — eviction recycles slots instead of growing.
    pub(crate) fn bytes(&self) -> usize {
        let backing =
            ((self.set_mask as usize + 1) * TT_WAYS) * std::mem::size_of::<Option<TtSlot>>();
        backing + self.occupied.load(Ordering::Relaxed) * std::mem::size_of::<TpStats>()
    }

    /// (hits, evictions) counters, for tables and gauges.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

fn f64_cas_add(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + add).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn f64_cas_min(cell: &AtomicU64, candidate: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= candidate {
            return;
        }
        match cell.compare_exchange_weak(
            cur,
            candidate.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn f64_cas_max(cell: &AtomicU64, candidate: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= candidate {
            return;
        }
        match cell.compare_exchange_weak(
            cur,
            candidate.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The shared search tree plus the selection knobs every descent needs.
///
/// Crate-visible (not public API): `SearchSession` holds one across
/// steps, re-rooting it on each committed move so the next search
/// starts warm.
pub(crate) struct TpTree<M> {
    root: Arc<TpNode<M>>,
    /// Taken for the whole selection + expansion of one descent in
    /// [`LockStrategy::Global`] mode; untouched in `Sharded` mode.
    structure: Mutex<()>,
    /// Running reward-normalisation bounds, shared by every worker.
    lo_bits: AtomicU64,
    hi_bits: AtomicU64,
    exploration: f64,
    max_bias: f64,
    lock: LockStrategy,
    stats: StatsMode,
    /// When present, expansions intern their position's `state_hash`
    /// here and share the statistics cell with transposed lines. Absent
    /// on the reuse-off path, which therefore stays byte-for-byte the
    /// pre-table behaviour.
    table: Option<TransTable>,
}

/// Per-worker descent buffers, reused across iterations so the hot
/// loop stays allocation-free after warm-up.
struct DescentScratch<G: Game> {
    use_undo: bool,
    undo_stack: Vec<Undo<G>>,
    moves: Vec<G::Move>,
    /// Moves of the current descent + rollout (the candidate best line).
    seq: Vec<G::Move>,
    /// Nodes of the current descent, root first.
    path: Vec<Arc<TpNode<G::Move>>>,
}

impl<G: Game> DescentScratch<G> {
    fn new(game: &G) -> Self {
        DescentScratch {
            use_undo: game.supports_undo(),
            undo_stack: Vec::new(),
            moves: Vec::new(),
            seq: Vec::new(),
            path: Vec::new(),
        }
    }
}

/// One pending rollout of a batched-leaf slab: the leaf position a
/// descent reached, the moves that led there, and the nodes to back the
/// result up through.
struct PendingLeaf<G: Game> {
    pos: G,
    seq: Vec<G::Move>,
    path: Vec<Arc<TpNode<G::Move>>>,
    iteration: usize,
    score: Score,
}

/// Per-slot state of a worker's slab: the pending rollout plus reusable
/// scratch (legal-move buffer, forked budget context). Slots are locked
/// uncontended — exactly one pool thread runs each slot of a batch.
struct SlabSlot<G: Game> {
    pending: Option<PendingLeaf<G>>,
    moves: Vec<G::Move>,
    ctx: Option<SearchCtx>,
}

impl<G: Game> SlabSlot<G> {
    fn new() -> Self {
        SlabSlot {
            pending: None,
            moves: Vec::new(),
            ctx: None,
        }
    }
}

impl<M: Clone> TpTree<M> {
    pub(crate) fn new(config: &UctConfig, lock: LockStrategy, stats: StatsMode) -> Self {
        TpTree {
            root: Arc::new(TpNode::new(None)),
            structure: Mutex::new(()),
            lo_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            hi_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exploration: config.exploration,
            max_bias: config.max_bias,
            lock,
            stats,
            table: None,
        }
    }

    /// Like [`TpTree::new`] but with a transposition table bounded to
    /// `table_bytes` — the reuse-on tree.
    pub(crate) fn with_table(
        config: &UctConfig,
        lock: LockStrategy,
        stats: StatsMode,
        table_bytes: usize,
    ) -> Self {
        let mut tree = TpTree::new(config, lock, stats);
        tree.table = Some(TransTable::new(table_bytes));
        tree
    }

    /// The transposition table, if this is a reuse-on tree.
    pub(crate) fn table(&self) -> Option<&TransTable> {
        self.table.as_ref()
    }

    /// Re-roots the tree on the child reached by `mv`, keeping that
    /// subtree (statistics included) and the shared normalisation
    /// bounds; sibling subtrees are dropped. A move that was never
    /// expanded re-roots onto a fresh cold node. Must not run
    /// concurrently with a search on this tree (sessions serialise
    /// steps behind their own lock).
    pub(crate) fn reroot(&mut self, mv: &M)
    where
        M: PartialEq,
    {
        let taken = {
            let mut body = self.root.lock_body();
            body.children
                .iter()
                .position(|c| c.mv.as_ref() == Some(mv))
                .map(|i| body.children.swap_remove(i))
        };
        self.root = match taken {
            Some(child) => {
                // The subtree body moves wholesale onto the new root;
                // `mv: None` keeps root semantics (WU-UCT's in-flight
                // exclusion keys off `mv.is_some()`).
                let inner = std::mem::replace(&mut *child.lock_body(), TpBody::empty());
                Arc::new(TpNode {
                    mv: None,
                    stats: child.stats.clone(),
                    body: Mutex::new(inner),
                })
            }
            None => Arc::new(TpNode::new(None)),
        };
    }

    /// Approximate heap bytes of the live tree (a between-steps walk —
    /// re-rooting drops subtrees, so this is recomputed, not counted)
    /// plus the transposition table's bound-plateaued footprint.
    pub(crate) fn approx_bytes(&self) -> usize {
        fn walk<M>(node: &TpNode<M>) -> usize {
            let body = node.lock_body();
            let own = std::mem::size_of::<TpNode<M>>()
                + std::mem::size_of::<TpStats>()
                + body.unexpanded.capacity() * std::mem::size_of::<M>()
                + body.children.capacity() * std::mem::size_of::<Arc<TpNode<M>>>();
            own + body.children.iter().map(|c| walk(c)).sum::<usize>()
        }
        walk(&self.root) + self.table.as_ref().map_or(0, |t| t.bytes())
    }

    /// UCB over `children` with normalised means + max bias, folding
    /// in-flight descents in per the [`StatsMode`]. With nothing in
    /// flight both modes compute exactly the sequential formula — the
    /// keystone of the single-worker bit-identity contract.
    fn select_child(&self, parent: &TpNode<M>, children: &[Arc<TpNode<M>>]) -> Arc<TpNode<M>> {
        let lo = f64::from_bits(self.lo_bits.load(Ordering::Relaxed));
        let hi = f64::from_bits(self.hi_bits.load(Ordering::Relaxed));
        if !(lo.is_finite() && hi.is_finite()) {
            // Warm-up: every completed rollout updates lo/hi, so
            // non-finite bounds mean all of this node's children have
            // their first rollout still in flight (only reachable with
            // several workers — a single worker finishes each rollout
            // before the next selection). The UCB terms would all be
            // NaN here and NaN comparisons would pile every worker onto
            // child 0, so spread descents by fewest in-flight instead.
            let mut best = &children[0];
            let mut best_fl = u32::MAX;
            for c in children {
                let fl = c.stats.inflight.load(Ordering::Relaxed);
                if fl < best_fl {
                    best_fl = fl;
                    best = c;
                }
            }
            return best.clone();
        }
        let span = (hi - lo).max(1.0);
        let parent_visits = parent.stats.visits.load(Ordering::Relaxed);
        let ln_n = match self.stats {
            StatsMode::VirtualLoss => (parent_visits.max(1) as f64).ln(),
            StatsMode::WuUct => {
                // WU-UCT's parent term is ln(N + O). The selecting
                // descent itself already counts 1 in this (non-root)
                // node's in-flight tally; exclude it so the count is
                // "other unobserved samples" — and so one worker
                // reduces exactly to the sequential ln(N).
                let own = u64::from(parent.mv.is_some());
                let others =
                    (parent.stats.inflight.load(Ordering::Relaxed) as u64).saturating_sub(own);
                ((parent_visits + others).max(1) as f64).ln()
            }
        };
        let mut best_val = f64::NEG_INFINITY;
        let mut best = &children[0];
        for c in children {
            let st = &c.stats;
            let visits = st.visits.load(Ordering::Relaxed);
            let fl = st.inflight.load(Ordering::Relaxed) as u64;
            let (mean_raw, n_explore) = match self.stats {
                StatsMode::VirtualLoss => {
                    // Each in-flight descent counts as one visit scoring
                    // `lo` (the pessimistic bound).
                    let n_eff = (visits + fl).max(1) as f64;
                    let total =
                        f64::from_bits(st.total_bits.load(Ordering::Relaxed)) + fl as f64 * lo;
                    (total / n_eff, n_eff)
                }
                StatsMode::WuUct => {
                    // Mean of *completed* rollouts only; in-flight
                    // descents widen the exploration denominator.
                    let total = f64::from_bits(st.total_bits.load(Ordering::Relaxed));
                    let mean = if visits == 0 {
                        lo
                    } else {
                        total / visits as f64
                    };
                    (mean, (visits + fl).max(1) as f64)
                }
            };
            // A child whose first visit is still in flight has no real
            // best yet; rate it at the bound.
            let best_seen = if visits == 0 {
                lo
            } else {
                st.best.load(Ordering::Relaxed) as f64
            };
            let mean = (mean_raw - lo) / span;
            let maxv = (best_seen - lo) / span;
            let explore = self.exploration * (ln_n / n_explore).sqrt();
            let val = (1.0 - self.max_bias) * mean + self.max_bias * maxv + explore;
            if val > best_val {
                best_val = val;
                best = c;
            }
        }
        best.clone()
    }

    /// Walks one selection + expansion descent from the root, applying
    /// moves to `pos` and filling `scr.seq` / `scr.path`. Marks every
    /// non-root node on the path in-flight; the matching decrement
    /// happens in [`tp_backprop`]. Rollouts always run *after* this
    /// returns, outside every structural lock.
    // nmcs-lint: hot-entry
    fn descend<G>(
        &self,
        pos: &mut G,
        scr: &mut DescentScratch<G>,
        rng: &mut Rng,
        wctx: &mut SearchCtx,
    ) where
        G: Game<Move = M>,
    {
        let _structure_guard = matches!(self.lock, LockStrategy::Global)
            // nmcs-lint: allow(hot-path) reason="opt-in Global lock strategy (the paper's single-mutex baseline) measured against the sharded default; not on the default path"
            .then(|| self.structure.lock());
        scr.path.push(self.root.clone());
        let mut node = self.root.clone();
        loop {
            let next: Arc<TpNode<M>>;
            let expanded_child: bool;
            {
                let mut body = node.lock_body();
                if !body.expanded {
                    scr.moves.clear();
                    pos.legal_moves(&mut scr.moves);
                    body.unexpanded = scr.moves.clone();
                    body.expanded = true;
                    // Shuffle once so expansion order is unbiased.
                    let n = body.unexpanded.len();
                    for i in (1..n).rev() {
                        let j = rng.below(i + 1);
                        body.unexpanded.swap(i, j);
                    }
                }
                // Expand one child if any remain.
                if let Some(mv) = body.unexpanded.pop() {
                    if let Some(table) = self.table.as_ref() {
                        // Transposition path: the key is the *child*
                        // position's hash, so the move is applied before
                        // the node exists. The popped move is exclusively
                        // ours, so the parent lock can drop first —
                        // apply/state_hash/intern all run outside node
                        // locks (`intern` takes only the table's own).
                        drop(body);
                        if scr.use_undo {
                            scr.undo_stack.push(pos.apply(&mv));
                        } else {
                            pos.play(&mv);
                        }
                        let stats = table.intern(pos.state_hash());
                        let child = Arc::new(TpNode::with_stats(Some(mv.clone()), stats));
                        // In-flight before publication, same invariant as
                        // the in-lock mark below.
                        child.stats.inflight.fetch_add(1, Ordering::Relaxed);
                        node.lock_body().children.push(child.clone());
                        scr.seq.push(mv);
                        wctx.record_expansion();
                        scr.path.push(child);
                        return;
                    }
                    let child = Arc::new(TpNode::new(Some(mv)));
                    body.children.push(child.clone());
                    next = child;
                    expanded_child = true;
                } else if body.children.is_empty() {
                    return; // terminal leaf
                } else {
                    next = self.select_child(&node, &body.children);
                    expanded_child = false;
                }
                // Mark the step in flight *before* releasing the parent
                // lock: a concurrent selector at this node must never
                // see a published child (or a just-chosen sibling) with
                // a stale zero in-flight count — in VirtualLoss mode an
                // unmarked fresh child would score a raw 0.0 mean
                // instead of the pessimistic bound, dog-piling descents
                // onto the very line the marker exists to spread.
                next.stats.inflight.fetch_add(1, Ordering::Relaxed);
            }
            let mv = next.mv.clone().expect("non-root");
            if scr.use_undo {
                scr.undo_stack.push(pos.apply(&mv));
            } else {
                pos.play(&mv);
            }
            scr.seq.push(mv);
            if expanded_child {
                wctx.record_expansion();
            } else {
                wctx.record_nested_move();
            }
            scr.path.push(next.clone());
            if expanded_child {
                return;
            }
            node = next;
        }
    }

    /// Folds one completed rollout into the shared bounds and the
    /// path's atomic statistics, releasing the in-flight markers.
    fn backprop(&self, path: &[Arc<TpNode<M>>], score: Score) {
        let s = score as f64;
        f64_cas_min(&self.lo_bits, s);
        f64_cas_max(&self.hi_bits, s);
        for (depth, node) in path.iter().enumerate() {
            let st = &node.stats;
            st.visits.fetch_add(1, Ordering::Relaxed);
            f64_cas_add(&st.total_bits, s);
            st.best.fetch_max(score, Ordering::Relaxed);
            if depth > 0 {
                st.inflight.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Shared state of one tree-parallel run (tree + budget counters +
/// incumbent), with the two worker-loop shapes as methods.
struct TpRun<'a, G: Game> {
    game: &'a G,
    tree: &'a TpTree<G::Move>,
    /// Iterations are claimed from this shared counter, so the total
    /// playout budget matches the sequential run at any width.
    iters: AtomicUsize,
    max_iters: usize,
    best: Mutex<(Score, Vec<G::Move>)>,
    seed: u64,
    leaf_batch: usize,
    leaf_batch_dynamic: bool,
}

impl<G> TpRun<'_, G>
where
    G: Game + Send + Sync,
    G::Move: Send + Sync,
{
    fn offer_best(&self, score: Score, seq: &mut Vec<G::Move>) {
        let mut best = self.best.lock();
        if score > best.0 {
            best.0 = score;
            best.1 = std::mem::take(seq);
        }
    }

    /// The unbatched worker loop: descend, roll out inline, back up —
    /// one iteration at a time, rollouts outside every lock.
    fn worker_inline(&self, slot: usize, wctx: &mut SearchCtx) {
        let mut rng = Rng::seeded(tree_worker_seed(self.seed, slot));
        let mut shared_pos = self.game.clone();
        let mut scr = DescentScratch::new(self.game);
        let mut playout: PlayoutScratch<G> = PlayoutScratch::new();

        loop {
            let iteration = self.iters.fetch_add(1, Ordering::Relaxed);
            if iteration >= self.max_iters {
                break;
            }
            if iteration > 0 && wctx.should_stop() {
                break;
            }

            let mut cloned_pos: Option<G> = None;
            let pos: &mut G = if scr.use_undo {
                debug_assert!(scr.undo_stack.is_empty());
                &mut shared_pos
            } else {
                cloned_pos.insert(self.game.clone())
            };
            scr.seq.clear();
            scr.path.clear();

            // ---- selection + expansion ----
            self.tree.descend(pos, &mut scr, &mut rng, wctx);

            // ---- rollout (outside every lock) ----
            let score = if scr.use_undo {
                playout.run_undo(pos, &mut rng, None, &mut scr.seq, wctx)
            } else {
                crate::search::sample_ctx(pos, &mut rng, None, &mut scr.seq, wctx)
            };
            // Unwind the selection descent: the shared position returns
            // to the root for the next iteration.
            pos.undo_all(&mut scr.undo_stack);

            // ---- backpropagation (lock-free) ----
            self.tree.backprop(&scr.path, score);
            self.offer_best(score, &mut scr.seq);
        }
    }

    /// The batched-leaf worker loop (WU-UCT's master/worker shape): the
    /// worker collects `leaf_batch` pending descents — each marking its
    /// path in-flight so later descents steer away — then evaluates all
    /// their rollouts as one [`ExecutorPool`] slab and backs the slab
    /// up in slot order.
    ///
    /// Playouts are counted against the budget meter when the descent
    /// is *claimed* (every claimed descent is evaluated), which bounds
    /// budget overshoot by the worker count rather than by
    /// `threads × leaf_batch` in-flight rollouts.
    fn worker_batched(&self, exec: &ExecutorPool, slot: usize, wctx: &mut SearchCtx) {
        let mut rng = Rng::seeded(tree_worker_seed(self.seed, slot));
        let mut shared_pos = self.game.clone();
        let mut scr = DescentScratch::new(self.game);
        let slots: Vec<Mutex<SlabSlot<G>>> = (0..self.leaf_batch)
            .map(|_| Mutex::new(SlabSlot::new()))
            .collect();
        let mut done = false;

        while !done {
            // ---- collect up to `leaf_batch` pending descents ----
            let mut filled = 0usize;
            while filled < self.leaf_batch {
                let iteration = self.iters.fetch_add(1, Ordering::Relaxed);
                if iteration >= self.max_iters {
                    done = true;
                    break;
                }
                if iteration > 0 && wctx.should_stop() {
                    done = true;
                    break;
                }
                let mut cloned_pos: Option<G> = None;
                let pos: &mut G = if scr.use_undo {
                    debug_assert!(scr.undo_stack.is_empty());
                    &mut shared_pos
                } else {
                    cloned_pos.insert(self.game.clone())
                };
                scr.seq.clear();
                scr.path.clear();
                self.tree.descend(pos, &mut scr, &mut rng, wctx);
                // Count the playout at claim time (see the method docs).
                wctx.record_playout_end();
                let leaf = if scr.use_undo {
                    let snapshot = pos.clone();
                    pos.undo_all(&mut scr.undo_stack);
                    snapshot
                } else {
                    cloned_pos.take().expect("clone-path position")
                };
                let mut slab = slots[filled].lock();
                slab.pending = Some(PendingLeaf {
                    pos: leaf,
                    seq: std::mem::take(&mut scr.seq),
                    path: std::mem::take(&mut scr.path),
                    iteration,
                    score: Score::MIN,
                });
                slab.ctx = Some(wctx.fork());
                drop(slab);
                filled += 1;
            }
            if filled == 0 {
                break;
            }

            // ---- evaluate the slab (idle pool workers steal slots;
            // saturated pools degrade to inline draining) ----
            if filled == 1 {
                run_slab_slot(&slots[0], self.seed);
            } else if self.leaf_batch_dynamic && exec.metrics().idle_workers.get() <= 0 {
                // Dynamic gate: nobody is parked, so a pool hand-off
                // would only pay submission overhead — drain the same
                // slots here instead. Each slot's rollout is seeded by
                // its iteration index, so this placement choice cannot
                // change any result.
                for slab in &slots[..filled] {
                    run_slab_slot(slab, self.seed);
                }
            } else {
                exec.run_batch(filled, &|i| run_slab_slot(&slots[i], self.seed));
            }

            // ---- back up in slot order ----
            for slab in &slots[..filled] {
                let mut slab = slab.lock();
                let mut pending = slab.pending.take().expect("slab slot was filled");
                if let Some(slot_ctx) = slab.ctx.take() {
                    wctx.absorb(slot_ctx);
                }
                drop(slab);
                self.tree.backprop(&pending.path, pending.score);
                self.offer_best(pending.score, &mut pending.seq);
            }
        }
    }
}

/// Evaluates one slab slot: a random rollout from the pending leaf,
/// seeded by the *iteration index* (not the executing thread), so slab
/// results are placement-independent. Does **not** record a playout end
/// — the claiming worker already counted it.
fn run_slab_slot<G>(slot: &Mutex<SlabSlot<G>>, root_seed: u64)
where
    G: Game,
{
    let mut slab = slot.lock();
    let slab = &mut *slab;
    let Some(pending) = slab.pending.as_mut() else {
        return;
    };
    let ctx = slab.ctx.as_mut().expect("slot ctx set with pending");
    let mut rng = Rng::seeded(tree_rollout_seed(root_seed, pending.iteration as u64));
    loop {
        if ctx.should_stop() {
            break;
        }
        pending.pos.legal_moves_into(&mut slab.moves);
        if slab.moves.is_empty() {
            break;
        }
        let mv = slab.moves.swap_remove(rng.below(slab.moves.len()));
        pending.pos.play(&mv);
        pending.seq.push(mv);
        ctx.record_playout_move();
    }
    pending.score = pending.pos.score();
}

/// Tree-parallel UCT: `opts.threads` workers share one tree through the
/// process-wide [`ExecutorPool`], descending concurrently. The engine
/// room behind `SearchSpec::tree_parallel`.
///
/// Concurrency shape: selection and expansion (cheap pointer-chasing)
/// run under per-node locks ([`LockStrategy::Sharded`]) or one
/// structure mutex ([`LockStrategy::Global`], the measured baseline);
/// rollouts — the dominant cost on every domain we ship — run outside
/// every lock, inline or as [`ExecutorPool`] slabs (`opts.leaf_batch`);
/// backpropagation goes straight to the nodes' atomic counters.
/// In-flight descents steer workers apart per the [`StatsMode`], and
/// both formulas reduce *exactly* to the sequential one when nothing is
/// in flight — which is why `threads == 1` (unbatched) is bit-identical
/// to [`uct_with`] per seed (asserted by `tests/cross_backend.rs`).
///
/// Budget/cancellation polls hit every worker once per iteration plus
/// once per playout move (inside the rollout), sharing one atomic meter
/// through the forked [`SearchCtx`]s; tree-parallel overshoots a
/// playout cap by at most one in-flight rollout per worker
/// (`tests/budget_props.rs` proves the bound at every width and batch).
pub fn uct_tree_parallel<G>(
    game: &G,
    config: &UctConfig,
    opts: &TreeParallelOpts,
    seed: u64,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>)
where
    G: Game + Send + Sync,
    G::Move: Send + Sync,
{
    let tree = TpTree::new(config, opts.lock, opts.stats);
    uct_tree_parallel_on(game, &tree, config, opts, seed, ctx)
}

/// Tree-parallel UCT on an *existing* tree: the warm-start entry point
/// behind [`uct_tree_parallel`] (which passes a fresh tree) and
/// `SearchSession` (which keeps one across steps, re-rooted per
/// committed move). The tree's selection knobs were fixed at its
/// construction and must match `config`.
pub(crate) fn uct_tree_parallel_on<G>(
    game: &G,
    tree: &TpTree<G::Move>,
    config: &UctConfig,
    opts: &TreeParallelOpts,
    seed: u64,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>)
where
    G: Game + Send + Sync,
    G::Move: Send + Sync,
{
    assert!(
        opts.threads >= 1,
        "tree-parallel UCT needs at least one worker"
    );
    debug_assert_eq!(tree.exploration.to_bits(), config.exploration.to_bits());
    debug_assert_eq!(tree.max_bias.to_bits(), config.max_bias.to_bits());
    let exec = ExecutorPool::shared();
    let run = TpRun {
        game,
        tree,
        iters: AtomicUsize::new(0),
        max_iters: config.iterations.max(1),
        best: Mutex::new((Score::MIN, Vec::new())),
        seed,
        leaf_batch: opts.leaf_batch,
        leaf_batch_dynamic: opts.leaf_batch_dynamic,
    };
    let outs: Mutex<Vec<SearchCtx>> = Mutex::new(Vec::with_capacity(opts.threads));
    let parent: &SearchCtx = ctx;

    exec.run_batch(opts.threads, &|slot| {
        let mut wctx = parent.fork();
        if run.leaf_batch >= 2 {
            run.worker_batched(exec, slot, &mut wctx);
        } else {
            run.worker_inline(slot, &mut wctx);
        }
        outs.lock().push(wctx);
    });

    for wctx in outs.into_inner() {
        ctx.absorb(wctx);
    }
    run.best.into_inner()
}

// The unit tests keep exercising the deprecated free functions: they are
// the regression net for the shims (new-API coverage lives in `spec.rs`).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::flat_monte_carlo;

    /// Depth-`d` ternary game, unique optimum all-2s.
    #[derive(Clone, Debug)]
    struct Ternary {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for Ternary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn optimum(d: usize) -> Score {
        (0..d).fold(0, |acc, _| acc * 3 + 2)
    }

    /// `Ternary` with the scratch-state fast path, for path-equality tests.
    #[derive(Clone, Debug)]
    struct FastTernary(Ternary);

    impl Game for FastTernary {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            self.0.legal_moves(out);
        }
        fn play(&mut self, mv: &u8) {
            self.0.play(mv);
        }
        fn score(&self) -> Score {
            self.0.score()
        }
        fn moves_played(&self) -> usize {
            self.0.moves_played()
        }
        fn supports_undo(&self) -> bool {
            true
        }
        fn apply(&mut self, mv: &u8) -> Undo<Self> {
            self.0.play(mv);
            Undo::internal()
        }
        fn undo(&mut self, token: Undo<Self>) {
            debug_assert!(token.is_internal());
            self.0.taken.pop().expect("undo without apply");
        }
    }

    #[test]
    fn uct_undo_path_is_bit_identical_to_clone_path() {
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        for seed in 0..10 {
            let slow = uct(
                &Ternary {
                    depth: 5,
                    taken: vec![],
                },
                &cfg,
                &mut Rng::seeded(seed),
            );
            let fast = uct(
                &FastTernary(Ternary {
                    depth: 5,
                    taken: vec![],
                }),
                &cfg,
                &mut Rng::seeded(seed),
            );
            assert_eq!(fast.score, slow.score, "seed {seed}");
            assert_eq!(fast.sequence, slow.sequence, "seed {seed}");
            assert_eq!(fast.stats, slow.stats, "seed {seed}");
        }
    }

    #[test]
    fn uct_solves_small_games() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        let r = uct(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, optimum(4));
    }

    #[test]
    fn uct_sequences_replay_to_their_score() {
        for seed in 0..10 {
            let g = Ternary {
                depth: 5,
                taken: vec![],
            };
            let cfg = UctConfig {
                iterations: 200,
                ..Default::default()
            };
            let r = uct(&g, &cfg, &mut Rng::seeded(seed));
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert_eq!(r.sequence.len(), 5);
        }
    }

    #[test]
    fn uct_beats_flat_mc_at_equal_budget() {
        let g = Ternary {
            depth: 6,
            taken: vec![],
        };
        let budget = 300;
        let trials = 20;
        let mut uct_total = 0;
        let mut flat_total = 0;
        for seed in 0..trials {
            let cfg = UctConfig {
                iterations: budget,
                ..Default::default()
            };
            uct_total += uct(&g, &cfg, &mut Rng::seeded(seed)).score;
            flat_total += flat_monte_carlo(&g, budget, &mut Rng::seeded(seed)).score;
        }
        assert!(
            uct_total > flat_total,
            "UCT ({uct_total}) should beat flat MC ({flat_total}) over {trials} trials"
        );
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let g = Ternary {
            depth: 5,
            taken: vec![],
        };
        let score_at = |iters: usize| {
            (0..10)
                .map(|s| {
                    let cfg = UctConfig {
                        iterations: iters,
                        ..Default::default()
                    };
                    uct(&g, &cfg, &mut Rng::seeded(s)).score
                })
                .sum::<Score>()
        };
        assert!(score_at(1_000) >= score_at(30));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 100,
            ..Default::default()
        };
        let a = uct(&g, &cfg, &mut Rng::seeded(9));
        let b = uct(&g, &cfg, &mut Rng::seeded(9));
        assert_eq!(a.score, b.score);
        assert_eq!(a.sequence, b.sequence);
    }

    /// Every lock × stats combination, unbatched.
    fn all_modes(threads: usize) -> Vec<TreeParallelOpts> {
        let mut out = Vec::new();
        for lock in [LockStrategy::Global, LockStrategy::Sharded] {
            for stats in [StatsMode::VirtualLoss, StatsMode::WuUct] {
                out.push(TreeParallelOpts {
                    threads,
                    lock,
                    stats,
                    leaf_batch: 0,
                    leaf_batch_dynamic: false,
                });
            }
        }
        out
    }

    #[test]
    fn single_worker_tree_parallel_is_bit_identical_to_sequential_in_every_mode() {
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        for seed in 0..10 {
            let g = Ternary {
                depth: 5,
                taken: vec![],
            };
            let mut seq_ctx = SearchCtx::unbounded();
            let sequential = uct_with(&g, &cfg, &mut Rng::seeded(seed), &mut seq_ctx);
            for opts in all_modes(1) {
                let mut tp_ctx = SearchCtx::unbounded();
                let tree = uct_tree_parallel(&g, &cfg, &opts, seed, &mut tp_ctx);
                assert_eq!(tree, sequential, "seed {seed} {opts:?}");
                assert_eq!(tp_ctx.stats(), seq_ctx.stats(), "seed {seed} {opts:?}");
            }
        }
    }

    #[test]
    fn single_worker_tree_parallel_matches_on_fast_path_games_too() {
        let cfg = UctConfig {
            iterations: 200,
            ..Default::default()
        };
        for seed in 0..5 {
            let g = FastTernary(Ternary {
                depth: 5,
                taken: vec![],
            });
            let mut seq_ctx = SearchCtx::unbounded();
            let sequential = uct_with(&g, &cfg, &mut Rng::seeded(seed), &mut seq_ctx);
            for opts in all_modes(1) {
                let mut tp_ctx = SearchCtx::unbounded();
                let tree = uct_tree_parallel(&g, &cfg, &opts, seed, &mut tp_ctx);
                assert_eq!(tree, sequential, "seed {seed} {opts:?}");
            }
        }
    }

    #[test]
    fn multi_worker_tree_parallel_replays_and_honours_the_iteration_total() {
        let g = Ternary {
            depth: 6,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 400,
            ..Default::default()
        };
        for workers in [2usize, 4] {
            for mut opts in all_modes(workers) {
                for leaf_batch in [0usize, 4] {
                    opts.leaf_batch = leaf_batch;
                    let mut ctx = SearchCtx::unbounded();
                    let (score, seq) = uct_tree_parallel(&g, &cfg, &opts, 9, &mut ctx);
                    let mut replay = g.clone();
                    for mv in &seq {
                        replay.play(mv);
                    }
                    assert_eq!(replay.score(), score, "{opts:?}");
                    // The iteration counter is shared: total playouts equal
                    // the configured budget no matter how many workers (or
                    // slab slots) split it.
                    assert_eq!(ctx.stats().playouts, 400, "{opts:?}");
                }
            }
        }
    }

    #[test]
    fn batched_single_worker_runs_are_schedule_independent() {
        // A one-worker batched run claims, evaluates (iteration-seeded),
        // and backs up serially, so pool placement cannot change it:
        // repeated runs are identical, on both game paths.
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        let opts = TreeParallelOpts {
            leaf_batch: 4,
            ..TreeParallelOpts::new(1)
        };
        for seed in 0..5 {
            let g = Ternary {
                depth: 5,
                taken: vec![],
            };
            let mut ctx_a = SearchCtx::unbounded();
            let a = uct_tree_parallel(&g, &cfg, &opts, seed, &mut ctx_a);
            let mut ctx_b = SearchCtx::unbounded();
            let b = uct_tree_parallel(&g, &cfg, &opts, seed, &mut ctx_b);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ctx_a.stats(), ctx_b.stats(), "seed {seed}");

            let fast = FastTernary(g.clone());
            let mut ctx_f = SearchCtx::unbounded();
            let f1 = uct_tree_parallel(&fast, &cfg, &opts, seed, &mut ctx_f);
            let mut ctx_g = SearchCtx::unbounded();
            let f2 = uct_tree_parallel(&fast, &cfg, &opts, seed, &mut ctx_g);
            assert_eq!(f1, f2, "fast-path seed {seed}");
            assert_eq!(ctx_f.stats(), ctx_g.stats(), "fast-path seed {seed}");
        }
    }

    #[test]
    fn multi_worker_tree_parallel_still_solves_small_games() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        for opts in [
            TreeParallelOpts::new(4),
            TreeParallelOpts {
                leaf_batch: 4,
                ..TreeParallelOpts::new(4)
            },
        ] {
            let mut ctx = SearchCtx::unbounded();
            let (score, _) = uct_tree_parallel(&g, &cfg, &opts, 1, &mut ctx);
            assert_eq!(score, optimum(4), "{opts:?}");
        }
    }

    #[test]
    fn tree_parallel_terminal_root_is_handled() {
        let g = Ternary {
            depth: 0,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 10,
            ..Default::default()
        };
        for mut opts in all_modes(3) {
            for leaf_batch in [0usize, 3] {
                opts.leaf_batch = leaf_batch;
                let mut ctx = SearchCtx::unbounded();
                let (score, seq) = uct_tree_parallel(&g, &cfg, &opts, 1, &mut ctx);
                assert_eq!(score, 0, "{opts:?}");
                assert!(seq.is_empty(), "{opts:?}");
            }
        }
    }

    #[test]
    fn terminal_root_is_handled() {
        let g = Ternary {
            depth: 0,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 10,
            ..Default::default()
        };
        let r = uct(&g, &cfg, &mut Rng::seeded(1));
        assert_eq!(r.score, 0);
        assert!(r.sequence.is_empty());
    }

    #[test]
    fn trans_table_bytes_plateau_under_a_million_state_churn() {
        let bound = 64 * 1024;
        let table = TransTable::new(bound);
        assert!(
            table.bytes() <= bound,
            "fresh table backing {} must fit the bound {bound}",
            table.bytes()
        );
        let mut peak = 0usize;
        for key in 0..1_000_000u64 {
            table.intern(crate::game::mix64(key + 1));
            peak = peak.max(table.bytes());
        }
        assert!(
            peak <= bound + tt_entry_bytes() * TT_WAYS,
            "peak {peak} exceeded bound {bound}: churn must recycle slots, not grow"
        );
        assert_eq!(
            table.bytes(),
            peak,
            "a full table is flat: bytes stays at the plateau"
        );
        let (_, evictions) = table.counters();
        assert!(evictions > 0, "a million states must overflow 64 KiB");
    }

    #[test]
    fn trans_table_interns_same_key_to_the_same_stats_cell() {
        let table = TransTable::new(16 * 1024);
        let a = table.intern(42);
        let b = table.intern(42);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one cell");
        let c = table.intern(43);
        assert!(!Arc::ptr_eq(&a, &c), "distinct keys get distinct cells");
        assert_eq!(table.counters().0, 1, "exactly one hit");
    }

    #[test]
    fn reroot_keeps_the_chosen_subtree_statistics() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 500,
            ..Default::default()
        };
        let opts = TreeParallelOpts::new(1);
        let mut tree = TpTree::new(&cfg, opts.lock, opts.stats);
        let mut ctx = SearchCtx::unbounded();
        let (_, seq) = uct_tree_parallel_on(&g, &tree, &cfg, &opts, 7, &mut ctx);
        let first = seq[0];

        let child_visits = {
            let body = tree.root.lock_body();
            let child = body
                .children
                .iter()
                .find(|c| c.mv == Some(first))
                .expect("the best line's first move was expanded");
            child.stats.visits.load(Ordering::Relaxed)
        };
        assert!(child_visits > 0);
        let bytes_before = tree.approx_bytes();

        tree.reroot(&first);
        assert_eq!(
            tree.root.stats.visits.load(Ordering::Relaxed),
            child_visits,
            "the new root carries the child's visit count"
        );
        assert!(tree.root.mv.is_none(), "roots have no inbound move");
        assert!(
            tree.approx_bytes() < bytes_before,
            "re-rooting drops the sibling subtrees"
        );

        // Re-rooting on a move with no expanded child starts cold (9 is
        // not a Ternary move, standing in for an unexplored line).
        tree.reroot(&9u8);
        assert_eq!(tree.root.stats.visits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn table_backed_single_worker_runs_are_run_to_run_deterministic() {
        let g = Ternary {
            depth: 5,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 300,
            ..Default::default()
        };
        let opts = TreeParallelOpts::new(1);
        for seed in 0..5 {
            let run = |cfg: &UctConfig| {
                let tree = TpTree::with_table(cfg, opts.lock, opts.stats, 256 * 1024);
                let mut ctx = SearchCtx::unbounded();
                let out = uct_tree_parallel_on(&g, &tree, cfg, &opts, seed, &mut ctx);
                (out, *ctx.stats())
            };
            let a = run(&cfg);
            let b = run(&cfg);
            assert_eq!(a, b, "seed {seed}: width-1 reuse-on is deterministic");
        }
    }

    #[test]
    fn table_backed_tree_still_solves_small_games() {
        let g = Ternary {
            depth: 4,
            taken: vec![],
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        for threads in [1usize, 4] {
            let opts = TreeParallelOpts::new(threads);
            let tree = TpTree::with_table(&cfg, opts.lock, opts.stats, 1024 * 1024);
            let mut ctx = SearchCtx::unbounded();
            let (score, seq) = uct_tree_parallel_on(&g, &tree, &cfg, &opts, 3, &mut ctx);
            assert_eq!(score, optimum(4), "threads {threads}");
            let mut replay = g.clone();
            for mv in &seq {
                replay.play(mv);
            }
            assert_eq!(replay.score(), score, "threads {threads}: replayable line");
        }
    }

    /// Pick 4 of 6 items, any order; the position is the chosen *set*,
    /// so every permutation of a set transposes. Scores spread enough
    /// (weights 1,2,4,8,16,32) that search has something to rank.
    #[derive(Clone, Debug)]
    struct PickSet {
        chosen: u8,
        count: usize,
    }

    impl Game for PickSet {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.count < 4 {
                out.extend((0..6u8).filter(|i| self.chosen & (1 << i) == 0));
            }
        }
        fn play(&mut self, mv: &u8) {
            self.chosen |= 1 << mv;
            self.count += 1;
        }
        fn score(&self) -> Score {
            self.chosen as Score
        }
        fn moves_played(&self) -> usize {
            self.count
        }
        fn state_hash(&self) -> u64 {
            crate::game::mix64(self.chosen as u64 + 1)
        }
    }

    #[test]
    fn transposed_move_orders_share_one_statistics_cell() {
        let g = PickSet {
            chosen: 0,
            count: 0,
        };
        let cfg = UctConfig {
            iterations: 2_000,
            ..Default::default()
        };
        let opts = TreeParallelOpts::new(1);
        let tree = TpTree::with_table(&cfg, opts.lock, opts.stats, 1024 * 1024);
        let mut ctx = SearchCtx::unbounded();
        let (score, _) = uct_tree_parallel_on(&g, &tree, &cfg, &opts, 5, &mut ctx);
        assert_eq!(score, 0b111100, "the four heaviest items win");
        let (hits, _) = tree.table().expect("reuse-on tree").counters();
        assert!(
            hits > 0,
            "permuted picks reach equal sets; the table must dedupe them"
        );

        // The sharing is physical: two distinct depth-1 children that
        // lead to a common grandchild set expose the same Arc somewhere
        // below — spot-check that total interns < total expansions.
        let expansions = ctx.stats().expansions as usize;
        assert!(
            (hits as usize) + tree_distinct_stats(&tree.root) == expansions + 1,
            "every expansion either hit the table or made a fresh cell \
             (hits {hits} + distinct vs expansions {expansions} + root)"
        );
    }

    /// Counts distinct statistics cells in the subtree (root included).
    fn tree_distinct_stats<M>(node: &TpNode<M>) -> usize {
        fn walk<M>(node: &TpNode<M>, seen: &mut Vec<*const TpStats>) {
            let ptr = Arc::as_ptr(&node.stats);
            if !seen.contains(&ptr) {
                seen.push(ptr);
            }
            let body = node.lock_body();
            for c in &body.children {
                walk(c, seen);
            }
        }
        let mut seen = Vec::new();
        walk(node, &mut seen);
        seen.len()
    }
}
