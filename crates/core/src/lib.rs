//! # nmcs-core — Sequential Nested Monte-Carlo Search
//!
//! This crate implements §III of *"Parallel Nested Monte-Carlo Search"*
//! (Cazenave & Jouandeau, NIDISC/IPDPS 2009): the generic [`Game`]
//! abstraction, the random [`sample`] playout, the nested
//! rollout search [`nested`] with memorised best sequence,
//! and the baselines the paper's related-work section measures against
//! (flat Monte-Carlo, iterated sampling, beam search and a simulated
//! annealing baseline in the spirit of Hyyrö & Poranen's pre-paper Morpion
//! record).
//!
//! Everything is deterministic given a seed: randomness flows exclusively
//! through the self-contained [`rng`] module (SplitMix64 seeding feeding a
//! xoshiro256★★ generator), so that parallel and simulated backends in the
//! companion crates can reproduce byte-identical searches.
//!
//! ## Quick example
//!
//! ```
//! use nmcs_core::{Game, Score, rng::Rng, search::{nested, NestedConfig}};
//!
//! // A toy game: walk 4 steps left (0) or right (1); score = # of rights.
//! #[derive(Clone)]
//! struct Walk { taken: Vec<u8> }
//! impl Game for Walk {
//!     type Move = u8;
//!     fn legal_moves(&self, out: &mut Vec<u8>) {
//!         if self.taken.len() < 4 { out.extend_from_slice(&[0, 1]); }
//!     }
//!     fn play(&mut self, mv: &u8) { self.taken.push(*mv); }
//!     fn score(&self) -> Score {
//!         self.taken.iter().map(|&m| m as Score).sum()
//!     }
//!     fn moves_played(&self) -> usize { self.taken.len() }
//! }
//!
//! let game = Walk { taken: vec![] };
//! let mut rng = Rng::seeded(42);
//! let result = nested(&game, 1, &NestedConfig::default(), &mut rng);
//! assert_eq!(result.score, 4); // level-1 NMCS solves this toy game
//! ```

pub mod baselines;
pub mod driver;
pub mod erased;
pub mod game;
pub mod nrpa;
pub mod rng;
pub mod search;
pub mod stats;
pub mod uct;

pub use driver::{drive, Budget, DriveReport};
pub use erased::{decode_result, decode_sequence, AnyGame, DynGame};
pub use game::{Game, Score, SnapshotOnly, Undo};
pub use nrpa::{nrpa, CodedGame, NrpaConfig, Policy};
pub use rng::{Fnv1a, Rng};
pub use search::{nested, sample, MemoryPolicy, NestedConfig, PlayoutScratch, SearchResult};
pub use stats::SearchStats;
pub use uct::{uct, UctConfig};
