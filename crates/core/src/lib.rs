//! # nmcs-core — Sequential Nested Monte-Carlo Search
//!
//! This crate implements §III of *"Parallel Nested Monte-Carlo Search"*
//! (Cazenave & Jouandeau, NIDISC/IPDPS 2009): the generic [`Game`]
//! abstraction, the random [`sample`] playout, the nested
//! rollout search [`nested`] with memorised best sequence,
//! and the baselines the paper's related-work section measures against
//! (flat Monte-Carlo, iterated sampling, beam search and a simulated
//! annealing baseline in the spirit of Hyyrö & Poranen's pre-paper Morpion
//! record).
//!
//! Everything is deterministic given a seed: randomness flows exclusively
//! through the self-contained [`rng`] module (SplitMix64 seeding feeding a
//! xoshiro256★★ generator), so that parallel and simulated backends in the
//! companion crates can reproduce byte-identical searches.
//!
//! ## Quick example — the unified front door
//!
//! Every backend (NMCS, NRPA, UCT, the Monte-Carlo baselines, and the
//! leaf-/root-parallel executors) is reachable through one call:
//! [`SearchSpec::run`], with budgets, cancellation, and a common
//! [`SearchReport`].
//!
//! ```
//! use nmcs_core::{CodedGame, Game, Score, SearchSpec};
//!
//! // A toy game: walk 4 steps left (0) or right (1); score = # of rights.
//! #[derive(Clone)]
//! struct Walk { taken: Vec<u8> }
//! impl Game for Walk {
//!     type Move = u8;
//!     fn legal_moves(&self, out: &mut Vec<u8>) {
//!         if self.taken.len() < 4 { out.extend_from_slice(&[0, 1]); }
//!     }
//!     fn play(&mut self, mv: &u8) { self.taken.push(*mv); }
//!     fn score(&self) -> Score {
//!         self.taken.iter().map(|&m| m as Score).sum()
//!     }
//!     fn moves_played(&self) -> usize { self.taken.len() }
//! }
//! impl CodedGame for Walk {
//!     fn move_code(&self, mv: &u8) -> u64 { *mv as u64 }
//! }
//!
//! let game = Walk { taken: vec![] };
//! let report = SearchSpec::nested(1).seed(42).deadline_ms(500).run(&game);
//! assert_eq!(report.score, 4); // level-1 NMCS solves this toy game
//! assert!(report.interrupted.is_none());
//! ```

pub mod baselines;
pub mod ctx;
pub mod driver;
pub mod erased;
pub mod exec;
pub mod game;
pub mod metrics;
pub mod nrpa;
pub mod report;
pub mod rng;
pub mod search;
pub mod seeds;
pub mod session;
pub mod spec;
pub mod stats;
pub mod uct;

pub use baselines::{simulated_annealing_with, AnnealingConfig};
pub use ctx::SearchCtx;
pub use driver::{drive, DriveBudget, DriveReport};
pub use erased::{decode_report, decode_result, decode_sequence, AnyGame, AnySearcher, DynGame};
pub use exec::pool::ExecutorPool;
pub use game::{mix64, Game, Score, SnapshotOnly, Undo};
pub use metrics::{
    metrics_enabled, search_metrics, set_metrics_enabled, Counter, DeadLetter, DeadLetterQueue,
    EngineSnapshot, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, PoolMetrics,
    PoolSnapshot, SearchMetrics, SearchSnapshot, StalledJob, TagHistograms,
    TaggedHistogramSnapshot,
};
pub use nrpa::{nrpa_with, CodedGame, NrpaConfig, Policy};
pub use report::{Interruption, SearchReport};
pub use rng::{Fnv1a, Rng};
pub use search::{nested_with, sample, MemoryPolicy, NestedConfig, PlayoutScratch, SearchResult};
pub use session::SearchSession;
pub use spec::{AlgorithmSpec, Budget, CancelToken, SearchBuilder, SearchSpec, Searcher};
pub use stats::SearchStats;
pub use uct::{uct_tree_parallel, uct_with, LockStrategy, StatsMode, TreeParallelOpts, UctConfig};

// Deprecated free functions, re-exported so historical `use` paths keep
// compiling (each is a thin shim over the unified SearchSpec API).
#[allow(deprecated)]
pub use nrpa::nrpa;
#[allow(deprecated)]
pub use search::nested;
#[allow(deprecated)]
pub use uct::uct;
