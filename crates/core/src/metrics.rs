//! Lock-free metrics registry: counters, gauges, and log-bucketed
//! latency histograms, plus the serde-serialisable snapshot types the
//! future `/metrics` endpoint will render.
//!
//! Three layers feed this module:
//!
//! - the [`ExecutorPool`] records park/steal/
//!   wakeup/batch events and per-worker busy-vs-idle clocks into a
//!   per-pool [`PoolMetrics`];
//! - [`Searcher::search`](crate::Searcher::search) records per-backend
//!   wall-time histograms (keyed by
//!   [`AlgorithmSpec::tag()`](crate::AlgorithmSpec::tag)), playout
//!   totals, and budget-trip/cancellation tallies into the process-wide
//!   [`SearchMetrics`] registry;
//! - `nmcs-engine` fills the [`EngineSnapshot`] section (queue-wait vs
//!   run-time split, per-tenant/per-domain histograms, dead letters,
//!   stall detection) from its own registry built out of the same
//!   primitives.
//!
//! Hot-path contract: every record operation is a handful of relaxed
//! atomic RMWs — no mutex, no allocation (labels allocate once, on the
//! first registration of a tag, never on a search or rollout path). The
//! only mutex in the module guards the [`DeadLetterQueue`], which is
//! pushed to exclusively at replica *completion* (panic/cancel/budget
//! trip), never inside a search loop. Snapshots read atomics and never
//! touch any RNG, so the determinism contracts (1-worker ≡ sequential
//! per seed, unhit budgets bit-identical) hold with metrics enabled —
//! `tests/metrics_props.rs` asserts this on every backend.
//!
//! The whole registry can be switched off with
//! [`set_metrics_enabled(false)`](set_metrics_enabled): instrumentation
//! sites check [`metrics_enabled()`] (one relaxed load) before taking
//! clock readings, which is what the overhead-guard test compares
//! against.

use crate::exec::pool::ExecutorPool;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------
// Global enable flag
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// The sanctioned monotonic clock read for wall-time *observability*
/// (latency reports, deadline bookkeeping). Every timing site outside
/// the clock-allowlisted modules must come through here so the
/// `nmcs-lint` clock-discipline rule can see, from the call site alone,
/// that the reading feeds reporting and never a seed or an RNG.
#[inline]
pub fn monotonic_now() -> Instant {
    Instant::now()
}

/// Whether instrumentation sites should record (one relaxed load).
#[inline]
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording. Disabling skips the
/// clock reads and atomic bumps at every instrumentation site; it never
/// changes search results (asserted by the bit-identity proptests).
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// A monotonic counter (relaxed atomic adds).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous gauge (e.g. currently idle pool workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge to `n`.
    #[inline]
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log buckets in a [`Histogram`]. Bucket `i` (for `i >= 1`)
/// holds samples in `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds zeros;
/// the last bucket absorbs everything above `2^(BUCKETS-2)`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log-bucketed latency histogram over nanoseconds.
///
/// Recording is four relaxed atomic RMWs (bucket, sum, min, max); no
/// allocation ever. Percentiles are estimated from bucket midpoints at
/// snapshot time, giving ≤ ~33 % relative error — plenty for latency
/// SLO reporting across nine orders of magnitude.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Log-bucket index of a nanosecond sample.
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Representative (midpoint) value of a bucket, used for percentile
/// estimates.
fn bucket_mid(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => (1u64 << (i - 1)) + (1u64 << (i - 2)),
    }
}

impl Histogram {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] sample.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds `other`'s samples into `self`. Merge is associative and
    /// order-independent (proptested): bucket counts and sums add,
    /// min/max combine.
    pub fn merge_from(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            b.fetch_add(o.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Raw bucket counts (tests compare these for merge laws).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Point-in-time percentile/mean summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = self.bucket_counts();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let pct = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_mid(i);
                }
            }
            bucket_mid(HISTOGRAM_BUCKETS - 1)
        };
        let mut min_ns = self.min.load(Ordering::Relaxed);
        let mut max_ns = self.max.load(Ordering::Relaxed);
        // A record in flight on another thread updates bucket, sum, min,
        // max as four separate relaxed stores, so a torn read can show
        // `count >= 1` while min/max still hold their initial values
        // (min = u64::MAX > max = 0). `clamp(min, max)` would panic on
        // that inversion; fall back to the bucket extremes, which are
        // consistent with `counts` by construction.
        if min_ns > max_ns {
            let first = counts.iter().position(|&c| c > 0).unwrap_or(0);
            let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            min_ns = bucket_mid(first);
            max_ns = bucket_mid(last);
        }
        // Bucket midpoints can over/undershoot the true extremes by up
        // to half a power of two; clamping keeps the summary internally
        // consistent (min ≤ p50 ≤ p95 ≤ p99 ≤ max always holds). With a
        // single sample this collapses every percentile to that exact
        // sample (min == max), not a bucket-midpoint estimate of it.
        let pct = |q: f64| pct(q).clamp(min_ns, max_ns);
        HistogramSnapshot {
            count,
            sum_ns: sum,
            min_ns,
            max_ns,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
        }
    }
}

// ---------------------------------------------------------------------
// Per-tag histogram table
// ---------------------------------------------------------------------

/// Capacity of a [`TagHistograms`] table. Records beyond capacity land
/// in an overflow counter instead of being silently dropped.
pub const TAG_SLOTS: usize = 32;

struct TagSlot {
    /// CAS-claimed key; 0 means empty (a genuine tag of 0 is remapped,
    /// see `slot_key`).
    key: AtomicU64,
    /// The label of the *first* record that claimed this key. Immutable
    /// after initialisation — later records under the same key must
    /// present the same label or they are collisions, not samples.
    label: OnceLock<String>,
    hist: Histogram,
    hits: Counter,
}

impl TagSlot {
    const fn new() -> Self {
        TagSlot {
            key: AtomicU64::new(0),
            label: OnceLock::new(),
            hist: Histogram::new(),
            hits: Counter::new(),
        }
    }
}

/// 0 is the empty-slot sentinel; remap a genuine 0 tag so it still gets
/// a slot (colliding with a genuine `u64::MAX` tag is accepted — FNV
/// tags hit neither in practice).
fn slot_key(tag: u64) -> u64 {
    if tag == 0 {
        u64::MAX
    } else {
        tag
    }
}

/// A fixed-capacity, lock-free table of histograms keyed by a `u64`
/// tag (e.g. [`AlgorithmSpec::tag()`](crate::AlgorithmSpec::tag), or an
/// FNV hash of a tenant/domain name).
///
/// Slots are claimed by CAS on first sight of a key; the human-readable
/// label allocates once at claim time (cold path) and is immutable
/// after. Recording into a claimed slot is a short scan of atomic loads
/// plus a histogram record — no mutex, no allocation.
pub struct TagHistograms {
    slots: [TagSlot; TAG_SLOTS],
    /// Records that found the table full.
    overflow: Counter,
    /// Records whose tag matched a claimed slot but whose label did not:
    /// two distinct names hashing to the same u64 tag. Routed to the
    /// overflow counter instead of silently merging latencies.
    collisions: Counter,
}

impl Default for TagHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl TagHistograms {
    /// An empty table (usable in `static` position).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const SLOT: TagSlot = TagSlot::new();
        TagHistograms {
            slots: [SLOT; TAG_SLOTS],
            overflow: Counter::new(),
            collisions: Counter::new(),
        }
    }

    /// Records `ns` under `tag`, labelling the slot with `label` if this
    /// is the first sight of the tag.
    ///
    /// Tags are typically hashes of `label`, so two distinct labels can
    /// collide on one u64. A slot belongs to the label that claimed it:
    /// a record whose tag matches but whose label differs is counted in
    /// [`TagHistograms::collisions`] (and routed to the overflow
    /// counter) rather than silently merged into the wrong histogram.
    pub fn record(&self, tag: u64, label: &str, ns: u64) {
        let key = slot_key(tag);
        for slot in &self.slots {
            let cur = slot.key.load(Ordering::Acquire);
            let claimed = cur == key
                || (cur == 0
                    && slot
                        .key
                        .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                        .map(|_| true)
                        .unwrap_or_else(|raced| raced == key));
            if claimed {
                // First record under the key wins the label; everyone
                // else must match it. `get_or_init` makes the claim race
                // deterministic: a loser observes the winner's label and
                // detects the mismatch here, at claim time.
                let owner = slot.label.get_or_init(|| label.to_string());
                if owner != label {
                    self.collisions.incr();
                    self.overflow.incr();
                    return;
                }
                slot.hist.record(ns);
                slot.hits.incr();
                return;
            }
        }
        self.overflow.incr();
    }

    /// Records that found no free slot (including collision re-routes).
    pub fn overflow(&self) -> u64 {
        self.overflow.get()
    }

    /// Records rejected because their tag matched a slot claimed by a
    /// different label (hash collision between two names).
    pub fn collisions(&self) -> u64 {
        self.collisions.get()
    }

    /// Snapshots every claimed slot, sorted by label (then key) so the
    /// output is deterministic.
    pub fn snapshot(&self) -> Vec<TaggedHistogramSnapshot> {
        let mut out: Vec<TaggedHistogramSnapshot> = self
            .slots
            .iter()
            .filter(|s| s.key.load(Ordering::Acquire) != 0)
            .map(|s| TaggedHistogramSnapshot {
                tag: s.key.load(Ordering::Acquire),
                label: s.label.get().cloned().unwrap_or_default(),
                hits: s.hits.get(),
                hist: s.hist.snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label).then(a.tag.cmp(&b.tag)));
        out
    }
}

// ---------------------------------------------------------------------
// Dead-letter queue
// ---------------------------------------------------------------------

/// One dead letter: a replica that panicked, was cancelled, or tripped
/// its budget. Also the serde snapshot type.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeadLetter {
    /// Job id the replica belonged to.
    pub job: u64,
    /// Replica index within the job.
    pub replica: u64,
    /// Job (tenant) name.
    pub name: String,
    /// Why it dead-lettered: `"panicked"`, `"cancelled"`, or a budget
    /// trip (`"deadline"`, `"playouts"`, `"nodes"`).
    pub reason: String,
    /// Milliseconds from job submission to the dead-letter event.
    pub age_ms: u64,
}

/// A bounded FIFO of [`DeadLetter`]s: pushing past capacity evicts the
/// *oldest* entry, so the most recent letter is never dropped
/// (proptested). Guarded by a mutex, but only ever pushed at replica
/// completion — never on a search or rollout path.
pub struct DeadLetterQueue {
    cap: usize,
    inner: Mutex<VecDeque<DeadLetter>>,
    /// Entries evicted to stay within capacity.
    dropped: Counter,
}

impl DeadLetterQueue {
    /// A queue holding at most `cap` letters (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        DeadLetterQueue {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::new()),
            dropped: Counter::new(),
        }
    }

    /// Appends a letter, evicting the oldest if full.
    pub fn push(&self, letter: DeadLetter) {
        let mut q = self.inner.lock();
        if q.len() == self.cap {
            q.pop_front();
            self.dropped.incr();
        }
        q.push_back(letter);
    }

    /// Letters evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Current letters, oldest first.
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.inner.lock().iter().cloned().collect()
    }
}

// ---------------------------------------------------------------------
// Pool metrics
// ---------------------------------------------------------------------

/// Per-worker busy/idle nanosecond clocks.
#[derive(Debug, Default)]
pub struct WorkerClock {
    /// Nanoseconds spent running tasks.
    pub busy_ns: Counter,
    /// Nanoseconds spent parked or scanning for work.
    pub idle_ns: Counter,
}

/// Counters and clocks for one [`ExecutorPool`].
/// All fields are atomics; see the module docs for the hot-path
/// contract.
pub struct PoolMetrics {
    /// Times a worker parked on the injector condvar.
    pub parks: Counter,
    /// Wakeup-generation bumps (notifications issued to parked workers).
    pub wakeups: Counter,
    /// Successful steals from a sibling's deque.
    pub steals: Counter,
    /// `run_batch` submissions.
    pub batches: Counter,
    /// Total slots executed across all batches.
    pub batch_slots: Counter,
    /// Workers currently parked (idle) — the gauge the
    /// `leaf_batch_dynamic` heuristic reads.
    pub idle_workers: Gauge,
    per_worker: Vec<WorkerClock>,
}

impl PoolMetrics {
    /// Metrics for a pool with `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        PoolMetrics {
            parks: Counter::new(),
            wakeups: Counter::new(),
            steals: Counter::new(),
            batches: Counter::new(),
            batch_slots: Counter::new(),
            idle_workers: Gauge::new(),
            per_worker: (0..workers).map(|_| WorkerClock::default()).collect(),
        }
    }

    /// The busy/idle clock of worker `idx`.
    pub fn worker(&self, idx: usize) -> &WorkerClock {
        &self.per_worker[idx]
    }

    /// Point-in-time summary of all pool counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        let per_worker_busy_ns: Vec<u64> =
            self.per_worker.iter().map(|w| w.busy_ns.get()).collect();
        let per_worker_idle_ns: Vec<u64> =
            self.per_worker.iter().map(|w| w.idle_ns.get()).collect();
        PoolSnapshot {
            workers: self.per_worker.len() as u64,
            parks: self.parks.get(),
            wakeups: self.wakeups.get(),
            steals: self.steals.get(),
            batches: self.batches.get(),
            batch_slots: self.batch_slots.get(),
            idle_workers: self.idle_workers.get(),
            busy_ns: per_worker_busy_ns.iter().sum(),
            idle_ns: per_worker_idle_ns.iter().sum(),
            per_worker_busy_ns,
            per_worker_idle_ns,
        }
    }
}

// ---------------------------------------------------------------------
// Search metrics (process-wide registry)
// ---------------------------------------------------------------------

/// Process-wide search-layer registry, fed by
/// [`Searcher::search`](crate::Searcher::search) once per completed
/// search (nothing records inside rollout loops).
pub struct SearchMetrics {
    /// Completed searches.
    pub searches: Counter,
    /// Playouts across all searches (from
    /// [`SearchStats`](crate::SearchStats)).
    pub playouts: Counter,
    /// Playout moves across all searches.
    pub playout_moves: Counter,
    /// Searches interrupted by the wall-clock deadline.
    pub deadline_trips: Counter,
    /// Searches interrupted by the playout budget.
    pub playout_trips: Counter,
    /// Searches interrupted by the node budget.
    pub node_trips: Counter,
    /// Searches interrupted by cancellation.
    pub cancellations: Counter,
    /// Per-backend wall-time histograms keyed by
    /// [`AlgorithmSpec::tag()`](crate::AlgorithmSpec::tag).
    pub wall: TagHistograms,
    epoch: Instant,
}

impl SearchMetrics {
    fn new() -> Self {
        SearchMetrics {
            searches: Counter::new(),
            playouts: Counter::new(),
            playout_moves: Counter::new(),
            deadline_trips: Counter::new(),
            playout_trips: Counter::new(),
            node_trips: Counter::new(),
            cancellations: Counter::new(),
            wall: TagHistograms::new(),
            epoch: Instant::now(),
        }
    }

    /// Point-in-time summary; `playouts_per_sec` is the lifetime rate
    /// since the registry was first touched.
    pub fn snapshot(&self) -> SearchSnapshot {
        let secs = self.epoch.elapsed().as_secs_f64();
        let playouts = self.playouts.get();
        SearchSnapshot {
            searches: self.searches.get(),
            playouts,
            playout_moves: self.playout_moves.get(),
            playouts_per_sec: if secs > 0.0 {
                playouts as f64 / secs
            } else {
                0.0
            },
            deadline_trips: self.deadline_trips.get(),
            playout_trips: self.playout_trips.get(),
            node_trips: self.node_trips.get(),
            cancellations: self.cancellations.get(),
            backends: self.wall.snapshot(),
            tag_collisions: self.wall.collisions(),
        }
    }
}

static SEARCH: OnceLock<SearchMetrics> = OnceLock::new();

/// The process-wide [`SearchMetrics`] registry (created on first use).
pub fn search_metrics() -> &'static SearchMetrics {
    SEARCH.get_or_init(SearchMetrics::new)
}

// ---------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------

/// Percentile/mean summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 95th percentile.
    pub p95_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// One claimed slot of a [`TagHistograms`] table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaggedHistogramSnapshot {
    /// The slot's key (e.g. an algorithm `tag()`).
    pub tag: u64,
    /// Human-readable label recorded at claim time.
    pub label: String,
    /// Samples recorded under this tag.
    pub hits: u64,
    /// Latency summary.
    pub hist: HistogramSnapshot,
}

/// Summary of one pool's [`PoolMetrics`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolSnapshot {
    /// Worker threads in the pool.
    pub workers: u64,
    /// Times a worker parked.
    pub parks: u64,
    /// Wakeup-generation bumps.
    pub wakeups: u64,
    /// Successful deque steals.
    pub steals: u64,
    /// `run_batch` submissions.
    pub batches: u64,
    /// Slots executed across all batches.
    pub batch_slots: u64,
    /// Workers currently parked.
    pub idle_workers: i64,
    /// Total busy nanoseconds across workers.
    pub busy_ns: u64,
    /// Total idle nanoseconds across workers.
    pub idle_ns: u64,
    /// Busy nanoseconds per worker.
    pub per_worker_busy_ns: Vec<u64>,
    /// Idle nanoseconds per worker.
    pub per_worker_idle_ns: Vec<u64>,
}

/// Summary of the process-wide [`SearchMetrics`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchSnapshot {
    /// Completed searches.
    pub searches: u64,
    /// Total playouts.
    pub playouts: u64,
    /// Total playout moves.
    pub playout_moves: u64,
    /// Lifetime playout rate.
    pub playouts_per_sec: f64,
    /// Deadline budget trips.
    pub deadline_trips: u64,
    /// Playout budget trips.
    pub playout_trips: u64,
    /// Node budget trips.
    pub node_trips: u64,
    /// Cancelled searches.
    pub cancellations: u64,
    /// Per-backend wall-time histograms.
    pub backends: Vec<TaggedHistogramSnapshot>,
    /// Backend records rejected because their tag collided with a slot
    /// claimed by a different label (see [`TagHistograms::collisions`]).
    pub tag_collisions: u64,
}

/// A running job flagged past its deadline estimate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StalledJob {
    /// Job id.
    pub job: u64,
    /// Job (tenant) name.
    pub name: String,
    /// Milliseconds the job has been running.
    pub running_ms: u64,
    /// The deadline estimate it exceeded, milliseconds.
    pub deadline_ms: u64,
}

/// The engine section of a [`MetricsSnapshot`], filled by
/// `nmcs_engine::Engine::inspector`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineSnapshot {
    /// Jobs accepted by `submit`/`try_submit`.
    pub submitted_jobs: u64,
    /// Jobs that finished with all replicas successful.
    pub completed_jobs: u64,
    /// Jobs that finished cancelled.
    pub cancelled_jobs: u64,
    /// Jobs that finished failed (a replica panicked).
    pub failed_jobs: u64,
    /// Submissions rejected by backpressure.
    pub rejected_submissions: u64,
    /// Replica tasks executed to completion.
    pub executed_tasks: u64,
    /// Replica tasks skipped (cancelled before running).
    pub skipped_tasks: u64,
    /// Replica tasks stolen between engine workers.
    pub stolen_tasks: u64,
    /// Work units across all executed tasks.
    pub total_work_units: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// Time replicas spent queued before first pickup.
    pub queue_wait: HistogramSnapshot,
    /// Time replicas spent actually searching.
    pub run_time: HistogramSnapshot,
    /// Run-time histograms keyed by tenant (job name).
    pub tenants: Vec<TaggedHistogramSnapshot>,
    /// Run-time histograms keyed by game domain.
    pub domains: Vec<TaggedHistogramSnapshot>,
    /// The bounded dead-letter record, oldest first.
    pub dead_letters: Vec<DeadLetter>,
    /// Dead letters evicted to stay within capacity.
    pub dlq_dropped: u64,
    /// Running jobs currently past their deadline estimate.
    pub stalled: Vec<StalledJob>,
    /// Tenant/domain records rejected because their FNV tag collided
    /// with a slot claimed by a different label — latencies were routed
    /// to the overflow counter instead of silently merged (see
    /// [`TagHistograms::collisions`]).
    pub tag_collisions: u64,
    /// Warm-tree sessions currently open.
    pub sessions: u64,
    /// Summed approximate warm bytes across open sessions (what the
    /// session table's memory bound is enforced against).
    pub session_bytes: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions dropped by idle-TTL expiry.
    pub sessions_expired: u64,
    /// Sessions evicted under the count or byte bound.
    pub sessions_evicted: u64,
}

/// The full, serde-round-trippable metrics snapshot — the future
/// `/metrics` endpoint body. `engine` is `None` for core-only
/// snapshots (no engine in the process).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Executor-pool counters and clocks.
    pub pool: PoolSnapshot,
    /// Search-layer counters and per-backend histograms.
    pub search: SearchSnapshot,
    /// Engine section, when snapshotted through `Engine::inspector`.
    pub engine: Option<EngineSnapshot>,
}

/// Snapshots the process-wide registries (shared executor pool +
/// search metrics), with no engine section.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        pool: ExecutorPool::shared().metrics().snapshot(),
        search: search_metrics().snapshot(),
        engine: None,
    }
}

// ---------------------------------------------------------------------
// Serde (hand-written against the vendored shim: the derive handles
// only flat structs of primitives, and these types nest).
// ---------------------------------------------------------------------

macro_rules! impl_value_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl serde::Serialize for $ty {
            fn to_value(&self) -> serde::Value {
                serde::Value::Object(vec![
                    $((stringify!($field).to_string(), self.$field.to_value()),)*
                ])
            }
        }
        impl serde::Deserialize for $ty {
            fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
                Ok($ty {
                    $($field: match v.get_field(stringify!($field)) {
                        Some(f) => serde::Deserialize::from_value(f)?,
                        None => Default::default(),
                    },)*
                })
            }
        }
    };
}

impl_value_struct!(HistogramSnapshot {
    count,
    sum_ns,
    min_ns,
    max_ns,
    p50_ns,
    p95_ns,
    p99_ns
});
impl_value_struct!(TaggedHistogramSnapshot {
    tag,
    label,
    hits,
    hist
});
impl_value_struct!(PoolSnapshot {
    workers,
    parks,
    wakeups,
    steals,
    batches,
    batch_slots,
    idle_workers,
    busy_ns,
    idle_ns,
    per_worker_busy_ns,
    per_worker_idle_ns,
});
impl_value_struct!(SearchSnapshot {
    searches,
    playouts,
    playout_moves,
    playouts_per_sec,
    deadline_trips,
    playout_trips,
    node_trips,
    cancellations,
    backends,
    tag_collisions,
});
impl_value_struct!(DeadLetter {
    job,
    replica,
    name,
    reason,
    age_ms
});
impl_value_struct!(StalledJob {
    job,
    name,
    running_ms,
    deadline_ms
});
impl_value_struct!(EngineSnapshot {
    submitted_jobs,
    completed_jobs,
    cancelled_jobs,
    failed_jobs,
    rejected_submissions,
    executed_tasks,
    skipped_tasks,
    stolen_tasks,
    total_work_units,
    queue_depth,
    queue_wait,
    run_time,
    tenants,
    domains,
    dead_letters,
    dlq_dropped,
    stalled,
    tag_collisions,
    sessions,
    session_bytes,
    sessions_opened,
    sessions_expired,
    sessions_evicted,
});
impl_value_struct!(MetricsSnapshot {
    pool,
    search,
    engine
});

// ---------------------------------------------------------------------
// Text render
// ---------------------------------------------------------------------

impl MetricsSnapshot {
    /// Renders the snapshot in a Prometheus-flavoured text exposition
    /// format — one `name{labels} value` line per series. This (or the
    /// JSON form via `serde_json`) is what a future `/metrics` endpoint
    /// serves.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let p = &self.pool;
        let _ = writeln!(s, "pool_workers {}", p.workers);
        let _ = writeln!(s, "pool_parks_total {}", p.parks);
        let _ = writeln!(s, "pool_wakeups_total {}", p.wakeups);
        let _ = writeln!(s, "pool_steals_total {}", p.steals);
        let _ = writeln!(s, "pool_batches_total {}", p.batches);
        let _ = writeln!(s, "pool_batch_slots_total {}", p.batch_slots);
        let _ = writeln!(s, "pool_idle_workers {}", p.idle_workers);
        let _ = writeln!(s, "pool_busy_seconds_total {}", p.busy_ns as f64 / 1e9);
        let _ = writeln!(s, "pool_idle_seconds_total {}", p.idle_ns as f64 / 1e9);
        let q = &self.search;
        let _ = writeln!(s, "search_total {}", q.searches);
        let _ = writeln!(s, "search_playouts_total {}", q.playouts);
        let _ = writeln!(s, "search_playout_moves_total {}", q.playout_moves);
        let _ = writeln!(s, "search_playouts_per_second {}", q.playouts_per_sec);
        let _ = writeln!(
            s,
            "search_trips_total{{kind=\"deadline\"}} {}",
            q.deadline_trips
        );
        let _ = writeln!(
            s,
            "search_trips_total{{kind=\"playouts\"}} {}",
            q.playout_trips
        );
        let _ = writeln!(s, "search_trips_total{{kind=\"nodes\"}} {}", q.node_trips);
        let _ = writeln!(s, "search_cancellations_total {}", q.cancellations);
        let _ = writeln!(s, "search_tag_collisions_total {}", q.tag_collisions);
        for b in &q.backends {
            render_hist(
                &mut s,
                "search_wall_seconds",
                &[("backend", &b.label)],
                &b.hist,
            );
        }
        if let Some(e) = &self.engine {
            let _ = writeln!(
                s,
                "engine_jobs_total{{state=\"submitted\"}} {}",
                e.submitted_jobs
            );
            let _ = writeln!(
                s,
                "engine_jobs_total{{state=\"completed\"}} {}",
                e.completed_jobs
            );
            let _ = writeln!(
                s,
                "engine_jobs_total{{state=\"cancelled\"}} {}",
                e.cancelled_jobs
            );
            let _ = writeln!(s, "engine_jobs_total{{state=\"failed\"}} {}", e.failed_jobs);
            let _ = writeln!(
                s,
                "engine_rejected_submissions_total {}",
                e.rejected_submissions
            );
            let _ = writeln!(
                s,
                "engine_tasks_total{{kind=\"executed\"}} {}",
                e.executed_tasks
            );
            let _ = writeln!(
                s,
                "engine_tasks_total{{kind=\"skipped\"}} {}",
                e.skipped_tasks
            );
            let _ = writeln!(
                s,
                "engine_tasks_total{{kind=\"stolen\"}} {}",
                e.stolen_tasks
            );
            let _ = writeln!(s, "engine_work_units_total {}", e.total_work_units);
            let _ = writeln!(s, "engine_queue_depth {}", e.queue_depth);
            render_hist(&mut s, "engine_queue_wait_seconds", &[], &e.queue_wait);
            render_hist(&mut s, "engine_run_time_seconds", &[], &e.run_time);
            for t in &e.tenants {
                render_hist(
                    &mut s,
                    "engine_tenant_run_seconds",
                    &[("tenant", &t.label)],
                    &t.hist,
                );
            }
            for d in &e.domains {
                render_hist(
                    &mut s,
                    "engine_domain_run_seconds",
                    &[("domain", &d.label)],
                    &d.hist,
                );
            }
            let _ = writeln!(s, "engine_dead_letters {}", e.dead_letters.len());
            let _ = writeln!(s, "engine_dead_letters_dropped_total {}", e.dlq_dropped);
            let _ = writeln!(s, "engine_stalled_jobs {}", e.stalled.len());
            let _ = writeln!(s, "engine_tag_collisions_total {}", e.tag_collisions);
            let _ = writeln!(s, "engine_sessions {}", e.sessions);
            let _ = writeln!(s, "engine_session_bytes {}", e.session_bytes);
            let _ = writeln!(
                s,
                "engine_sessions_total{{event=\"opened\"}} {}",
                e.sessions_opened
            );
            let _ = writeln!(
                s,
                "engine_sessions_total{{event=\"expired\"}} {}",
                e.sessions_expired
            );
            let _ = writeln!(
                s,
                "engine_sessions_total{{event=\"evicted\"}} {}",
                e.sessions_evicted
            );
        }
        s
    }
}

/// Escapes a label *value* for the Prometheus text exposition format:
/// backslash, double quote, and newline get the format's own escapes;
/// any other control character (a hostile tenant name can contain a
/// carriage return or a NUL) is replaced outright, since the format
/// defines no escape for it and a raw one would corrupt the line
/// structure. The result always parses as a quoted label value.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if c.is_control() => out.push('\u{FFFD}'),
            c => out.push(c),
        }
    }
    out
}

fn render_hist(s: &mut String, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let tag = |extra: &str| -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if !extra.is_empty() {
            parts.push(extra.to_string());
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    let _ = writeln!(s, "{name}_count{} {}", tag(""), h.count);
    let _ = writeln!(s, "{name}_sum{} {}", tag(""), h.sum_ns as f64 / 1e9);
    for (q, v) in [("0.5", h.p50_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)] {
        let _ = writeln!(
            s,
            "{name}{} {}",
            tag(&format!("quantile=\"{q}\"")),
            v as f64 / 1e9
        );
    }
}
