//! The paper's §III: random sampling and Nested Monte-Carlo Search.
//!
//! Two entry points:
//!
//! * [`sample`] — "the basic sample function just plays a random game from
//!   a given position" and returns its score (and the sequence it played).
//! * [`nested`] — "the nested rollout function plays a game, choosing at
//!   each step of the game the move that has the highest score of the
//!   lower level nested rollout", with the *memorised best sequence*
//!   behaviour of the paper's pseudocode (lines 7–11): whenever a
//!   lower-level evaluation beats the best score seen so far in this call,
//!   the whole continuation is memorised, and the game always advances
//!   along the memorised sequence.
//!
//! The memorisation matters: at high levels most per-step evaluations fail
//! to beat the incumbent, and without the memory the search would discard
//! the good continuation it has already paid to discover. The
//! [`MemoryPolicy::Greedy`] variant reproduces the *parallel* pseudocode of
//! §IV, which plays the per-step argmax without cross-step memory — the
//! difference is measured by an ablation benchmark.

use crate::game::{Game, Score};
use crate::rng::Rng;
use crate::stats::SearchStats;

/// Outcome of a search: the best score found and the move sequence that
/// realises it (from the position the search was called on).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult<M> {
    /// Best score found.
    pub score: Score,
    /// Moves realising `score`, in play order from the root position.
    pub sequence: Vec<M>,
    /// Instrumentation counters for this call (including sub-searches).
    pub stats: SearchStats,
}

/// How `nested` advances its game between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryPolicy {
    /// Follow the globally best sequence found so far in this call
    /// (sequential pseudocode, §III lines 7–11). The default.
    #[default]
    Memorise,
    /// Play the best move of the *current* step only (parallel pseudocode,
    /// §IV: root and median processes play "the move with best score").
    Greedy,
}

/// Tunables for [`nested`].
#[derive(Debug, Clone)]
pub struct NestedConfig {
    /// Cross-step memory policy.
    pub memory: MemoryPolicy,
    /// Hard cap on the number of moves a single random playout may make;
    /// `None` plays to termination. Used by scaled-down experiments, never
    /// by the paper-faithful ones.
    pub playout_cap: Option<usize>,
}

impl Default for NestedConfig {
    fn default() -> Self {
        Self {
            memory: MemoryPolicy::Memorise,
            playout_cap: None,
        }
    }
}

impl NestedConfig {
    /// Paper-faithful configuration (memorised sequence, uncapped playouts).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Greedy per-step configuration matching the parallel pseudocode.
    pub fn greedy() -> Self {
        Self {
            memory: MemoryPolicy::Greedy,
            playout_cap: None,
        }
    }
}

/// Plays a uniformly random game from `game` (mutating it to the terminal
/// position), appends the moves played to `seq`, and returns the final
/// score.
///
/// This is the paper's `sample` function; `cap` bounds the playout length
/// for scaled experiments (`None` = play to the end).
pub fn sample_into<G: Game>(
    game: &mut G,
    rng: &mut Rng,
    cap: Option<usize>,
    seq: &mut Vec<G::Move>,
    stats: &mut SearchStats,
) -> Score {
    let mut buf: Vec<G::Move> = Vec::new();
    let mut steps = 0usize;
    loop {
        if let Some(c) = cap {
            if steps >= c {
                break;
            }
        }
        buf.clear();
        game.legal_moves(&mut buf);
        if buf.is_empty() {
            break;
        }
        let mv = buf.swap_remove(rng.below(buf.len()));
        game.play(&mv);
        seq.push(mv);
        stats.record_playout_move();
        steps += 1;
    }
    stats.record_playout_end();
    game.score()
}

/// Plays a uniformly random game from a copy of `game` and returns the
/// result. Convenience wrapper over [`sample_into`].
pub fn sample<G: Game>(game: &G, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut stats = SearchStats::new();
    let mut seq = Vec::new();
    let mut g = game.clone();
    let score = sample_into(&mut g, rng, None, &mut seq, &mut stats);
    SearchResult {
        score,
        sequence: seq,
        stats,
    }
}

/// Nested Monte-Carlo Search at `level` from `game`.
///
/// * `level == 0` degenerates to a single random playout (useful as a
///   baseline; the paper starts at level 1).
/// * `level == 1` evaluates each candidate move with one random playout.
/// * `level >= 2` evaluates each candidate move with a `level - 1` search.
///
/// Returns the best score found, the full move sequence realising it, and
/// the accumulated statistics. With [`MemoryPolicy::Memorise`] the returned
/// score equals the score of the position reached by replaying the returned
/// sequence.
pub fn nested<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut stats = SearchStats::new();
    let (score, sequence) = nested_inner(game, level, config, rng, &mut stats);
    SearchResult {
        score,
        sequence,
        stats,
    }
}

fn nested_inner<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
    stats: &mut SearchStats,
) -> (Score, Vec<G::Move>) {
    if level == 0 {
        let mut g = game.clone();
        let mut seq = Vec::new();
        let score = sample_into(&mut g, rng, config.playout_cap, &mut seq, stats);
        return (score, seq);
    }

    let mut pos = game.clone();
    // `best_seq[..played]` is the prefix already played by this call;
    // `best_seq[played..]` is the memorised best continuation.
    let mut best_seq: Vec<G::Move> = Vec::new();
    let mut played = 0usize;
    let mut best_score = Score::MIN;
    let mut moves: Vec<G::Move> = Vec::new();
    // Workhorse buffer reused by level-1 playout evaluations.
    let mut scratch_seq: Vec<G::Move> = Vec::new();

    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }

        let mut step_best: Option<(Score, usize)> = None;
        for (i, mv) in moves.iter().enumerate() {
            let mut child = pos.clone();
            child.play(mv);
            stats.record_expansion();

            let (score, continuation) = if level == 1 {
                scratch_seq.clear();
                let s = sample_into(&mut child, rng, config.playout_cap, &mut scratch_seq, stats);
                (s, &scratch_seq)
            } else {
                let (s, seq) = nested_inner(&child, level - 1, config, rng, stats);
                scratch_seq = seq;
                (s, &scratch_seq)
            };

            // Track the best move of *this step* (for the greedy policy) …
            if step_best.is_none_or(|(s, _)| score > s) {
                step_best = Some((score, i));
            }
            // … and the best sequence of the *whole call* (paper lines 7–9).
            if score > best_score {
                best_score = score;
                best_seq.truncate(played);
                best_seq.push(mv.clone());
                best_seq.extend(continuation.iter().cloned());
            }
        }

        // Paper lines 10–11: play the next move of the memorised best
        // sequence. Fallbacks: the greedy policy always plays this step's
        // argmax, and a capped search whose memorised (capped) continuation
        // is exhausted must extend it with the step argmax.
        let follow_memory = config.memory == MemoryPolicy::Memorise && played < best_seq.len();
        let next = if follow_memory {
            best_seq[played].clone()
        } else {
            let (_, idx) = step_best.expect("non-empty move list");
            let mv = moves[idx].clone();
            // Keep best_seq aligned with the actually-played prefix; the
            // incumbent continuation (if any) is abandoned.
            if best_seq.len() <= played || best_seq[played] != mv {
                best_seq.truncate(played);
                best_seq.push(mv.clone());
                best_score = Score::MIN;
            }
            mv
        };
        pos.play(&next);
        played += 1;
        stats.record_nested_move();
    }

    if played > 0 && config.memory == MemoryPolicy::Memorise && config.playout_cap.is_none() {
        debug_assert_eq!(
            best_score,
            pos.score(),
            "memorised sequence must reach the memorised score"
        );
        debug_assert_eq!(played, best_seq.len());
    }
    // The game was advanced to a true terminal position along
    // `best_seq[..played]`, so the pair below is consistent by construction
    // under every policy (and equals the memorised optimum in the
    // paper-faithful configuration, per the assertions above).
    best_seq.truncate(played);
    (pos.score(), best_seq)
}

/// Evaluates every legal move of `game` with a `level`-search and returns
/// `(move, result)` pairs in move-list order.
///
/// This is the decomposition point the parallel algorithms exploit: the
/// root process farms one entry per move to the median processes, and each
/// median farms its own entries to clients (paper §IV). Keeping it here
/// lets the parallel crates and the sequential search share evaluation
/// semantics (including seed derivation order).
pub fn evaluate_moves<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    seeds: impl Fn(usize) -> u64,
) -> Vec<(G::Move, SearchResult<G::Move>)> {
    let mut moves = Vec::new();
    game.legal_moves(&mut moves);
    moves
        .into_iter()
        .enumerate()
        .map(|(i, mv)| {
            let mut child = game.clone();
            child.play(&mv);
            let mut rng = Rng::seeded(seeds(i));
            let res = if level == 0 {
                let mut stats = SearchStats::new();
                let mut seq = Vec::new();
                let mut g = child.clone();
                let score = sample_into(&mut g, &mut rng, config.playout_cap, &mut seq, &mut stats);
                SearchResult {
                    score,
                    sequence: seq,
                    stats,
                }
            } else {
                nested(&child, level, config, &mut rng)
            };
            (mv, res)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Binary-decision toy game with a unique optimal line: at each of
    /// `depth` steps choose 0 or 1; the score is the number of 1s, but a 1
    /// is only counted when all earlier choices were 1 too. Greedy per-step
    /// play and random play both solve it; it sanity-checks plumbing.
    #[derive(Clone, Debug)]
    struct AllOnes {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for AllOnes {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            let mut s = 0;
            for &m in &self.taken {
                if m == 1 {
                    s += 1;
                } else {
                    break;
                }
            }
            s
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    /// A trap game where per-step greedy evaluation backed by a *single*
    /// random playout is unreliable, but memorising the best full sequence
    /// guarantees the returned score is achieved by the returned sequence.
    #[derive(Clone, Debug)]
    struct Trap {
        taken: Vec<u8>,
    }

    impl Game for Trap {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < 3 {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            // Base-3 reading of the path; unique maximum at [2,2,2].
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn fresh(depth: usize) -> AllOnes {
        AllOnes {
            depth,
            taken: Vec::new(),
        }
    }

    #[test]
    fn sample_reaches_terminal_and_reports_consistent_sequence() {
        let g = fresh(6);
        let mut rng = Rng::seeded(1);
        let r = sample(&g, &mut rng);
        assert_eq!(r.sequence.len(), 6);
        assert_eq!(r.stats.playouts, 1);
        assert_eq!(r.stats.playout_moves, 6);
        // Replaying the sequence reproduces the score.
        let mut replay = fresh(6);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
    }

    #[test]
    fn nested_level1_solves_small_games() {
        let g = fresh(5);
        let mut rng = Rng::seeded(7);
        let r = nested(&g, 1, &NestedConfig::paper(), &mut rng);
        assert_eq!(r.score, 5, "level-1 NMCS should find the all-ones line");
        assert_eq!(r.sequence, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn nested_level2_solves_trap_game() {
        let g = Trap { taken: vec![] };
        let mut rng = Rng::seeded(3);
        let r = nested(&g, 2, &NestedConfig::paper(), &mut rng);
        assert_eq!(r.score, 26, "optimum is [2,2,2] scoring 2*9+2*3+2");
        assert_eq!(r.sequence, vec![2, 2, 2]);
    }

    #[test]
    fn memorised_score_matches_replayed_sequence_on_every_seed() {
        for seed in 0..50 {
            let g = Trap { taken: vec![] };
            let mut rng = Rng::seeded(seed);
            let r = nested(&g, 1, &NestedConfig::paper(), &mut rng);
            let mut replay = Trap { taken: vec![] };
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
        }
    }

    #[test]
    fn greedy_policy_returns_played_game_score() {
        for seed in 0..20 {
            let g = Trap { taken: vec![] };
            let mut rng = Rng::seeded(seed);
            let r = nested(&g, 1, &NestedConfig::greedy(), &mut rng);
            let mut replay = Trap { taken: vec![] };
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert_eq!(r.sequence.len(), 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Trap { taken: vec![] };
        let a = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(11));
        let b = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(11));
        assert_eq!(a.score, b.score);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn level0_is_a_single_playout() {
        let g = fresh(4);
        let r = nested(&g, 0, &NestedConfig::paper(), &mut Rng::seeded(5));
        assert_eq!(r.stats.playouts, 1);
        assert_eq!(r.sequence.len(), 4);
    }

    #[test]
    fn nested_on_terminal_position_returns_empty_sequence() {
        let g = fresh(0);
        let r = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(1));
        assert_eq!(r.score, 0);
        assert!(r.sequence.is_empty());
    }

    #[test]
    fn playout_cap_limits_sample_length() {
        let g = fresh(100);
        let mut stats = SearchStats::new();
        let mut seq = Vec::new();
        let mut game = g.clone();
        let mut rng = Rng::seeded(2);
        sample_into(&mut game, &mut rng, Some(10), &mut seq, &mut stats);
        assert_eq!(seq.len(), 10);
        assert_eq!(stats.playout_moves, 10);
    }

    #[test]
    fn higher_level_never_worse_on_average() {
        // NMCS's defining property: level k+1 amplifies level k. On the
        // trap game, average over seeds must improve (strictly, here).
        let avg = |level: u32| -> f64 {
            (0..40)
                .map(|seed| {
                    let g = Trap { taken: vec![] };
                    nested(&g, level, &NestedConfig::paper(), &mut Rng::seeded(seed)).score as f64
                })
                .sum::<f64>()
                / 40.0
        };
        let l0 = avg(0);
        let l1 = avg(1);
        let l2 = avg(2);
        assert!(l1 > l0, "level1 {l1} should beat level0 {l0}");
        assert!(l2 >= l1, "level2 {l2} should not be worse than level1 {l1}");
        assert_eq!(l2, 26.0, "level 2 solves the 27-leaf trap exactly");
    }

    #[test]
    fn evaluate_moves_orders_and_seeds_deterministically() {
        let g = Trap { taken: vec![] };
        let seeds = |i: usize| 1000 + i as u64;
        let a = evaluate_moves(&g, 1, &NestedConfig::paper(), seeds);
        let b = evaluate_moves(&g, 1, &NestedConfig::paper(), seeds);
        assert_eq!(a.len(), 3);
        for ((ma, ra), (mb, rb)) in a.iter().zip(b.iter()) {
            assert_eq!(ma, mb);
            assert_eq!(ra.score, rb.score);
            assert_eq!(ra.sequence, rb.sequence);
        }
        // Moves come back in legal_moves order.
        assert_eq!(a[0].0, 0);
        assert_eq!(a[1].0, 1);
        assert_eq!(a[2].0, 2);
    }

    #[test]
    fn evaluate_moves_level0_uses_single_playouts() {
        let g = Trap { taken: vec![] };
        let evals = evaluate_moves(&g, 0, &NestedConfig::paper(), |i| i as u64);
        for (_, r) in &evals {
            assert_eq!(r.stats.playouts, 1);
        }
    }

    #[test]
    fn stats_accumulate_across_recursion() {
        let g = Trap { taken: vec![] };
        let r = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(4));
        // Level 2 over a 3-ary depth-3 game: 3 steps at top; each expansion
        // triggers a level-1 search. There must be strictly more playouts
        // than top-level expansions.
        assert!(r.stats.playouts > r.stats.expansions / 2);
        assert!(r.stats.work_units >= r.stats.playout_moves + r.stats.nested_moves);
    }
}
