//! The paper's §III: random sampling and Nested Monte-Carlo Search.
//!
//! Two entry points:
//!
//! * [`sample`] — "the basic sample function just plays a random game from
//!   a given position" and returns its score (and the sequence it played).
//! * [`nested_with`] — "the nested rollout function plays a game, choosing
//!   at each step of the game the move that has the highest score of the
//!   lower level nested rollout", with the *memorised best sequence*
//!   behaviour of the paper's pseudocode (lines 7–11): whenever a
//!   lower-level evaluation beats the best score seen so far in this call,
//!   the whole continuation is memorised, and the game always advances
//!   along the memorised sequence.
//!
//! The memorisation matters: at high levels most per-step evaluations fail
//! to beat the incumbent, and without the memory the search would discard
//! the good continuation it has already paid to discover. The
//! [`MemoryPolicy::Greedy`] variant reproduces the *parallel* pseudocode of
//! §IV, which plays the per-step argmax without cross-step memory — the
//! difference is measured by an ablation benchmark.
//!
//! The preferred front door is [`crate::spec::SearchSpec`]
//! (`SearchSpec::nested(2).seed(42).run(&game)`), which adds budgets and
//! cancellation on top of the raw functions here. Every loop in this
//! module polls a [`SearchCtx`] so deadlines, playout/node budgets, and
//! cancel tokens are honoured identically across all backends; the polls
//! never touch the RNG, so an unbudgeted run through the spec is
//! bit-identical to the historical direct calls.

use crate::ctx::SearchCtx;
use crate::game::{Game, Score, Undo};
use crate::rng::Rng;
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};

/// Reusable buffers for the allocation-free playout core.
///
/// A playout needs a legal-move buffer (and, on the restoring variant, a
/// stack of undo tokens); keeping them in one value lets a search run
/// thousands of playouts without touching the allocator after warm-up.
pub struct PlayoutScratch<G: Game> {
    moves: Vec<G::Move>,
    undos: Vec<Undo<G>>,
}

impl<G: Game> Default for PlayoutScratch<G> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: Game> PlayoutScratch<G> {
    pub fn new() -> Self {
        PlayoutScratch {
            moves: Vec::new(),
            undos: Vec::new(),
        }
    }

    /// Plays a uniformly random game forward on a *disposable* position
    /// (mutating it to the terminal position), appending the moves played
    /// to `seq`, and returns the final score. Draw-for-draw identical to
    /// [`sample_into`], minus its per-call buffer allocation.
    ///
    /// Budget/cancellation polls go through `ctx` — one check per playout
    /// move, the shared choke point every backend's playouts pass through.
    // nmcs-lint: hot-entry
    pub fn run(
        &mut self,
        game: &mut G,
        rng: &mut Rng,
        cap: Option<usize>,
        seq: &mut Vec<G::Move>,
        ctx: &mut SearchCtx,
    ) -> Score {
        let mut steps = 0usize;
        loop {
            if let Some(c) = cap {
                if steps >= c {
                    break;
                }
            }
            if ctx.should_stop() {
                break;
            }
            game.legal_moves_into(&mut self.moves);
            if self.moves.is_empty() {
                break;
            }
            let mv = self.moves.swap_remove(rng.below(self.moves.len()));
            game.play(&mv);
            seq.push(mv);
            ctx.record_playout_move();
            steps += 1;
        }
        ctx.record_playout_end();
        game.score()
    }

    /// Like [`PlayoutScratch::run`], but *restores* `game` to its entry
    /// state through the scratch-state protocol before returning — the
    /// engine of the clone-free level-1 evaluation loop.
    ///
    /// Only worthwhile on games where [`Game::supports_undo`] is true:
    /// the fallback snapshot `apply` would pay one full clone per move.
    // nmcs-lint: hot-entry
    pub fn run_undo(
        &mut self,
        game: &mut G,
        rng: &mut Rng,
        cap: Option<usize>,
        seq: &mut Vec<G::Move>,
        ctx: &mut SearchCtx,
    ) -> Score {
        debug_assert!(self.undos.is_empty(), "re-entrant playout");
        let mut steps = 0usize;
        loop {
            if let Some(c) = cap {
                if steps >= c {
                    break;
                }
            }
            if ctx.should_stop() {
                break;
            }
            game.legal_moves_into(&mut self.moves);
            if self.moves.is_empty() {
                break;
            }
            let mv = self.moves.swap_remove(rng.below(self.moves.len()));
            self.undos.push(game.apply(&mv));
            seq.push(mv);
            ctx.record_playout_move();
            steps += 1;
        }
        ctx.record_playout_end();
        let score = game.score();
        game.undo_all(&mut self.undos);
        score
    }
}

/// Per-recursion-level buffers of the clone-free nested search; one set
/// exists per level because exactly one call per level is active at a
/// time.
struct LevelBufs<G: Game> {
    moves: Vec<G::Move>,
    seq: Vec<G::Move>,
    undos: Vec<Undo<G>>,
}

impl<G: Game> Default for LevelBufs<G> {
    fn default() -> Self {
        LevelBufs {
            moves: Vec::new(),
            seq: Vec::new(),
            undos: Vec::new(),
        }
    }
}

/// Buffers shared by one clone-free [`nested_with`] call tree.
pub(crate) struct NestedScratch<G: Game> {
    levels: Vec<LevelBufs<G>>,
    playout: PlayoutScratch<G>,
}

impl<G: Game> NestedScratch<G> {
    pub(crate) fn new(level: u32) -> Self {
        NestedScratch {
            levels: (0..level).map(|_| LevelBufs::default()).collect(),
            playout: PlayoutScratch::new(),
        }
    }
}

/// Outcome of a search: the best score found and the move sequence that
/// realises it (from the position the search was called on).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult<M> {
    /// Best score found.
    pub score: Score,
    /// Moves realising `score`, in play order from the root position.
    pub sequence: Vec<M>,
    /// Instrumentation counters for this call (including sub-searches).
    pub stats: SearchStats,
}

/// How `nested` advances its game between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Follow the globally best sequence found so far in this call
    /// (sequential pseudocode, §III lines 7–11). The default.
    #[default]
    Memorise,
    /// Play the best move of the *current* step only (parallel pseudocode,
    /// §IV: root and median processes play "the move with best score").
    Greedy,
}

/// Tunables for [`nested_with`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedConfig {
    /// Cross-step memory policy.
    pub memory: MemoryPolicy,
    /// Hard cap on the number of moves a single random playout may make;
    /// `None` plays to termination. Used by scaled-down experiments, never
    /// by the paper-faithful ones.
    pub playout_cap: Option<usize>,
}

impl Default for NestedConfig {
    fn default() -> Self {
        Self {
            memory: MemoryPolicy::Memorise,
            playout_cap: None,
        }
    }
}

impl NestedConfig {
    /// Paper-faithful configuration (memorised sequence, uncapped playouts).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Greedy per-step configuration matching the parallel pseudocode.
    pub fn greedy() -> Self {
        Self {
            memory: MemoryPolicy::Greedy,
            playout_cap: None,
        }
    }
}

/// Ctx-threaded core of [`sample_into`]; every playout in the workspace
/// funnels through here or through [`PlayoutScratch`], which is what
/// makes budget checks uniform across backends.
pub(crate) fn sample_ctx<G: Game>(
    game: &mut G,
    rng: &mut Rng,
    cap: Option<usize>,
    seq: &mut Vec<G::Move>,
    ctx: &mut SearchCtx,
) -> Score {
    let mut buf: Vec<G::Move> = Vec::new();
    let mut steps = 0usize;
    loop {
        if let Some(c) = cap {
            if steps >= c {
                break;
            }
        }
        if ctx.should_stop() {
            break;
        }
        buf.clear();
        game.legal_moves(&mut buf);
        if buf.is_empty() {
            break;
        }
        let mv = buf.swap_remove(rng.below(buf.len()));
        game.play(&mv);
        seq.push(mv);
        ctx.record_playout_move();
        steps += 1;
    }
    ctx.record_playout_end();
    game.score()
}

/// Plays a uniformly random game from `game` (mutating it to the terminal
/// position), appends the moves played to `seq`, and returns the final
/// score.
///
/// This is the paper's `sample` function; `cap` bounds the playout length
/// for scaled experiments (`None` = play to the end).
pub fn sample_into<G: Game>(
    game: &mut G,
    rng: &mut Rng,
    cap: Option<usize>,
    seq: &mut Vec<G::Move>,
    stats: &mut SearchStats,
) -> Score {
    let mut ctx = SearchCtx::unbounded();
    let score = sample_ctx(game, rng, cap, seq, &mut ctx);
    stats.merge(ctx.stats());
    score
}

/// Plays a uniformly random game from a copy of `game` and returns the
/// result. Convenience wrapper over [`sample_into`].
pub fn sample<G: Game>(game: &G, rng: &mut Rng) -> SearchResult<G::Move> {
    let mut stats = SearchStats::new();
    let mut seq = Vec::new();
    let mut g = game.clone();
    let score = sample_into(&mut g, rng, None, &mut seq, &mut stats);
    SearchResult {
        score,
        sequence: seq,
        stats,
    }
}

/// Nested Monte-Carlo Search at `level` from `game`.
///
/// * `level == 0` degenerates to a single random playout (useful as a
///   baseline; the paper starts at level 1).
/// * `level == 1` evaluates each candidate move with one random playout.
/// * `level >= 2` evaluates each candidate move with a `level - 1` search.
///
/// Returns the best score found, the full move sequence realising it, and
/// the accumulated statistics. With [`MemoryPolicy::Memorise`] the returned
/// score equals the score of the position reached by replaying the returned
/// sequence.
#[deprecated(note = "use SearchSpec::nested(level) — the unified search API")]
pub fn nested<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
) -> SearchResult<G::Move> {
    let mut ctx = SearchCtx::unbounded();
    let (score, sequence) = nested_with(game, level, config, rng, &mut ctx);
    SearchResult {
        score,
        sequence,
        stats: ctx.into_stats(),
    }
}

/// Nested Monte-Carlo Search at `level` from `game`, accounting into (and
/// honouring the budget/cancellation of) `ctx`.
///
/// This is the engine room behind `SearchSpec::run` for the `Nested`
/// strategy and behind the parallel backends' client evaluations; the
/// deprecated [`nested`] free function is a thin shim over it with an
/// unbounded context. If the context interrupts the search, the returned
/// pair is still consistent: the score is realised by replaying the
/// returned sequence (the memorising policy fast-forwards its memorised
/// continuation without further evaluations before returning).
pub fn nested_with<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    // Games implementing the scratch-state protocol take the clone-free
    // path: one clone up front, apply/undo everywhere below. The two
    // paths are draw-for-draw identical (asserted by the property tests),
    // so this is purely a throughput decision.
    if level >= 1 && game.supports_undo() {
        let mut pos = game.clone();
        let mut scratch = NestedScratch::new(level);
        nested_scratch(&mut pos, level, config, rng, ctx, &mut scratch)
    } else {
        nested_inner(game, level, config, rng, ctx)
    }
}

/// Clone-free nested search over a game with the apply/undo fast path.
///
/// Mirrors [`nested_inner`] decision-for-decision, but walks a single
/// mutable position: candidate evaluations `apply` the move, evaluate in
/// place (a restoring playout at level 1, a recursive call at level ≥ 2),
/// and `undo`; the memorised-sequence advance applies with a token that
/// the final unwind pops, so `pos` is returned to the caller exactly as
/// it came in.
// nmcs-lint: hot-entry
fn nested_scratch<G: Game>(
    pos: &mut G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
    scratch: &mut NestedScratch<G>,
) -> (Score, Vec<G::Move>) {
    debug_assert!(level >= 1);
    let mut bufs = std::mem::take(&mut scratch.levels[level as usize - 1]);
    // `best_seq[..played]` is the prefix already played by this call;
    // `best_seq[played..]` is the memorised best continuation.
    // nmcs-lint: allow(hot-path) reason="the returned best-sequence buffer: one empty Vec per nested call (no allocation until moves land), handed to the caller as the result"
    let mut best_seq: Vec<G::Move> = Vec::new();
    let mut played = 0usize;
    let mut best_score = Score::MIN;

    loop {
        pos.legal_moves_into(&mut bufs.moves);
        if bufs.moves.is_empty() {
            break;
        }
        if ctx.should_stop() {
            break;
        }

        let mut step_best: Option<(Score, usize)> = None;
        for i in 0..bufs.moves.len() {
            // Once interrupted, no new evaluations may start; the ones
            // already finished stay incorporated in the memory.
            if ctx.should_stop() {
                break;
            }
            let token = pos.apply(&bufs.moves[i]);
            ctx.record_expansion();

            let score = if level == 1 {
                bufs.seq.clear();
                scratch
                    .playout
                    .run_undo(pos, rng, config.playout_cap, &mut bufs.seq, ctx)
            } else {
                let (s, seq) = nested_scratch(pos, level - 1, config, rng, ctx, scratch);
                bufs.seq = seq;
                s
            };
            pos.undo(token);

            // Track the best move of *this step* (for the greedy policy) …
            if step_best.is_none_or(|(s, _)| score > s) {
                step_best = Some((score, i));
            }
            // … and the best sequence of the *whole call* (paper lines 7–9).
            if score > best_score {
                best_score = score;
                best_seq.truncate(played);
                best_seq.push(bufs.moves[i].clone());
                best_seq.extend(bufs.seq.iter().cloned());
            }
        }
        if ctx.interruption().is_some() {
            break;
        }

        // Paper lines 10–11 (see `nested_inner` for the fallback rules).
        let follow_memory = config.memory == MemoryPolicy::Memorise && played < best_seq.len();
        let next = if follow_memory {
            best_seq[played].clone()
        } else {
            let (_, idx) = step_best.expect("non-empty move list");
            let mv = bufs.moves[idx].clone();
            if best_seq.len() <= played || best_seq[played] != mv {
                best_seq.truncate(played);
                best_seq.push(mv.clone());
                best_score = Score::MIN;
            }
            mv
        };
        bufs.undos.push(pos.apply(&next));
        played += 1;
        ctx.record_nested_move();
    }

    // Interrupted with a memorised continuation pending: fast-forward it
    // with plain move applications (no further evaluations, no RNG), so
    // the returned score is realised by the returned sequence exactly as
    // in an uninterrupted run.
    if ctx.interruption().is_some() && config.memory == MemoryPolicy::Memorise {
        while played < best_seq.len() {
            let mv = best_seq[played].clone();
            bufs.undos.push(pos.apply(&mv));
            played += 1;
            ctx.record_nested_move();
        }
    }

    if played > 0
        && config.memory == MemoryPolicy::Memorise
        && config.playout_cap.is_none()
        && ctx.interruption().is_none()
    {
        debug_assert_eq!(
            best_score,
            pos.score(),
            "memorised sequence must reach the memorised score"
        );
        debug_assert_eq!(played, best_seq.len());
    }
    let final_score = pos.score();
    // Unwind the whole played prefix: the caller gets its position back.
    pos.undo_all(&mut bufs.undos);
    best_seq.truncate(played);
    scratch.levels[level as usize - 1] = bufs;
    (final_score, best_seq)
}

fn nested_inner<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    rng: &mut Rng,
    ctx: &mut SearchCtx,
) -> (Score, Vec<G::Move>) {
    if level == 0 {
        let mut g = game.clone();
        let mut seq = Vec::new();
        let score = sample_ctx(&mut g, rng, config.playout_cap, &mut seq, ctx);
        return (score, seq);
    }

    let mut pos = game.clone();
    // `best_seq[..played]` is the prefix already played by this call;
    // `best_seq[played..]` is the memorised best continuation.
    let mut best_seq: Vec<G::Move> = Vec::new();
    let mut played = 0usize;
    let mut best_score = Score::MIN;
    let mut moves: Vec<G::Move> = Vec::new();
    // Workhorse buffer reused by level-1 playout evaluations.
    let mut scratch_seq: Vec<G::Move> = Vec::new();

    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        if ctx.should_stop() {
            break;
        }

        let mut step_best: Option<(Score, usize)> = None;
        for (i, mv) in moves.iter().enumerate() {
            // Once interrupted, no new evaluations may start.
            if ctx.should_stop() {
                break;
            }
            let mut child = pos.clone();
            child.play(mv);
            ctx.record_expansion();

            let (score, continuation) = if level == 1 {
                scratch_seq.clear();
                let s = sample_ctx(&mut child, rng, config.playout_cap, &mut scratch_seq, ctx);
                (s, &scratch_seq)
            } else {
                let (s, seq) = nested_inner(&child, level - 1, config, rng, ctx);
                scratch_seq = seq;
                (s, &scratch_seq)
            };

            // Track the best move of *this step* (for the greedy policy) …
            if step_best.is_none_or(|(s, _)| score > s) {
                step_best = Some((score, i));
            }
            // … and the best sequence of the *whole call* (paper lines 7–9).
            if score > best_score {
                best_score = score;
                best_seq.truncate(played);
                best_seq.push(mv.clone());
                best_seq.extend(continuation.iter().cloned());
            }
        }
        if ctx.interruption().is_some() {
            break;
        }

        // Paper lines 10–11: play the next move of the memorised best
        // sequence. Fallbacks: the greedy policy always plays this step's
        // argmax, and a capped search whose memorised (capped) continuation
        // is exhausted must extend it with the step argmax.
        let follow_memory = config.memory == MemoryPolicy::Memorise && played < best_seq.len();
        let next = if follow_memory {
            best_seq[played].clone()
        } else {
            let (_, idx) = step_best.expect("non-empty move list");
            let mv = moves[idx].clone();
            // Keep best_seq aligned with the actually-played prefix; the
            // incumbent continuation (if any) is abandoned.
            if best_seq.len() <= played || best_seq[played] != mv {
                best_seq.truncate(played);
                best_seq.push(mv.clone());
                best_score = Score::MIN;
            }
            mv
        };
        pos.play(&next);
        played += 1;
        ctx.record_nested_move();
    }

    // Interrupted: fast-forward the memorised continuation (see
    // `nested_scratch`) so score and sequence stay consistent.
    if ctx.interruption().is_some() && config.memory == MemoryPolicy::Memorise {
        while played < best_seq.len() {
            let mv = best_seq[played].clone();
            pos.play(&mv);
            played += 1;
            ctx.record_nested_move();
        }
    }

    if played > 0
        && config.memory == MemoryPolicy::Memorise
        && config.playout_cap.is_none()
        && ctx.interruption().is_none()
    {
        debug_assert_eq!(
            best_score,
            pos.score(),
            "memorised sequence must reach the memorised score"
        );
        debug_assert_eq!(played, best_seq.len());
    }
    // The game was advanced to a true terminal position along
    // `best_seq[..played]`, so the pair below is consistent by construction
    // under every policy (and equals the memorised optimum in the
    // paper-faithful configuration, per the assertions above).
    best_seq.truncate(played);
    (pos.score(), best_seq)
}

/// Evaluates every legal move of `game` with a `level`-search and returns
/// `(move, result)` pairs in move-list order.
///
/// This is the decomposition point the parallel algorithms exploit: the
/// root process farms one entry per move to the median processes, and each
/// median farms its own entries to clients (paper §IV). Keeping it here
/// lets the parallel crates and the sequential search share evaluation
/// semantics (including seed derivation order).
pub fn evaluate_moves<G: Game>(
    game: &G,
    level: u32,
    config: &NestedConfig,
    seeds: impl Fn(usize) -> u64,
) -> Vec<(G::Move, SearchResult<G::Move>)> {
    let mut moves = Vec::new();
    game.legal_moves(&mut moves);
    if game.supports_undo() {
        // Clone-free evaluation: one position walked with apply/undo.
        let mut pos = game.clone();
        let mut scratch = NestedScratch::new(level.max(1));
        return moves
            .into_iter()
            .enumerate()
            .map(|(i, mv)| {
                let mut rng = Rng::seeded(seeds(i));
                let mut ctx = SearchCtx::unbounded();
                let token = pos.apply(&mv);
                let (score, sequence) = if level == 0 {
                    let mut seq = Vec::new();
                    let score = scratch.playout.run_undo(
                        &mut pos,
                        &mut rng,
                        config.playout_cap,
                        &mut seq,
                        &mut ctx,
                    );
                    (score, seq)
                } else {
                    nested_scratch(&mut pos, level, config, &mut rng, &mut ctx, &mut scratch)
                };
                pos.undo(token);
                (
                    mv,
                    SearchResult {
                        score,
                        sequence,
                        stats: ctx.into_stats(),
                    },
                )
            })
            .collect();
    }
    moves
        .into_iter()
        .enumerate()
        .map(|(i, mv)| {
            let mut child = game.clone();
            child.play(&mv);
            let mut rng = Rng::seeded(seeds(i));
            let mut ctx = SearchCtx::unbounded();
            let res = if level == 0 {
                let mut seq = Vec::new();
                let mut g = child.clone();
                let score = sample_ctx(&mut g, &mut rng, config.playout_cap, &mut seq, &mut ctx);
                SearchResult {
                    score,
                    sequence: seq,
                    stats: ctx.into_stats(),
                }
            } else {
                let (score, sequence) = nested_with(&child, level, config, &mut rng, &mut ctx);
                SearchResult {
                    score,
                    sequence,
                    stats: ctx.into_stats(),
                }
            };
            (mv, res)
        })
        .collect()
}

// The unit tests intentionally keep exercising the deprecated free
// functions: they are the regression net asserting the shims stay
// bit-identical to the historical behaviour (new-API coverage lives in
// `spec.rs` and `tests/budget_props.rs`).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;

    /// Binary-decision toy game with a unique optimal line: at each of
    /// `depth` steps choose 0 or 1; the score is the number of 1s, but a 1
    /// is only counted when all earlier choices were 1 too. Greedy per-step
    /// play and random play both solve it; it sanity-checks plumbing.
    #[derive(Clone, Debug)]
    struct AllOnes {
        depth: usize,
        taken: Vec<u8>,
    }

    impl Game for AllOnes {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < self.depth {
                out.extend_from_slice(&[0, 1]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            let mut s = 0;
            for &m in &self.taken {
                if m == 1 {
                    s += 1;
                } else {
                    break;
                }
            }
            s
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    /// A trap game where per-step greedy evaluation backed by a *single*
    /// random playout is unreliable, but memorising the best full sequence
    /// guarantees the returned score is achieved by the returned sequence.
    #[derive(Clone, Debug)]
    struct Trap {
        taken: Vec<u8>,
    }

    impl Game for Trap {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if self.taken.len() < 3 {
                out.extend_from_slice(&[0, 1, 2]);
            }
        }
        fn play(&mut self, mv: &u8) {
            self.taken.push(*mv);
        }
        fn score(&self) -> Score {
            // Base-3 reading of the path; unique maximum at [2,2,2].
            self.taken.iter().fold(0, |acc, &m| acc * 3 + m as Score)
        }
        fn moves_played(&self) -> usize {
            self.taken.len()
        }
    }

    fn fresh(depth: usize) -> AllOnes {
        AllOnes {
            depth,
            taken: Vec::new(),
        }
    }

    /// `Trap` with the scratch-state fast path: identical game, clone-free
    /// search. Used to assert the two paths are draw-for-draw identical.
    #[derive(Clone, Debug)]
    struct FastTrap(Trap);

    impl Game for FastTrap {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            self.0.legal_moves(out);
        }
        fn play(&mut self, mv: &u8) {
            self.0.play(mv);
        }
        fn score(&self) -> Score {
            self.0.score()
        }
        fn moves_played(&self) -> usize {
            self.0.moves_played()
        }
        fn supports_undo(&self) -> bool {
            true
        }
        fn apply(&mut self, mv: &u8) -> crate::game::Undo<Self> {
            self.0.play(mv);
            crate::game::Undo::internal()
        }
        fn undo(&mut self, token: crate::game::Undo<Self>) {
            debug_assert!(token.is_internal());
            self.0.taken.pop().expect("undo without apply");
        }
    }

    #[test]
    fn undo_path_is_bit_identical_to_clone_path() {
        for seed in 0..20 {
            for level in 1..=3 {
                for config in [NestedConfig::paper(), NestedConfig::greedy()] {
                    let slow = nested(
                        &Trap { taken: vec![] },
                        level,
                        &config,
                        &mut Rng::seeded(seed),
                    );
                    let fast = nested(
                        &FastTrap(Trap { taken: vec![] }),
                        level,
                        &config,
                        &mut Rng::seeded(seed),
                    );
                    assert_eq!(fast.score, slow.score, "seed {seed} level {level}");
                    assert_eq!(fast.sequence, slow.sequence, "seed {seed} level {level}");
                    assert_eq!(fast.stats, slow.stats, "seed {seed} level {level}");
                }
            }
        }
    }

    #[test]
    fn undo_path_respects_playout_caps() {
        for seed in 0..10 {
            let cfg = NestedConfig {
                memory: MemoryPolicy::Memorise,
                playout_cap: Some(2),
            };
            let slow = nested(&Trap { taken: vec![] }, 1, &cfg, &mut Rng::seeded(seed));
            let fast = nested(
                &FastTrap(Trap { taken: vec![] }),
                1,
                &cfg,
                &mut Rng::seeded(seed),
            );
            assert_eq!(fast.score, slow.score, "seed {seed}");
            assert_eq!(fast.sequence, slow.sequence, "seed {seed}");
        }
    }

    #[test]
    fn evaluate_moves_fast_path_matches_clone_path() {
        for level in 0..3 {
            let seeds = |i: usize| 7_000 + i as u64;
            let slow = evaluate_moves(
                &Trap { taken: vec![] },
                level,
                &NestedConfig::paper(),
                seeds,
            );
            let fast = evaluate_moves(
                &FastTrap(Trap { taken: vec![] }),
                level,
                &NestedConfig::paper(),
                seeds,
            );
            assert_eq!(slow.len(), fast.len());
            for ((ms, rs), (mf, rf)) in slow.iter().zip(fast.iter()) {
                assert_eq!(ms, mf, "level {level}");
                assert_eq!(rs.score, rf.score, "level {level}");
                assert_eq!(rs.sequence, rf.sequence, "level {level}");
                assert_eq!(rs.stats, rf.stats, "level {level}");
            }
        }
    }

    #[test]
    fn run_undo_restores_the_position_and_matches_sample_into() {
        let root = FastTrap(Trap { taken: vec![] });
        let mut scratch = PlayoutScratch::new();
        for seed in 0..20 {
            let mut pos = root.clone();
            let mut seq = Vec::new();
            let mut ctx = SearchCtx::unbounded();
            let score =
                scratch.run_undo(&mut pos, &mut Rng::seeded(seed), None, &mut seq, &mut ctx);
            assert_eq!(pos.0.taken, root.0.taken, "seed {seed}: position restored");

            let mut clone = root.clone();
            let mut seq2 = Vec::new();
            let mut stats2 = SearchStats::new();
            let score2 = sample_into(
                &mut clone,
                &mut Rng::seeded(seed),
                None,
                &mut seq2,
                &mut stats2,
            );
            assert_eq!(score, score2, "seed {seed}");
            assert_eq!(seq, seq2, "seed {seed}");
            assert_eq!(*ctx.stats(), stats2, "seed {seed}");
        }
    }

    #[test]
    fn sample_reaches_terminal_and_reports_consistent_sequence() {
        let g = fresh(6);
        let mut rng = Rng::seeded(1);
        let r = sample(&g, &mut rng);
        assert_eq!(r.sequence.len(), 6);
        assert_eq!(r.stats.playouts, 1);
        assert_eq!(r.stats.playout_moves, 6);
        // Replaying the sequence reproduces the score.
        let mut replay = fresh(6);
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), r.score);
    }

    #[test]
    fn nested_level1_solves_small_games() {
        let g = fresh(5);
        let mut rng = Rng::seeded(7);
        let r = nested(&g, 1, &NestedConfig::paper(), &mut rng);
        assert_eq!(r.score, 5, "level-1 NMCS should find the all-ones line");
        assert_eq!(r.sequence, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn nested_level2_solves_trap_game() {
        let g = Trap { taken: vec![] };
        let mut rng = Rng::seeded(3);
        let r = nested(&g, 2, &NestedConfig::paper(), &mut rng);
        assert_eq!(r.score, 26, "optimum is [2,2,2] scoring 2*9+2*3+2");
        assert_eq!(r.sequence, vec![2, 2, 2]);
    }

    #[test]
    fn memorised_score_matches_replayed_sequence_on_every_seed() {
        for seed in 0..50 {
            let g = Trap { taken: vec![] };
            let mut rng = Rng::seeded(seed);
            let r = nested(&g, 1, &NestedConfig::paper(), &mut rng);
            let mut replay = Trap { taken: vec![] };
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
        }
    }

    #[test]
    fn greedy_policy_returns_played_game_score() {
        for seed in 0..20 {
            let g = Trap { taken: vec![] };
            let mut rng = Rng::seeded(seed);
            let r = nested(&g, 1, &NestedConfig::greedy(), &mut rng);
            let mut replay = Trap { taken: vec![] };
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert_eq!(r.sequence.len(), 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Trap { taken: vec![] };
        let a = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(11));
        let b = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(11));
        assert_eq!(a.score, b.score);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn shim_equals_ctx_entry_point_seed_for_seed() {
        // The deprecated shim and the ctx-threaded engine room must stay
        // bit-identical (this is the contract the shims advertise).
        for seed in 0..10 {
            for level in 0..3 {
                let shim = nested(
                    &Trap { taken: vec![] },
                    level,
                    &NestedConfig::paper(),
                    &mut Rng::seeded(seed),
                );
                let mut ctx = SearchCtx::unbounded();
                let (score, sequence) = nested_with(
                    &Trap { taken: vec![] },
                    level,
                    &NestedConfig::paper(),
                    &mut Rng::seeded(seed),
                    &mut ctx,
                );
                assert_eq!(shim.score, score, "seed {seed} level {level}");
                assert_eq!(shim.sequence, sequence, "seed {seed} level {level}");
                assert_eq!(shim.stats, ctx.into_stats(), "seed {seed} level {level}");
            }
        }
    }

    #[test]
    fn level0_is_a_single_playout() {
        let g = fresh(4);
        let r = nested(&g, 0, &NestedConfig::paper(), &mut Rng::seeded(5));
        assert_eq!(r.stats.playouts, 1);
        assert_eq!(r.sequence.len(), 4);
    }

    #[test]
    fn nested_on_terminal_position_returns_empty_sequence() {
        let g = fresh(0);
        let r = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(1));
        assert_eq!(r.score, 0);
        assert!(r.sequence.is_empty());
    }

    #[test]
    fn playout_cap_limits_sample_length() {
        let mut stats = SearchStats::new();
        let mut seq = Vec::new();
        let mut game = fresh(100);
        let mut rng = Rng::seeded(2);
        sample_into(&mut game, &mut rng, Some(10), &mut seq, &mut stats);
        assert_eq!(seq.len(), 10);
        assert_eq!(stats.playout_moves, 10);
    }

    #[test]
    fn higher_level_never_worse_on_average() {
        // NMCS's defining property: level k+1 amplifies level k. On the
        // trap game, average over seeds must improve (strictly, here).
        let avg = |level: u32| -> f64 {
            (0..40)
                .map(|seed| {
                    let g = Trap { taken: vec![] };
                    nested(&g, level, &NestedConfig::paper(), &mut Rng::seeded(seed)).score as f64
                })
                .sum::<f64>()
                / 40.0
        };
        let l0 = avg(0);
        let l1 = avg(1);
        let l2 = avg(2);
        assert!(l1 > l0, "level1 {l1} should beat level0 {l0}");
        assert!(l2 >= l1, "level2 {l2} should not be worse than level1 {l1}");
        assert_eq!(l2, 26.0, "level 2 solves the 27-leaf trap exactly");
    }

    #[test]
    fn evaluate_moves_orders_and_seeds_deterministically() {
        let g = Trap { taken: vec![] };
        let seeds = |i: usize| 1000 + i as u64;
        let a = evaluate_moves(&g, 1, &NestedConfig::paper(), seeds);
        let b = evaluate_moves(&g, 1, &NestedConfig::paper(), seeds);
        assert_eq!(a.len(), 3);
        for ((ma, ra), (mb, rb)) in a.iter().zip(b.iter()) {
            assert_eq!(ma, mb);
            assert_eq!(ra.score, rb.score);
            assert_eq!(ra.sequence, rb.sequence);
        }
        // Moves come back in legal_moves order.
        assert_eq!(a[0].0, 0);
        assert_eq!(a[1].0, 1);
        assert_eq!(a[2].0, 2);
    }

    #[test]
    fn evaluate_moves_level0_uses_single_playouts() {
        let g = Trap { taken: vec![] };
        let evals = evaluate_moves(&g, 0, &NestedConfig::paper(), |i| i as u64);
        for (_, r) in &evals {
            assert_eq!(r.stats.playouts, 1);
        }
    }

    #[test]
    fn stats_accumulate_across_recursion() {
        let g = Trap { taken: vec![] };
        let r = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(4));
        // Level 2 over a 3-ary depth-3 game: 3 steps at top; each expansion
        // triggers a level-1 search. There must be strictly more playouts
        // than top-level expansions.
        assert!(r.stats.playouts > r.stats.expansions / 2);
        assert!(r.stats.work_units >= r.stats.playout_moves + r.stats.nested_moves);
    }
}
