//! The [`Game`] abstraction searched by NMCS.
//!
//! The paper's algorithms are described for single-agent score-maximisation
//! problems ("the algorithm tries to find the sequence of moves that
//! maximizes \[the score\]", §III). The trait below captures exactly what
//! `sample` and `nested` need: cheap position cloning, legal move
//! enumeration, move application, and a score.

/// The score of a game; the search maximises it.
///
/// Integer scores make the per-move `argmax` exact and deterministic —
/// important because the parallel backends must agree bit-for-bit with the
/// sequential search. Domains with fractional objectives should scale them
/// to integers (e.g. TSP tour lengths in integer units).
pub type Score = i64;

/// SplitMix64 finaliser — the workspace's one bit-mixing primitive for
/// position hashing. `mix64(coordinate ^ salt)` is a Zobrist key computed
/// on the fly: full avalanche, no lookup tables, no allocation, so
/// [`Game::state_hash`] implementations can stay hot-path clean without
/// carrying per-game random tables.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Domain-separation salt of the default [`Game::state_hash`], so the
/// weak fallback digest never collides structurally with a real
/// implementation's keys.
const STATE_HASH_FALLBACK_SALT: u64 = 0x5e55_10f0_9b3a_7c41;

/// An undo token returned by [`Game::apply`] and consumed by
/// [`Game::undo`].
///
/// Two shapes, one type:
///
/// * [`Undo::snapshot`] carries a boxed copy of the pre-move state — the
///   blanket fallback every game gets for free from `Clone`.
/// * [`Undo::internal`] is an empty marker meaning the game recorded its
///   own reversal data internally (an undo journal inside the game
///   struct). Games on this fast path must override **both** `apply` and
///   `undo`, and tokens must be consumed in strict LIFO order with no
///   interleaved [`Game::play`] calls — the journal is a stack.
///
/// The token is deliberately not `Clone`: it represents the one right to
/// revert the matching `apply`.
#[must_use = "an un-consumed undo token leaves the game permanently advanced"]
pub struct Undo<G> {
    snapshot: Option<Box<G>>,
}

impl<G> Undo<G> {
    /// A token carrying a full pre-move snapshot (the fallback path).
    pub fn snapshot(state: G) -> Self {
        Undo {
            // nmcs-lint: allow(hot-path) reason="the snapshot token exists to box a full state copy; fast-path games return Undo::internal and never reach it"
            snapshot: Some(Box::new(state)),
        }
    }

    /// A token for a game that journals its own reversal data.
    pub fn internal() -> Self {
        Undo { snapshot: None }
    }

    /// Whether this token relies on the game's internal journal.
    pub fn is_internal(&self) -> bool {
        self.snapshot.is_none()
    }

    /// Extracts the snapshot, if the token carries one.
    pub fn into_snapshot(self) -> Option<Box<G>> {
        self.snapshot
    }
}

impl<G> std::fmt::Debug for Undo<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_internal() {
            "Undo::internal"
        } else {
            "Undo::snapshot"
        })
    }
}

/// A single-agent, perfect-information, finite game searched by NMCS.
///
/// Implementations must satisfy:
///
/// * **Determinism** — `play` is a pure state transition; `legal_moves`
///   and `score` depend only on the current state.
/// * **Finiteness** — every playout reaches a state with no legal moves in
///   a bounded number of steps (Morpion games are bounded by the grid,
///   SameGame by the number of tiles, …).
/// * **Cheap `Clone`** — the fallback search path clones the position once
///   per candidate move per step; a flat memcpy-style clone keeps level-3+
///   searches affordable when the scratch-state protocol below is not
///   implemented.
///
/// ## The scratch-state protocol (opt-in fast path)
///
/// The hot loop of every search is the random playout, and the dominant
/// cost of the naive implementation is cloning the full game state per
/// candidate evaluation. Games that can *revert* a move cheaply should
/// implement [`Game::apply`] / [`Game::undo`] (and return `true` from
/// [`Game::supports_undo`]): the searches in this crate then run their
/// playouts and nested rollouts in place on a single mutable position,
/// never cloning on the hot path. Requirements for the fast path:
///
/// * `apply` behaves exactly like `play` as far as any observer can tell
///   (same state transition, same subsequent `legal_moves` **order** —
///   move ordering feeds the RNG, so a reordering would silently change
///   search results);
/// * `undo` restores the position *exactly*, including the order of the
///   legal-move list;
/// * tokens are consumed LIFO, with no interleaved `play` between an
///   `apply` and its `undo`.
///
/// Games that don't opt in keep working unchanged: the default `apply`
/// snapshots via `Clone`, and the searches keep their clone-per-candidate
/// strategy (which is cheaper than snapshot-per-move would be).
pub trait Game: Clone {
    /// The move type. `Clone + PartialEq` suffice for sequence memoisation.
    type Move: Clone + PartialEq + std::fmt::Debug;

    /// Appends every legal move of the current position to `out`.
    ///
    /// `out` is a caller-provided workhorse buffer (cleared by the caller)
    /// so hot playout loops do not allocate per step.
    fn legal_moves(&self, out: &mut Vec<Self::Move>);

    /// Applies a legal move to the position.
    ///
    /// Passing a move that is not currently legal is a logic error; the
    /// implementation may panic or corrupt the game state (debug builds of
    /// the bundled games panic).
    fn play(&mut self, mv: &Self::Move);

    /// The score of the current position; compared at terminal states.
    ///
    /// For Morpion Solitaire this is the number of moves played, so the
    /// score is monotone along a game. That monotonicity is *not* required
    /// by the search.
    fn score(&self) -> Score;

    /// Number of moves played from the initial position.
    ///
    /// The Last-Minute dispatcher uses this as its expected-remaining-time
    /// estimate (paper §IV-B: "the expected computation time is estimated
    /// with the number of moves already played").
    fn moves_played(&self) -> usize;

    /// Whether the game is over (no legal moves).
    ///
    /// The default enumerates moves into a scratch vector; implementations
    /// with a cached candidate list should override it.
    fn is_terminal(&self) -> bool {
        let mut buf = Vec::new();
        self.legal_moves(&mut buf);
        buf.is_empty()
    }

    /// Clears `out` and fills it with the current legal moves — the
    /// hot-loop entry point of the playout core, equivalent to
    /// `out.clear()` followed by [`Game::legal_moves`]. Exists so callers
    /// can reuse one buffer across an entire search without sprinkling
    /// `clear()` calls, and so cached-candidate games have a single place
    /// to shortcut.
    // nmcs-lint: hot-entry
    fn legal_moves_into(&self, out: &mut Vec<Self::Move>) {
        out.clear();
        self.legal_moves(out);
    }

    /// A 64-bit hash of the current position — the transposition-table
    /// key of the tree-reuse search path.
    ///
    /// Contract: positions that are observably equal (same board, same
    /// score, same future) must hash equal; positions with different
    /// futures should hash differently with overwhelming probability.
    /// The hash must depend only on the observable position — a state
    /// reached via [`Game::play`] and the same state reached via
    /// [`Game::apply`] (with its undo journal pending) hash identically,
    /// and [`Game::undo`] restores the previous hash exactly.
    ///
    /// Called once per tree expansion on the search hot path, so
    /// implementations must be allocation-free (the `nmcs-lint` hot-path
    /// pass checks every implementation in the workspace). Games with an
    /// undo journal should maintain the hash incrementally in
    /// `apply`/`undo` (Zobrist XOR via [`mix64`]) or fold over their
    /// compact state on demand.
    ///
    /// The default mixes only `(moves_played, score)` — a weak snapshot
    /// digest that never distinguishes siblings with equal score. It
    /// keeps every existing game compiling; real domains override it.
    // nmcs-lint: hot-entry
    fn state_hash(&self) -> u64 {
        let a = mix64(self.moves_played() as u64 ^ STATE_HASH_FALLBACK_SALT);
        mix64(a ^ (self.score() as u64))
    }

    /// Whether this game implements the O(move)-cost [`Game::apply`] /
    /// [`Game::undo`] fast path.
    ///
    /// The default (snapshot-based) protocol returns `false`; searches
    /// then keep the clone-per-evaluation strategy instead of paying a
    /// full snapshot per playout move.
    fn supports_undo(&self) -> bool {
        false
    }

    /// Applies a legal move like [`Game::play`] and returns a token that
    /// [`Game::undo`] consumes to revert it.
    ///
    /// The default snapshots the whole state; fast-path games override it
    /// to journal a small reversal delta internally and return
    /// [`Undo::internal`].
    fn apply(&mut self, mv: &Self::Move) -> Undo<Self> {
        let snapshot = Undo::snapshot(self.clone());
        self.play(mv);
        snapshot
    }

    /// Reverts the most recent not-yet-undone [`Game::apply`] (strict
    /// LIFO; see the trait docs for the full protocol).
    ///
    /// Panics if handed an [`Undo::internal`] token by a game that does
    /// not override `undo` — that means `apply` was overridden without
    /// its other half.
    fn undo(&mut self, token: Undo<Self>) {
        match token.into_snapshot() {
            Some(snapshot) => *self = *snapshot,
            None => panic!("game returned Undo::internal() but does not override undo"),
        }
    }

    /// Reverts a whole stack of applies (newest first), draining
    /// `tokens`. Equivalent to popping and [`Game::undo`]ing one by one —
    /// the default does exactly that — but overridable so wrappers that
    /// maintain per-position caches (notably the [`crate::DynGame`]
    /// erasure) can refresh them once per unwind instead of once per
    /// token. Playout unwinds go through this.
    fn undo_all(&mut self, tokens: &mut Vec<Undo<Self>>) {
        while let Some(token) = tokens.pop() {
            self.undo(token);
        }
    }
}

/// Adapter that hides a game's scratch-state fast path, forcing every
/// search back onto the snapshot/clone fallback.
///
/// Exists for A/B measurement (the `clone-path vs undo-path` criterion
/// benches) and for tests asserting the two paths produce bit-identical
/// results. Not useful in production code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotOnly<G>(pub G);

impl<G: Game> Game for SnapshotOnly<G> {
    type Move = G::Move;

    fn legal_moves(&self, out: &mut Vec<Self::Move>) {
        self.0.legal_moves(out);
    }

    fn play(&mut self, mv: &Self::Move) {
        self.0.play(mv);
    }

    fn score(&self) -> Score {
        self.0.score()
    }

    fn moves_played(&self) -> usize {
        self.0.moves_played()
    }

    fn is_terminal(&self) -> bool {
        self.0.is_terminal()
    }

    // The position is the inner game's position, so its hash passes
    // through — A/B runs over the adapter intern the same table keys.
    fn state_hash(&self) -> u64 {
        self.0.state_hash()
    }

    // `supports_undo`, `apply`, `undo` deliberately stay at their
    // defaults: that is the whole point of the adapter.
}

impl<G: crate::nrpa::CodedGame> crate::nrpa::CodedGame for SnapshotOnly<G> {
    fn move_code(&self, mv: &Self::Move) -> u64 {
        self.0.move_code(mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal game used to exercise the default `is_terminal`.
    #[derive(Clone)]
    struct Countdown(u32);

    impl Game for Countdown {
        type Move = ();
        fn legal_moves(&self, out: &mut Vec<()>) {
            if self.0 > 0 {
                out.push(());
            }
        }
        fn play(&mut self, _: &()) {
            self.0 -= 1;
        }
        fn score(&self) -> Score {
            -(self.0 as Score)
        }
        fn moves_played(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_is_terminal_matches_move_list() {
        assert!(!Countdown(2).is_terminal());
        assert!(Countdown(0).is_terminal());
    }

    #[test]
    fn default_apply_undo_round_trips_via_snapshot() {
        let mut g = Countdown(3);
        assert!(!g.supports_undo());
        let token = g.apply(&());
        assert!(!token.is_internal());
        assert_eq!(g.0, 2);
        g.undo(token);
        assert_eq!(g.0, 3);
    }

    #[test]
    fn default_legal_moves_into_clears_the_buffer() {
        let g = Countdown(1);
        let mut buf = vec![(), (), ()];
        g.legal_moves_into(&mut buf);
        assert_eq!(buf.len(), 1);
        Countdown(0).legal_moves_into(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn snapshot_only_hides_nothing_but_the_fast_path() {
        let mut wrapped = SnapshotOnly(Countdown(2));
        assert!(!wrapped.supports_undo());
        assert!(!wrapped.is_terminal());
        let t = wrapped.apply(&());
        assert_eq!(wrapped.0 .0, 1);
        wrapped.undo(t);
        assert_eq!(wrapped.0 .0, 2);
    }

    #[test]
    fn mix64_avalanches_and_is_stable() {
        // The zero fixed point is pinned: every salt in the workspace is
        // non-zero precisely because mix64(0) == 0.
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // One-bit input flips change roughly half the output bits.
        let d = (mix64(7) ^ mix64(6)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }

    #[test]
    fn default_state_hash_tracks_the_observable_surface() {
        let a = Countdown(3);
        let b = Countdown(3);
        assert_eq!(a.state_hash(), b.state_hash());
        let mut c = Countdown(3);
        c.play(&());
        assert_ne!(a.state_hash(), c.state_hash(), "score changed");
        // SnapshotOnly hashes like the game it wraps.
        assert_eq!(SnapshotOnly(Countdown(3)).state_hash(), a.state_hash());
    }

    #[test]
    fn playing_to_the_end_terminates() {
        let mut g = Countdown(5);
        let mut buf = Vec::new();
        let mut steps = 0;
        loop {
            buf.clear();
            g.legal_moves(&mut buf);
            let Some(mv) = buf.first().cloned() else {
                break;
            };
            g.play(&mv);
            steps += 1;
        }
        assert_eq!(steps, 5);
        assert_eq!(g.score(), 0);
    }
}
