//! The [`Game`] abstraction searched by NMCS.
//!
//! The paper's algorithms are described for single-agent score-maximisation
//! problems ("the algorithm tries to find the sequence of moves that
//! maximizes \[the score\]", §III). The trait below captures exactly what
//! `sample` and `nested` need: cheap position cloning, legal move
//! enumeration, move application, and a score.

/// The score of a game; the search maximises it.
///
/// Integer scores make the per-move `argmax` exact and deterministic —
/// important because the parallel backends must agree bit-for-bit with the
/// sequential search. Domains with fractional objectives should scale them
/// to integers (e.g. TSP tour lengths in integer units).
pub type Score = i64;

/// A single-agent, perfect-information, finite game searched by NMCS.
///
/// Implementations must satisfy:
///
/// * **Determinism** — `play` is a pure state transition; `legal_moves`
///   and `score` depend only on the current state.
/// * **Finiteness** — every playout reaches a state with no legal moves in
///   a bounded number of steps (Morpion games are bounded by the grid,
///   SameGame by the number of tiles, …).
/// * **Cheap `Clone`** — `nested` clones the position once per candidate
///   move per step; a flat memcpy-style clone keeps level-3+ searches
///   affordable.
pub trait Game: Clone {
    /// The move type. `Clone + PartialEq` suffice for sequence memoisation.
    type Move: Clone + PartialEq + std::fmt::Debug;

    /// Appends every legal move of the current position to `out`.
    ///
    /// `out` is a caller-provided workhorse buffer (cleared by the caller)
    /// so hot playout loops do not allocate per step.
    fn legal_moves(&self, out: &mut Vec<Self::Move>);

    /// Applies a legal move to the position.
    ///
    /// Passing a move that is not currently legal is a logic error; the
    /// implementation may panic or corrupt the game state (debug builds of
    /// the bundled games panic).
    fn play(&mut self, mv: &Self::Move);

    /// The score of the current position; compared at terminal states.
    ///
    /// For Morpion Solitaire this is the number of moves played, so the
    /// score is monotone along a game. That monotonicity is *not* required
    /// by the search.
    fn score(&self) -> Score;

    /// Number of moves played from the initial position.
    ///
    /// The Last-Minute dispatcher uses this as its expected-remaining-time
    /// estimate (paper §IV-B: "the expected computation time is estimated
    /// with the number of moves already played").
    fn moves_played(&self) -> usize;

    /// Whether the game is over (no legal moves).
    ///
    /// The default enumerates moves into a scratch vector; implementations
    /// with a cached candidate list should override it.
    fn is_terminal(&self) -> bool {
        let mut buf = Vec::new();
        self.legal_moves(&mut buf);
        buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal game used to exercise the default `is_terminal`.
    #[derive(Clone)]
    struct Countdown(u32);

    impl Game for Countdown {
        type Move = ();
        fn legal_moves(&self, out: &mut Vec<()>) {
            if self.0 > 0 {
                out.push(());
            }
        }
        fn play(&mut self, _: &()) {
            self.0 -= 1;
        }
        fn score(&self) -> Score {
            -(self.0 as Score)
        }
        fn moves_played(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_is_terminal_matches_move_list() {
        assert!(!Countdown(2).is_terminal());
        assert!(Countdown(0).is_terminal());
    }

    #[test]
    fn playing_to_the_end_terminates() {
        let mut g = Countdown(5);
        let mut buf = Vec::new();
        let mut steps = 0;
        loop {
            buf.clear();
            g.legal_moves(&mut buf);
            let Some(mv) = buf.first().cloned() else {
                break;
            };
            g.play(&mv);
            steps += 1;
        }
        assert_eq!(steps, 5);
        assert_eq!(g.score(), 0);
    }
}
