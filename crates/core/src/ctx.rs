//! The cooperative budget/cancellation context threaded through every
//! search loop.
//!
//! A [`SearchCtx`] bundles the instrumentation counters ([`SearchStats`])
//! with the run's stopping conditions: an optional wall-clock deadline,
//! optional playout/node budgets (shared across worker threads through an
//! atomic meter), and an optional [`CancelToken`]. Every search in this
//! crate polls [`SearchCtx::should_stop`] at its loop boundaries — the
//! *same* check in the serial, leaf-parallel, and root-parallel code
//! paths, which is what makes budgets behave identically across backends.
//!
//! Two properties are load-bearing:
//!
//! * **The checks never touch the RNG.** A search that does not hit its
//!   budget draws exactly the same random numbers as an unbudgeted run,
//!   so results are bit-identical (asserted by `tests/budget_props.rs`).
//! * **Interruption is sticky.** Once any limit trips, every subsequent
//!   `should_stop` call answers `true`, so deeply nested recursions
//!   unwind promptly, and parallel workers observe each other's trip
//!   through the shared meter.

use crate::report::Interruption;
use crate::spec::{Budget, CancelToken};
use crate::stats::SearchStats;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many `should_stop` polls pass between `Instant::now()` reads when
/// a deadline is set. Playout steps run in the 0.1–1 µs range, so the
/// deadline is honoured to within a few microseconds while the hot loop
/// pays a clock read only once per stride.
///
/// The *first* poll of a context always reads the clock (see
/// [`SearchCtx::should_stop`]): a search whose individual iterations
/// are expensive (a deep nested rollout, a slow domain) must not run 31
/// of them past a short deadline before noticing the clock at all. The
/// stride only amortises polls *after* that first read.
const DEADLINE_STRIDE: u32 = 32;

/// Countdown start for a fresh context: the first poll reads the clock.
const FIRST_POLL: u32 = 1;

/// Budget counters shared by every worker of one search run.
struct BudgetMeter {
    max_playouts: Option<u64>,
    max_nodes: Option<u64>,
    playouts: AtomicU64,
    nodes: AtomicU64,
    /// Latched interruption kind (`0` = none); see [`Interruption`].
    tripped: AtomicU8,
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_PLAYOUTS: u8 = 2;
const TRIP_NODES: u8 = 3;

impl BudgetMeter {
    fn trip(&self, kind: u8) {
        // First trip wins; later (possibly different) trips keep it.
        let _ = self
            .tripped
            .compare_exchange(TRIP_NONE, kind, Ordering::AcqRel, Ordering::Acquire);
    }

    fn tripped_as(&self) -> Option<Interruption> {
        match self.tripped.load(Ordering::Acquire) {
            TRIP_NONE => None,
            TRIP_DEADLINE => Some(Interruption::Deadline),
            TRIP_PLAYOUTS => Some(Interruption::PlayoutBudget),
            _ => Some(Interruption::NodeBudget),
        }
    }
}

/// Per-search context: stats plus the stopping conditions.
///
/// Construct one with [`SearchCtx::unbounded`] (no limits — the blank
/// context the deprecated free functions run under) or
/// [`SearchCtx::new`] (from a [`Budget`] and optional [`CancelToken`]).
/// Parallel backends give each worker a [`SearchCtx::fork`] and merge the
/// workers back with [`SearchCtx::absorb`].
pub struct SearchCtx {
    stats: SearchStats,
    deadline: Option<Instant>,
    meter: Option<Arc<BudgetMeter>>,
    cancel: Option<CancelToken>,
    interrupted: Option<Interruption>,
    /// Countdown to the next deadline poll.
    poll: u32,
}

impl SearchCtx {
    /// A context with no budget and no cancellation: `should_stop` is
    /// always `false`, and the only job is accumulating stats.
    pub fn unbounded() -> Self {
        SearchCtx {
            stats: SearchStats::new(),
            deadline: None,
            meter: None,
            cancel: None,
            interrupted: None,
            poll: FIRST_POLL,
        }
    }

    /// A context enforcing `budget` (the deadline clock starts *now*)
    /// and observing `cancel` if provided.
    pub fn new(budget: &Budget, cancel: Option<&CancelToken>) -> Self {
        let meter = if budget.is_limited() {
            Some(Arc::new(BudgetMeter {
                max_playouts: budget.max_playouts,
                max_nodes: budget.max_nodes,
                playouts: AtomicU64::new(0),
                nodes: AtomicU64::new(0),
                tripped: AtomicU8::new(TRIP_NONE),
            }))
        } else {
            None
        };
        SearchCtx {
            stats: SearchStats::new(),
            deadline: budget.deadline.map(|d| Instant::now() + d),
            meter,
            cancel: cancel.cloned(),
            interrupted: None,
            poll: FIRST_POLL,
        }
    }

    /// A worker-thread context sharing this context's budget meter,
    /// deadline, and cancel token, with fresh local stats. Merge it back
    /// with [`SearchCtx::absorb`].
    pub fn fork(&self) -> Self {
        SearchCtx {
            stats: SearchStats::new(),
            deadline: self.deadline,
            meter: self.meter.clone(),
            cancel: self.cancel.clone(),
            interrupted: self.interrupted,
            poll: FIRST_POLL,
        }
    }

    /// Merges a forked worker context back: stats add up, and the first
    /// observed interruption sticks.
    pub fn absorb(&mut self, worker: SearchCtx) {
        self.stats.merge(&worker.stats);
        if self.interrupted.is_none() {
            self.interrupted = worker.interrupted;
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Consumes the context, returning its counters.
    pub fn into_stats(self) -> SearchStats {
        self.stats
    }

    /// Why the search stopped early, if it did.
    pub fn interruption(&self) -> Option<Interruption> {
        self.interrupted
    }

    /// Polls every stopping condition. Cheap (a few branches) when
    /// unbudgeted; never touches any RNG. Once `true`, stays `true`.
    #[inline]
    pub fn should_stop(&mut self) -> bool {
        if self.interrupted.is_some() {
            return true;
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                self.interrupted = Some(Interruption::Cancelled);
                return true;
            }
        }
        if let Some(meter) = &self.meter {
            if let Some(kind) = meter.tripped_as() {
                self.interrupted = Some(kind);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            self.poll = self.poll.saturating_sub(1);
            if self.poll == 0 {
                self.poll = DEADLINE_STRIDE;
                // nmcs-lint: allow(hot-path) reason="strided deadline poll: one clock read per DEADLINE_STRIDE playout steps is the documented budget contract"
                if Instant::now() >= deadline {
                    self.interrupted = Some(Interruption::Deadline);
                    // Let sibling workers see the trip without waiting
                    // for their own clock poll.
                    if let Some(meter) = &self.meter {
                        meter.trip(TRIP_DEADLINE);
                    }
                    return true;
                }
            }
        }
        false
    }

    // ---- recorders (the shared accounting choke points) --------------

    #[inline]
    pub(crate) fn record_playout_move(&mut self) {
        self.stats.record_playout_move();
    }

    #[inline]
    pub(crate) fn record_playout_end(&mut self) {
        self.stats.record_playout_end();
        if let Some(meter) = &self.meter {
            if let Some(max) = meter.max_playouts {
                if meter.playouts.fetch_add(1, Ordering::AcqRel) + 1 >= max {
                    meter.trip(TRIP_PLAYOUTS);
                }
            }
        }
    }

    #[inline]
    pub(crate) fn record_nested_move(&mut self) {
        self.stats.record_nested_move();
    }

    #[inline]
    pub(crate) fn record_expansion(&mut self) {
        self.stats.record_expansion();
        if let Some(meter) = &self.meter {
            if let Some(max) = meter.max_nodes {
                if meter.nodes.fetch_add(1, Ordering::AcqRel) + 1 >= max {
                    meter.trip(TRIP_NODES);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_never_stops() {
        let mut ctx = SearchCtx::unbounded();
        for _ in 0..10_000 {
            assert!(!ctx.should_stop());
        }
        assert_eq!(ctx.interruption(), None);
    }

    #[test]
    fn cancel_token_stops_and_sticks() {
        let token = CancelToken::new();
        let mut ctx = SearchCtx::new(&Budget::none(), Some(&token));
        assert!(!ctx.should_stop());
        token.cancel();
        assert!(ctx.should_stop());
        assert_eq!(ctx.interruption(), Some(Interruption::Cancelled));
        // Sticky even though the token check short-circuits now.
        assert!(ctx.should_stop());
    }

    #[test]
    fn playout_budget_trips_at_the_limit() {
        let budget = Budget::none().with_max_playouts(3);
        let mut ctx = SearchCtx::new(&budget, None);
        for _ in 0..2 {
            ctx.record_playout_end();
            assert!(!ctx.should_stop());
        }
        ctx.record_playout_end();
        assert!(ctx.should_stop());
        assert_eq!(ctx.interruption(), Some(Interruption::PlayoutBudget));
    }

    #[test]
    fn node_budget_counts_expansions() {
        let budget = Budget::none().with_max_nodes(2);
        let mut ctx = SearchCtx::new(&budget, None);
        ctx.record_expansion();
        assert!(!ctx.should_stop());
        ctx.record_expansion();
        assert!(ctx.should_stop());
        assert_eq!(ctx.interruption(), Some(Interruption::NodeBudget));
    }

    #[test]
    fn forked_workers_share_the_meter() {
        let budget = Budget::none().with_max_playouts(2);
        let mut main = SearchCtx::new(&budget, None);
        let mut a = main.fork();
        let mut b = main.fork();
        a.record_playout_end();
        b.record_playout_end();
        // Either fork now observes the shared trip.
        assert!(a.should_stop());
        assert!(b.should_stop());
        main.absorb(a);
        main.absorb(b);
        assert_eq!(main.stats().playouts, 2);
        assert!(main.should_stop());
        assert_eq!(main.interruption(), Some(Interruption::PlayoutBudget));
    }

    #[test]
    fn elapsed_deadline_stops_within_a_stride() {
        let budget = Budget::none().with_deadline(Duration::ZERO);
        let mut ctx = SearchCtx::new(&budget, None);
        let mut polls = 0;
        while !ctx.should_stop() {
            polls += 1;
            assert!(polls <= DEADLINE_STRIDE, "deadline never observed");
        }
        assert_eq!(ctx.interruption(), Some(Interruption::Deadline));
    }

    #[test]
    fn the_very_first_poll_reads_the_clock() {
        // Regression: the countdown used to start at DEADLINE_STRIDE, so
        // a search with slow iterations could overshoot a short deadline
        // by 31 expensive rollouts before its first clock read. The
        // first poll must observe an already-elapsed deadline.
        let budget = Budget::none().with_deadline(Duration::ZERO);
        let mut ctx = SearchCtx::new(&budget, None);
        assert!(ctx.should_stop(), "first poll must read the clock");
        assert_eq!(ctx.interruption(), Some(Interruption::Deadline));

        // Forked worker contexts inherit the same first-poll behaviour.
        let parent = SearchCtx::new(&budget, None);
        let mut worker = parent.fork();
        assert!(
            worker.should_stop(),
            "forked first poll must read the clock"
        );
    }
}
