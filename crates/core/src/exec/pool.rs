//! The persistent executor pool behind the in-core parallel backends.
//!
//! Before this module existed, the leaf- and root-parallel executors
//! spawned a fresh set of `std::thread::scope` workers at **every step**
//! of the top-level game — the throughput ceiling ROADMAP flags for
//! small boards, where a step's evaluation work is comparable to the
//! cost of spawning the threads that do it. An [`ExecutorPool`] keeps
//! its workers alive for as long as the pool lives, so a whole game
//! (hundreds of steps) pays the spawn cost once.
//!
//! Topology (mirroring the engine's job pool, scaled down to in-search
//! granularity):
//!
//! * one *injector* queue that [`ExecutorPool::run_batch`] submits to;
//! * one local deque per worker — a worker grabs a small batch from the
//!   injector, runs from the front of its deque, and banks the surplus
//!   where siblings can *steal* from the back;
//! * idle workers park on a condvar and are woken by new submissions
//!   (with a timeout as a lost-wakeup safety net);
//! * dropping the pool sets a shutdown flag, wakes everyone, and joins
//!   every worker — no detached threads survive the pool.
//!
//! ## The batch protocol
//!
//! [`ExecutorPool::run_batch`]`(slots, body)` runs `body(0)`,
//! `body(1)`, … `body(slots - 1)`, each exactly once, and returns when
//! all of them have finished. Slot `0` always runs on the *calling*
//! thread (the caller is a worker too — a pool with zero background
//! workers degrades to fully inline execution), and the caller then
//! helps drain its own still-queued slots before parking, so a batch
//! can never deadlock waiting for workers that are busy elsewhere.
//!
//! The body is a plain `&dyn Fn(usize)` borrowing the caller's stack —
//! exactly like a scoped thread body. Soundness of handing that borrow
//! to long-lived workers rests on one invariant, enforced by a drop
//! guard: **`run_batch` does not return (or unwind) until every
//! dispatched slot has finished running.**
//!
//! A panicking slot does not take the pool down: the payload is caught
//! on the worker, carried back to the submitting call, and re-thrown
//! there once the batch has drained — later submissions run normally
//! (`tests/pool_props.rs` proves drain-on-drop, panic containment, and
//! prompt budget-cancelled returns).

use crate::metrics::{metrics_enabled, PoolMetrics, WorkerClock};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a parked worker sleeps before re-checking for work even
/// without a wakeup. **Pure defence-in-depth**, not a correctness
/// mechanism: every publish bumps the wakeup generation counter under
/// the injector lock (see [`Injector::wake_gen`]), so a worker never
/// parks across a publish it has not yet scanned for. If a stall ever
/// *does* depend on this timeout, that is a bug — and the tests run
/// pools with a timeout long enough to surface it as one
/// (`ExecutorPool::with_park_timeout`).
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// A persistent pool of search-executor workers. See the module docs
/// for the topology and the batch protocol.
pub struct ExecutorPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

/// The submission queue plus the wakeup generation counter, under one
/// mutex so "work was published" and "a parker would have been woken"
/// are a single atomic observation.
struct Injector {
    queue: VecDeque<Task>,
    /// Bumped (under this mutex) by every publish — injector pushes,
    /// surplus banked into a local deque, shutdown. A worker records
    /// the generation before scanning for work and refuses to park if
    /// it moved: a notify that raced the scan becomes a rescan instead
    /// of a lost wakeup.
    wake_gen: u64,
}

struct PoolShared {
    /// Submission queue; guarded by its own mutex, paired with
    /// `work_ready` for park/unpark.
    injector: Mutex<Injector>,
    work_ready: Condvar,
    /// Per-worker deques; siblings steal from the back.
    locals: Vec<Mutex<VecDeque<Task>>>,
    shutdown: AtomicBool,
    /// Tasks run by a thread other than their submitter after sitting in
    /// a sibling's local deque — the observable work-stealing counter.
    steals: AtomicU64,
    /// See [`PARK_TIMEOUT`]; tests shrink or stretch it per pool.
    park_timeout: Duration,
    /// Lock-free counters/clocks for this pool (see [`PoolMetrics`]).
    /// Event counters and the idle-workers gauge update unconditionally
    /// (plain relaxed RMWs); the per-worker busy/idle clocks take their
    /// `Instant` readings only while [`metrics_enabled`] — the knob the
    /// overhead-guard test flips.
    metrics: PoolMetrics,
}

impl PoolShared {
    fn lock_injector(&self) -> MutexGuard<'_, Injector> {
        self.injector.lock()
    }

    fn lock_local(&self, idx: usize) -> MutexGuard<'_, VecDeque<Task>> {
        self.locals[idx].lock()
    }

    /// Records a publish that parked workers cannot see in the injector
    /// queue (surplus banked in a local deque, shutdown). Publishes via
    /// the injector bump the generation in the same critical section as
    /// their push.
    fn bump_wake_gen(&self) {
        self.lock_injector().wake_gen += 1;
        self.metrics.wakeups.incr();
    }
}

/// One schedulable unit: slot `slot` of one submitted batch.
struct Task {
    batch: Arc<BatchCore>,
    slot: usize,
}

impl Task {
    fn run(self) {
        // The lifetime-erased borrow is valid: the submitter blocks in
        // `run_batch` until `pending` hits zero, which happens strictly
        // after this call returns.
        let outcome = catch_unwind(AssertUnwindSafe(|| (self.batch.body)(self.slot)));
        let mut done = self.batch.lock_done();
        if let Err(payload) = outcome {
            // First panic wins; it is re-thrown by the submitter.
            done.panic.get_or_insert(payload);
        }
        done.pending -= 1;
        if done.pending == 0 {
            self.batch.done_cond.notify_all();
        }
    }
}

/// Completion state of one `run_batch` call.
struct BatchDone {
    /// Dispatched slots not yet finished.
    pending: usize,
    /// First panic payload caught on a worker, if any.
    panic: Option<Box<dyn Any + Send>>,
}

struct BatchCore {
    /// The caller's slot body with its lifetime erased (see the module
    /// docs for the soundness argument).
    body: &'static (dyn Fn(usize) + Sync),
    done: Mutex<BatchDone>,
    done_cond: Condvar,
}

impl BatchCore {
    fn lock_done(&self) -> MutexGuard<'_, BatchDone> {
        self.done.lock()
    }
}

impl ExecutorPool {
    /// A pool with `background_workers` long-lived worker threads.
    ///
    /// Zero is allowed: every batch then runs inline on the submitting
    /// thread, which is exactly the right degenerate form for
    /// single-threaded specs and keeps them trivially deterministic.
    pub fn new(background_workers: usize) -> Self {
        Self::with_park_timeout(background_workers, PARK_TIMEOUT)
    }

    /// [`ExecutorPool::new`] with an explicit park timeout. Exposed for
    /// the lost-wakeup tests: a pool whose timeout is much longer than
    /// the expected batch latency turns a lost notify into a visible
    /// stall instead of a 50 ms hiccup the net would mask.
    #[doc(hidden)]
    pub fn with_park_timeout(background_workers: usize, park_timeout: Duration) -> Self {
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(Injector {
                queue: VecDeque::new(),
                wake_gen: 0,
            }),
            work_ready: Condvar::new(),
            locals: (0..background_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            park_timeout,
            metrics: PoolMetrics::new(background_workers),
        });
        let workers = (0..background_workers)
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("nmcs-exec-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    // nmcs-lint: allow(panic-discipline) reason="OS refusing to spawn at pool construction is unrecoverable; fail fast before any work is accepted"
                    .expect("spawn executor pool worker")
            })
            .collect();
        ExecutorPool { shared, workers }
    }

    /// Number of background workers (the submitting thread adds one more
    /// to every batch, so peak parallelism is `background_workers() + 1`).
    pub fn background_workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Tasks that ran on a thread other than the one that banked them —
    /// the pool's work-stealing counter (monotonic; test observability).
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// This pool's metrics registry: park/wakeup/steal/batch counters,
    /// the idle-workers gauge (what the `leaf_batch_dynamic` heuristic
    /// reads), and per-worker busy/idle clocks. All reads are atomics.
    pub fn metrics(&self) -> &PoolMetrics {
        &self.shared.metrics
    }

    /// The process-wide shared pool the in-core parallel executors run
    /// on, sized to the machine (`available_parallelism − 1` background
    /// workers; the submitting search thread is the `+ 1`). Created on
    /// first use and kept for the life of the process, so every search
    /// — including every replica inside the engine — reuses the same
    /// warm workers instead of spawning per run (or worse, per step).
    ///
    /// Floored at one background worker even on a single-core machine:
    /// multi-slot batches then still execute across two real threads, so
    /// the concurrency machinery (virtual loss, shared meters, stealing)
    /// is exercised everywhere instead of silently degenerating to
    /// inline execution on small boxes.
    pub fn shared() -> &'static ExecutorPool {
        static SHARED: OnceLock<ExecutorPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            ExecutorPool::new(cores.saturating_sub(1).max(1))
        })
    }

    /// Runs `body(0) … body(slots - 1)`, each exactly once, across the
    /// calling thread (slot 0) and the pool's workers, returning when
    /// every slot has finished. If any slot panicked, the first payload
    /// is re-thrown here — after the batch has fully drained, so the
    /// pool stays usable and later submissions are unaffected.
    pub fn run_batch(&self, slots: usize, body: &(dyn Fn(usize) + Sync)) {
        assert!(slots >= 1, "a batch needs at least one slot");
        self.shared.metrics.batches.incr();
        self.shared.metrics.batch_slots.add(slots as u64);
        if slots == 1 {
            // Nothing to dispatch; plain inline call, panics propagate
            // naturally.
            body(0);
            return;
        }

        // SAFETY: the erased borrow never outlives this call. The
        // `BatchGuard` below blocks — even during unwinding — until
        // every dispatched task has run, and tasks drop their clone of
        // the `Arc<BatchCore>` (the only other handle to the borrow)
        // when they finish.
        let body_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };
        let batch = Arc::new(BatchCore {
            body: body_static,
            done: Mutex::new(BatchDone {
                pending: slots - 1,
                panic: None,
            }),
            done_cond: Condvar::new(),
        });

        {
            let mut injector = self.shared.lock_injector();
            for slot in 1..slots {
                injector.queue.push_back(Task {
                    batch: batch.clone(),
                    slot,
                });
            }
            injector.wake_gen += 1;
        }
        self.shared.metrics.wakeups.incr();
        self.shared.work_ready.notify_all();

        let guard = BatchGuard {
            batch: &batch,
            shared: &self.shared,
        };
        body(0);
        drop(guard); // waits for the dispatched slots, helping drain
        let panic = batch.lock_done().panic.take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // `run_batch` borrows the pool, so no batch can be in flight
        // here; every queued task has already finished. Signal shutdown,
        // bump the wakeup generation so a worker racing toward its park
        // rescans and observes the flag, wake the parked ones, and join
        // them all.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.bump_wake_gen();
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Blocks until the batch's dispatched slots have all finished, first
/// helping to run any of them still sitting in the injector. Runs in
/// `Drop` so the wait also covers unwinding out of slot 0 — the
/// soundness lynchpin of the lifetime erasure.
struct BatchGuard<'a> {
    batch: &'a Arc<BatchCore>,
    shared: &'a PoolShared,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        // Help-first: claim this batch's still-queued slots instead of
        // idling. Tasks banked in a worker's local deque are that
        // worker's responsibility; it is alive and will run them.
        loop {
            let task = {
                let mut injector = self.shared.lock_injector();
                injector
                    .queue
                    .iter()
                    .position(|t| Arc::ptr_eq(&t.batch, self.batch))
                    .and_then(|pos| injector.queue.remove(pos))
            };
            match task {
                Some(task) => task.run(),
                None => break,
            }
        }
        let mut done = self.batch.lock_done();
        while done.pending > 0 {
            // Completion is notified under the `done` mutex itself, so
            // this wait cannot lose a wakeup; the timeout is the same
            // defence-in-depth net as the worker park.
            self.batch
                .done_cond
                .wait_for(&mut done, self.shared.park_timeout);
        }
    }
}

/// Runs a task, charging its wall time to the worker's busy clock when
/// metrics are enabled (the clock reads are the only conditional part —
/// the task always runs).
fn timed_run(task: Task, clock: &WorkerClock) {
    if metrics_enabled() {
        let t0 = Instant::now();
        task.run();
        clock
            .busy_ns
            .add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    } else {
        task.run();
    }
}

fn worker_loop(shared: &Arc<PoolShared>, idx: usize) {
    let workers = shared.locals.len();
    let clock = shared.metrics.worker(idx);
    loop {
        // 1. Own deque, oldest first. Tasks here were banked by this
        //    worker (or are steal leftovers); anything we run that a
        //    sibling banked counts as a steal below, not here.
        let task = shared.lock_local(idx).pop_front();
        if let Some(task) = task {
            timed_run(task, clock);
            continue;
        }

        // 2. Injector: grab a small batch, run one, bank the surplus
        //    where siblings can steal it. The wakeup generation is read
        //    in the same critical section as the drain — the only path
        //    that can reach the park below — so any publish after this
        //    read bumps it (under this same lock) and the park step
        //    refuses to sleep on it; any publish *before* it is either
        //    drained here or (surplus banked in a sibling's deque)
        //    visible to the steal scan in step 3. A wakeup can never be
        //    lost, timeout or no timeout.
        let (mut grabbed, observed_gen): (Vec<Task>, u64) = {
            let mut injector = shared.lock_injector();
            let n = (injector.queue.len() / workers.max(1))
                .clamp(1, 4)
                .min(injector.queue.len());
            (injector.queue.drain(..n).collect(), injector.wake_gen)
        };
        if !grabbed.is_empty() {
            let first = grabbed.remove(0);
            if !grabbed.is_empty() {
                shared.lock_local(idx).extend(grabbed);
                // The surplus is stealable work parked siblings cannot
                // see in the injector; bump the generation and wake
                // them.
                shared.bump_wake_gen();
                shared.work_ready.notify_all();
            }
            timed_run(first, clock);
            continue;
        }

        // 3. Steal from the back of a sibling's deque.
        let mut stolen = None;
        for off in 1..workers {
            let victim = (idx + off) % workers;
            if let Some(task) = shared.lock_local(victim).pop_back() {
                stolen = Some(task);
                break;
            }
        }
        if let Some(task) = stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            shared.metrics.steals.incr();
            timed_run(task, clock);
            continue;
        }

        // 4. Park — but only if nothing was published since step 0. A
        //    publish that raced the scan shows up as a moved generation
        //    and triggers a rescan instead of a sleep.
        let mut injector = shared.lock_injector();
        if shared.shutdown.load(Ordering::Acquire) && injector.queue.is_empty() {
            return;
        }
        if injector.queue.is_empty() && injector.wake_gen == observed_gen {
            shared.metrics.parks.incr();
            shared.metrics.idle_workers.add(1);
            let parked_at = metrics_enabled().then(Instant::now);
            shared
                .work_ready
                .wait_for(&mut injector, shared.park_timeout);
            if let Some(t0) = parked_at {
                clock
                    .idle_ns
                    .add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            shared.metrics.idle_workers.add(-1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_slot_runs_exactly_once() {
        let pool = ExecutorPool::new(3);
        for slots in [1usize, 2, 3, 7, 32] {
            let counts: Vec<AtomicUsize> = (0..slots).map(|_| AtomicUsize::new(0)).collect();
            pool.run_batch(slots, &|slot| {
                counts[slot].fetch_add(1, Ordering::Relaxed);
            });
            for (slot, count) in counts.iter().enumerate() {
                assert_eq!(count.load(Ordering::Relaxed), 1, "slot {slot} of {slots}");
            }
        }
    }

    #[test]
    fn zero_worker_pool_runs_batches_inline() {
        let pool = ExecutorPool::new(0);
        let ran = AtomicUsize::new(0);
        pool.run_batch(5, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        assert_eq!(pool.background_workers(), 0);
    }

    #[test]
    fn batches_borrow_the_callers_stack() {
        let pool = ExecutorPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        pool.run_batch(4, &|slot| {
            let part: u64 = data.iter().skip(slot).step_by(4).sum();
            sum.fetch_add(part, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn worker_panic_is_rethrown_on_the_submitter() {
        let pool = ExecutorPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(4, &|slot| {
                if slot == 2 {
                    panic!("slot 2 exploded");
                }
            });
        }));
        assert!(err.is_err(), "the slot panic must surface to the caller");
        // The pool survives: the next batch runs normally.
        let ran = AtomicUsize::new(0);
        pool.run_batch(4, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ExecutorPool::new(4);
        let ran = AtomicUsize::new(0);
        pool.run_batch(16, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool); // must not hang or leave threads behind
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = ExecutorPool::shared() as *const _;
        let b = ExecutorPool::shared() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn wakeups_do_not_depend_on_the_park_timeout_net() {
        // A park timeout far beyond the test budget: if any wakeup were
        // lost (workers parking across a publish), some batch — or the
        // final drop — would stall for the full timeout and blow the
        // elapsed assertion, instead of being quietly rescued by the
        // 50 ms production net.
        let pool = ExecutorPool::with_park_timeout(3, Duration::from_secs(120));
        let t0 = std::time::Instant::now();
        let ran = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run_batch(4, &|_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(ran.load(Ordering::Relaxed), 400);
        drop(pool); // shutdown must wake parked workers without the net
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "a lost wakeup stalled the pool for {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn every_publish_moves_the_wakeup_generation() {
        // The generation is the observable contract the park step keys
        // on: a batch submission must bump it at least once, so a
        // worker that scanned before the submission cannot park after.
        let pool = ExecutorPool::new(2);
        let before = pool.shared.lock_injector().wake_gen;
        pool.run_batch(3, &|_| {});
        let after = pool.shared.lock_injector().wake_gen;
        assert!(after > before, "submission did not bump wake_gen");
    }
}
