//! Regression coverage for the lock-order deadlock detector.
//!
//! The detector lives in vendored `parking_lot` (every lock in this
//! workspace goes through it — that is what the `lock-discipline` lint
//! rule enforces). These tests live in their own integration binary
//! because enabling detection is process-global.

#[cfg(debug_assertions)]
mod debug_build {
    use parking_lot::{lock_order_enabled, set_lock_order_enabled, Mutex};
    use std::sync::Arc;
    use std::thread;

    /// The seeded inversion: thread 1 takes A then B (recording the
    /// edge A→B), thread 2 takes B then A — a genuine cycle that would
    /// deadlock under unlucky scheduling. The detector must report it
    /// *before* blocking, with both acquisition orders in the message.
    #[test]
    fn seeded_ab_ba_inversion_is_reported_with_the_cycle() {
        // Default state first, while nothing has forced it: off unless
        // the environment opted in (CI runs both ways).
        let env_on = std::env::var("NMCS_LOCK_ORDER")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        assert_eq!(
            lock_order_enabled(),
            env_on,
            "detector must be off by default and on only via NMCS_LOCK_ORDER"
        );

        set_lock_order_enabled(true);
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));

        // Thread 1: consistent A → B order. Legal; records the edge.
        {
            let (a, b) = (a.clone(), b.clone());
            thread::spawn(move || {
                let ga = a.lock();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            })
            .join()
            .expect("consistent order must not trip the detector");
        }

        // Thread 2: B → A. The detector panics in the acquiring thread;
        // silence the default hook around the expected panic so the test
        // log stays clean.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = {
            thread::spawn(move || {
                let gb = b.lock();
                let ga = a.lock();
                drop(ga);
                drop(gb);
            })
            .join()
            .expect_err("B → A after A → B must be reported")
        };
        std::panic::set_hook(prev_hook);

        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("detector panics with a String report");
        assert!(
            msg.contains("lock-order inversion"),
            "report must name the inversion: {msg}"
        );
        assert!(
            msg.contains("first acquired in this order"),
            "report must carry the original acquisition order: {msg}"
        );
        assert!(
            msg.contains("acquisition backtrace"),
            "report must carry the current acquisition stack: {msg}"
        );

        // Restore the pre-test state for any later process reuse.
        set_lock_order_enabled(env_on);
    }
}

#[cfg(not(debug_assertions))]
mod release_build {
    use parking_lot::{lock_order_enabled, Mutex};
    use std::sync::Arc;
    use std::thread;

    /// Release builds compile the detector out entirely: the enabled
    /// probe is a const `false` and a seeded inversion acquires cleanly
    /// (taken in a non-deadlocking sequence here, of course).
    #[test]
    fn detector_is_compiled_out_in_release() {
        assert!(!lock_order_enabled());
        std::env::set_var("NMCS_LOCK_ORDER", "1");
        assert!(
            !lock_order_enabled(),
            "the release stub must ignore NMCS_LOCK_ORDER"
        );

        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        {
            let (a, b) = (a.clone(), b.clone());
            thread::spawn(move || {
                let ga = a.lock();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            })
            .join()
            .unwrap();
        }
        let gb = b.lock();
        let ga = a.lock();
        drop(ga);
        drop(gb);
    }
}
