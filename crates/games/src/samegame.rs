//! SameGame — the classic tile-collapsing puzzle, the other standard NMCS
//! benchmark domain (Cazenave's IJCAI'09 NMCS paper evaluates on it).
//!
//! Rules: click a group of ≥2 orthogonally-connected same-coloured tiles to
//! remove it, scoring `(n − 2)²` for a group of `n`. Tiles above fall
//! down; empty columns close up to the left. Clearing the whole board
//! earns a +1000 bonus. The game ends when no group of ≥2 remains.

use nmcs_core::{CodedGame, Game, Rng, Score};

/// Bonus for clearing the entire board.
pub const CLEAR_BONUS: Score = 1000;

/// A SameGame position. Columns are stored bottom-up, which makes gravity
/// and column removal O(column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SameGame {
    /// `cols[x][y]` = colour of the tile at column `x`, height `y`
    /// (bottom-up). Colours are `1..=colors`.
    cols: Vec<Vec<u8>>,
    width: usize,
    height: usize,
    accumulated: Score,
    moves: usize,
}

/// A move: remove the group containing this cell. `(x, y)` is the
/// *canonical* cell of the group (smallest `x`, then smallest `y`), so two
/// moves are equal iff they name the same group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tap {
    pub x: u8,
    pub y: u8,
}

impl SameGame {
    /// Builds a board from rows given top-down (as usually printed), each
    /// row a slice of colours in `1..=9`.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty());
        let width = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == width), "ragged rows");
        let height = rows.len();
        let mut cols = vec![Vec::with_capacity(height); width];
        for row in rows.iter().rev() {
            for (x, &c) in row.iter().enumerate() {
                assert!((1..=9).contains(&c), "colours are 1..=9");
                cols[x].push(c);
            }
        }
        Self {
            cols,
            width,
            height,
            accumulated: 0,
            moves: 0,
        }
    }

    /// A pseudo-random `width × height` board with `colors` colours,
    /// matching the standard benchmark generator (uniform i.i.d. tiles).
    pub fn random(width: usize, height: usize, colors: u8, seed: u64) -> Self {
        assert!(width > 0 && height > 0 && (1..=9).contains(&colors));
        let mut rng = Rng::seeded(seed);
        let cols = (0..width)
            .map(|_| {
                (0..height)
                    .map(|_| rng.below(colors as usize) as u8 + 1)
                    .collect()
            })
            .collect();
        Self {
            cols,
            width,
            height,
            accumulated: 0,
            moves: 0,
        }
    }

    /// Colour at `(x, y)` (bottom-up), if a tile is present.
    pub fn tile(&self, x: usize, y: usize) -> Option<u8> {
        self.cols.get(x).and_then(|c| c.get(y)).copied()
    }

    /// Remaining tile count.
    pub fn tiles_left(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// Whether every tile has been removed.
    pub fn cleared(&self) -> bool {
        self.cols.iter().all(Vec::is_empty)
    }

    /// Flood-fills the group containing `(x, y)`; returns the member cells.
    fn group(&self, x: usize, y: usize) -> Vec<(usize, usize)> {
        let Some(color) = self.tile(x, y) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.width * self.height];
        let mut stack = vec![(x, y)];
        let mut members = Vec::new();
        seen[x * self.height + y] = true;
        while let Some((cx, cy)) = stack.pop() {
            members.push((cx, cy));
            let neighbours = [
                (cx.wrapping_sub(1), cy),
                (cx + 1, cy),
                (cx, cy.wrapping_sub(1)),
                (cx, cy + 1),
            ];
            for (nx, ny) in neighbours {
                if nx < self.width
                    && ny < self.height
                    && self.tile(nx, ny) == Some(color)
                    && !seen[nx * self.height + ny]
                {
                    seen[nx * self.height + ny] = true;
                    stack.push((nx, ny));
                }
            }
        }
        members
    }

    /// Enumerates groups of ≥2 tiles by canonical cell.
    fn groups(&self) -> Vec<(Tap, usize)> {
        let mut seen = vec![false; self.width * self.height];
        let mut out = Vec::new();
        for x in 0..self.width {
            for y in 0..self.cols[x].len() {
                if seen[x * self.height + y] {
                    continue;
                }
                let members = self.group(x, y);
                let mut canon = (usize::MAX, usize::MAX);
                for &(mx, my) in &members {
                    seen[mx * self.height + my] = true;
                    if (mx, my) < canon {
                        canon = (mx, my);
                    }
                }
                if members.len() >= 2 {
                    out.push((
                        Tap {
                            x: canon.0 as u8,
                            y: canon.1 as u8,
                        },
                        members.len(),
                    ));
                }
            }
        }
        out
    }

    /// Removes the group containing the tap, applies gravity and column
    /// collapse, and returns the group size. Panics if the group has
    /// fewer than two tiles.
    fn remove(&mut self, tap: Tap) -> usize {
        let members = self.group(tap.x as usize, tap.y as usize);
        assert!(
            members.len() >= 2,
            "tap on a group of {} tiles",
            members.len()
        );
        // Mark and drop per column, highest-y first so indices stay valid.
        let mut by_col: Vec<Vec<usize>> = vec![Vec::new(); self.width];
        for (x, y) in &members {
            by_col[*x].push(*y);
        }
        for (x, mut ys) in by_col.into_iter().enumerate() {
            ys.sort_unstable_by(|a, b| b.cmp(a));
            for y in ys {
                self.cols[x].remove(y);
            }
        }
        self.cols.retain(|c| !c.is_empty());
        while self.cols.len() < self.width {
            self.cols.push(Vec::new());
        }
        members.len()
    }
}

impl CodedGame for SameGame {
    /// Codes combine the tap cell with the group's colour. Gravity moves
    /// tiles between positions, so identical codes can denote different
    /// groups in different positions — NRPA tolerates such sharing (the
    /// policy then generalises over "tap colour c near (x, y)", which is
    /// the standard pragmatic choice for SameGame policies).
    fn move_code(&self, mv: &Tap) -> u64 {
        let color = self.tile(mv.x as usize, mv.y as usize).unwrap_or(0) as u64;
        ((mv.x as u64) << 16) | ((mv.y as u64) << 8) | color
    }
}

impl Game for SameGame {
    type Move = Tap;

    fn legal_moves(&self, out: &mut Vec<Tap>) {
        out.extend(self.groups().into_iter().map(|(t, _)| t));
    }

    fn play(&mut self, mv: &Tap) {
        let n = self.remove(*mv);
        self.accumulated += ((n - 2) * (n - 2)) as Score;
        self.moves += 1;
        if self.cleared() {
            self.accumulated += CLEAR_BONUS;
        }
    }

    fn score(&self) -> Score {
        self.accumulated
    }

    fn moves_played(&self) -> usize {
        self.moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::{nested, sample, NestedConfig};

    #[test]
    fn from_rows_round_trips_geometry() {
        let g = SameGame::from_rows(&[&[1, 2], &[3, 1]]);
        // Bottom row is [3,1], top row [1,2].
        assert_eq!(g.tile(0, 0), Some(3));
        assert_eq!(g.tile(1, 0), Some(1));
        assert_eq!(g.tile(0, 1), Some(1));
        assert_eq!(g.tile(1, 1), Some(2));
        assert_eq!(g.tiles_left(), 4);
    }

    #[test]
    fn groups_require_two_tiles() {
        let g = SameGame::from_rows(&[&[1, 2], &[2, 1]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert!(moves.is_empty(), "diagonal same-colours do not connect");
    }

    #[test]
    fn removing_a_group_scores_quadratically() {
        // Column of three 1s next to isolated 2s.
        let mut g = SameGame::from_rows(&[&[1, 2], &[1, 3], &[1, 2]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 1);
        g.play(&moves[0]);
        assert_eq!(g.score(), 1, "(3-2)^2 = 1");
        assert_eq!(g.tiles_left(), 3);
    }

    #[test]
    fn gravity_pulls_tiles_down() {
        // Remove the bottom pair; the top tiles must fall.
        let mut g = SameGame::from_rows(&[&[2, 3], &[1, 1]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 1);
        g.play(&moves[0]);
        assert_eq!(g.tile(0, 0), Some(2), "2 fell to the bottom");
        assert_eq!(g.tile(1, 0), Some(3));
    }

    #[test]
    fn empty_columns_collapse_left() {
        // Left column of two 1s, right column 2 over 3; removing the 1s
        // must shift the right column to x=0.
        let mut g = SameGame::from_rows(&[&[1, 2], &[1, 3]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        let tap_left = moves.iter().find(|t| t.x == 0).copied().unwrap();
        g.play(&tap_left);
        assert_eq!(g.tile(0, 0), Some(3));
        assert_eq!(g.tile(0, 1), Some(2));
        assert_eq!(g.tile(1, 0), None);
    }

    #[test]
    fn clearing_the_board_earns_the_bonus() {
        let mut g = SameGame::from_rows(&[&[1, 1], &[1, 1]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 1);
        g.play(&moves[0]);
        assert!(g.cleared());
        assert_eq!(g.score(), 4 + CLEAR_BONUS, "(4-2)^2 + bonus");
    }

    #[test]
    fn random_board_is_deterministic_per_seed() {
        let a = SameGame::random(10, 10, 4, 7);
        let b = SameGame::random(10, 10, 4, 7);
        let c = SameGame::random(10, 10, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn playouts_terminate_and_score_consistently() {
        for seed in 0..5 {
            let g = SameGame::random(8, 8, 4, seed);
            let r = sample(&g, &mut Rng::seeded(seed));
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert!(replay.is_terminal());
        }
    }

    #[test]
    fn nmcs_improves_over_random_play() {
        let g = SameGame::random(6, 6, 3, 42);
        let mut rng = Rng::seeded(1);
        let random_avg: f64 = (0..20)
            .map(|_| sample(&g, &mut rng).score as f64)
            .sum::<f64>()
            / 20.0;
        let nmcs = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(2));
        assert!(
            (nmcs.score as f64) > random_avg,
            "NMCS {} should beat random avg {random_avg}",
            nmcs.score
        );
    }

    #[test]
    fn canonical_tap_is_stable_under_enumeration_order() {
        let g = SameGame::random(8, 8, 3, 3);
        let mut a = Vec::new();
        g.legal_moves(&mut a);
        let mut b = Vec::new();
        g.legal_moves(&mut b);
        assert_eq!(a, b);
        // Canonical cells are unique.
        let mut set = std::collections::HashSet::new();
        for t in &a {
            assert!(set.insert((t.x, t.y)), "duplicate canonical tap {t:?}");
        }
    }
}
